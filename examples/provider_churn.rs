//! Provider autonomy in action: a training job survives a kill-switch, an
//! emergency departure, and migrates back when the provider returns.
//!
//!     cargo run --release --example provider_churn

use gpunion_core::{PlatformConfig, Scenario};
use gpunion_des::{SimDuration, SimTime};
use gpunion_gpu::{GpuModel, ServerSpec};
use gpunion_workload::{ModelClass, TrainingJobSpec};

fn main() {
    let specs = vec![
        ServerSpec::workstation("volunteer", GpuModel::Rtx3090),
        ServerSpec::workstation("stable", GpuModel::Rtx3090),
    ];
    let mut s = Scenario::new(PlatformConfig::default(), &specs);
    let volunteer = s.hosts()[0];

    let mut job = TrainingJobSpec::new(ModelClass::CnnLarge, 60_000); // hours
    job.checkpoint_interval = SimDuration::from_mins(5);
    s.submit_training_at(SimTime::from_secs(5), 0, job);

    // 40 min in, the volunteer's owner yanks the machine (emergency).
    s.schedule(SimTime::from_secs(2400), move |w, now| {
        println!("[{now}] volunteer pulls the plug (emergency departure)");
        w.emergency_departure(now, volunteer);
    });
    // They return 30 minutes later.
    s.schedule(SimTime::from_secs(2400 + 1800), move |w, now| {
        println!("[{now}] volunteer returns");
        w.provider_return(now, volunteer);
    });

    s.run_until(SimTime::from_secs(8 * 3600));

    let job = s.job_of(0).unwrap();
    println!("\njob event log:");
    for (t, e) in &s.world.stats.job_log[&job] {
        println!("  {t}  {e:?}");
    }
    for d in &s.world.stats.displacements {
        println!(
            "displaced at {} → restore from seq {:?}, restarted {:?}, migrated back: {}",
            d.at, d.restore_seq, d.restarted_at, d.migrated_back
        );
    }
    println!("jobs completed: {}", s.world.stats.jobs_completed);
}
