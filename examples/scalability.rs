//! Sweep the database write queue across node counts and watch the
//! emergent write latency hit the paper's §5.2 wall past ~200 nodes.
//!
//!     cargo run --release --example scalability
//!
//! Latency here is *measured*: heartbeat status writes flow through the
//! [`gpunion_db::DbActor`]'s bounded queue and each write's sojourn time
//! is whatever the queue made it. The M/M/1 formula is printed alongside
//! as the validation oracle it now is (DESIGN.md §3b). The full
//! coordinator-level sweep lives in the bench harness
//! (`cargo run --release --bin scalability`).

use gpunion_db::{ContentionModel, DbActor, DbActorConfig, WriteIntent};
use gpunion_des::{SimDuration, SimTime};
use gpunion_protocol::NodeUid;

fn main() {
    let period = SimDuration::from_secs(5);
    let model = ContentionModel::default();
    println!(
        "{:<8} {:>9} {:>14} {:>14} {:>8}",
        "nodes", "db util", "measured tx", "M/M/1 oracle", "shed"
    );
    for n in [10usize, 50, 100, 200, 300, 400] {
        let mut actor = DbActor::new(DbActorConfig::default(), 7);
        // Two minutes of evenly-phased heartbeats after a 30 s warm-up.
        let beats = 30u64;
        for k in 0..beats {
            if k == 6 {
                actor.reset_telemetry();
            }
            for i in 0..n as u64 {
                let at = SimTime::ZERO + period * k + (period * i) / n as u64;
                actor.advance(at);
                actor.try_submit(at, WriteIntent::NodeSeen(NodeUid(i + 1)));
            }
        }
        let rate = n as f64 / period.as_secs_f64();
        println!(
            "{:<8} {:>8.0}% {:>11.1} ms {:>11.1} ms {:>8}",
            n,
            model.utilization(rate) * 100.0,
            actor.sojourn().mean().unwrap_or(0.0) * 1e3,
            model.transaction_latency(rate).as_secs_f64() * 1e3,
            actor.shed_writes()
        );
    }
}
