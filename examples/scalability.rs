//! Sweep the coordinator across node counts and watch scheduling latency
//! hit the paper's §5.2 wall past ~200 nodes.
//!
//!     cargo run --release --example scalability

fn main() {
    // The full sweep lives in the bench harness; this example prints the
    // latency model directly.
    use gpunion_db::ContentionModel;
    use gpunion_des::SimDuration;
    let m = ContentionModel::default();
    println!("{:<8} {:>10} {:>14}", "nodes", "db util", "tx latency");
    for n in [10, 50, 100, 200, 300, 400] {
        let rate = ContentionModel::heartbeat_write_rate(n, SimDuration::from_secs(5), 2.0);
        println!(
            "{:<8} {:>9.0}% {:>14}",
            n,
            m.utilization(rate) * 100.0,
            format!("{}", m.transaction_latency(rate))
        );
    }
}
