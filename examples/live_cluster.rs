//! Live mode: the same protocol over real TCP sockets on localhost.
//!
//! Runs a coordinator thread and three agent threads exchanging real
//! framed envelopes — registration with token issuance and authenticated
//! heartbeats — demonstrating that the control plane is an actual network
//! protocol, not a simulation artifact.
//!
//!     cargo run --release --example live_cluster

use gpunion_protocol::{
    AuthToken, Control, Envelope, FramedTransport, GpuInfo, Message, NodeUid, TokenRegistry,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    println!("coordinator listening on {addr}");

    let served = Arc::new(AtomicU64::new(0));
    let served_c = served.clone();

    // Coordinator: accept 3 agents, register them, answer authenticated
    // heartbeats until each connection closes.
    let coordinator = std::thread::spawn(move || {
        let mut tokens = TokenRegistry::new();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut handles = Vec::new();
        for uid in 0..3u64 {
            let (sock, peer) = listener.accept().expect("accept");
            let node = NodeUid(uid);
            let token = tokens.issue(node, &mut rng);
            let served = served_c.clone();
            handles.push(std::thread::spawn(move || {
                let mut t = FramedTransport::new(sock);
                let env = t.recv().expect("register");
                let Message::Control(Control::Register { hostname, gpus, .. }) = env.msg else {
                    panic!("expected Register, got {:?}", env.msg);
                };
                println!(
                    "[coord] {hostname} ({} GPU) registered from {peer}",
                    gpus.len()
                );
                t.send(&Envelope::new(
                    AuthToken::UNAUTHENTICATED,
                    Message::Control(Control::RegisterAck {
                        node,
                        token,
                        heartbeat_period_ms: 200,
                    }),
                ))
                .unwrap();
                while let Ok(env) = t.recv() {
                    assert_eq!(env.sender, node, "sender principal");
                    assert_eq!(env.token, token, "bearer token");
                    if let Message::Control(Control::Heartbeat { node, seq, .. }) = env.msg {
                        served.fetch_add(1, Ordering::Relaxed);
                        t.send(&Envelope::new(
                            AuthToken::UNAUTHENTICATED,
                            Message::Control(Control::HeartbeatAck { node, seq }),
                        ))
                        .unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });

    // Three agents: register, heartbeat five times, disconnect.
    let mut agents = Vec::new();
    for i in 0..3 {
        agents.push(std::thread::spawn(move || {
            let sock = TcpStream::connect(addr).expect("connect");
            let mut t = FramedTransport::new(sock);
            t.send(&Envelope::new(
                AuthToken::UNAUTHENTICATED,
                Message::Control(Control::Register {
                    machine_id: format!("live-{i}-deadbeef"),
                    hostname: format!("live-{i}"),
                    gpus: vec![GpuInfo {
                        model_name: "NVIDIA GeForce RTX 3090".into(),
                        vram_bytes: 24 << 30,
                        cc_major: 8,
                        cc_minor: 6,
                        fp32_tflops: 35.6,
                    }],
                    agent_version: 1,
                }),
            ))
            .unwrap();
            let env = t.recv().expect("ack");
            let Message::Control(Control::RegisterAck { node, token, .. }) = env.msg else {
                panic!("expected RegisterAck");
            };
            println!("[agent live-{i}] registered as {node:?}");
            for seq in 1..=5u64 {
                t.send(&Envelope::from_node(
                    node,
                    token,
                    Message::Control(Control::Heartbeat {
                        node,
                        seq,
                        accepting: true,
                        gpu_stats: vec![],
                        workloads: vec![],
                    }),
                ))
                .unwrap();
                let ack = t.recv().expect("hb ack");
                assert!(matches!(
                    ack.msg,
                    Message::Control(Control::HeartbeatAck { .. })
                ));
            }
            println!("[agent live-{i}] done");
        }));
    }
    for a in agents {
        a.join().unwrap();
    }
    coordinator.join().unwrap();
    println!(
        "coordinator processed {} authenticated heartbeats over real TCP",
        served.load(Ordering::Relaxed)
    );
}
