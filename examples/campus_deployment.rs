//! The paper's §4 deployment: 11 GPU servers + coordinator, six weeks of
//! campus demand, manual coordination vs GPUnion (Fig. 2).
//!
//!     cargo run --release --example campus_deployment -- [weeks]

use gpunion_core::run_fig2;

fn main() {
    let weeks = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let r = run_fig2(weeks, 42);
    println!("campus GPU utilization over {weeks} week(s):");
    println!("  manual coordination: {:.1}%", r.manual_mean * 100.0);
    println!("  GPUnion:             {:.1}%", r.gpunion_mean * 100.0);
    println!(
        "  interactive sessions: {} → {}",
        r.sessions_manual, r.sessions_gpunion
    );
    println!("per-server utilization (manual → GPUnion):");
    for (name, m, g) in &r.per_server {
        println!("  {name:<12} {:.0}% → {:.0}%", m * 100.0, g * 100.0);
    }
}
