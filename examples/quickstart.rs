//! Quickstart: deploy a two-workstation campus, submit a training job and
//! an interactive session, and watch them complete.
//!
//!     cargo run --release --example quickstart

use gpunion_core::{PlatformConfig, Scenario};
use gpunion_des::{SimDuration, SimTime};
use gpunion_gpu::{GpuModel, ServerSpec};
use gpunion_workload::{InteractiveSpec, ModelClass, TrainingJobSpec};

fn main() {
    let specs = vec![
        ServerSpec::workstation("lab-a", GpuModel::Rtx3090),
        ServerSpec::workstation("lab-b", GpuModel::Rtx4090),
    ];
    let mut s = Scenario::new(PlatformConfig::default(), &specs);

    // A 30-minute CNN fine-tune with 5-minute checkpoints.
    let mut job = TrainingJobSpec::new(ModelClass::CnnSmall, 12_000);
    job.checkpoint_interval = SimDuration::from_mins(5);
    s.submit_training_at(SimTime::from_secs(10), 0, job);

    // A student debugging session.
    s.submit_interactive_at(SimTime::from_secs(120), 1, InteractiveSpec::typical());

    s.run_until(SimTime::from_secs(2 * 3600));

    let end = SimTime::from_secs(2 * 3600);
    println!("jobs completed:     {}", s.world.stats.jobs_completed);
    println!("sessions served:    {}", s.world.stats.sessions_served);
    println!("sessions abandoned: {}", s.world.stats.sessions_abandoned);
    for (_, name, util) in s.world.utilization_by_host(end) {
        println!("utilization {name}: {:.1}%", util * 100.0);
    }
    let job = s.job_of(0).expect("job registered");
    println!("job {job:?} event log:");
    for (t, e) in &s.world.stats.job_log[&job] {
        println!("  {t}  {e:?}");
    }
}
