//! Collection strategies, mirroring `proptest::collection`.

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// A collection length specification; built from `usize`, `a..b` or
/// `a..=b`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min) as u64) as usize
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
