//! Vendored stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the property-testing subset the workspace uses: the
//! [`Strategy`] trait with `prop_map`/`boxed`, [`any`], [`Just`],
//! numeric-range and regex-literal string strategies, tuple composition,
//! [`collection::vec`], [`option::of`], [`sample::Index`], and the
//! [`proptest!`]/[`prop_oneof!`]/`prop_assert*` macros.
//!
//! Differences from the real crate, deliberate for an offline build:
//!
//! * **No shrinking.** A failing case panics with the seed-derived values
//!   it drew; it is not minimised.
//! * **Deterministic seeding.** Each test's RNG is seeded from its module
//!   path and name, so failures reproduce across runs. Set
//!   `PROPTEST_CASES` to change the per-test case count (default 64).
//! * Regex strategies support the subset actually used: concatenations of
//!   character classes / literals with `{m}`, `{m,n}`, `*`, `+`, `?`.

use std::marker::PhantomData;

pub mod collection;
pub mod option;
pub mod sample;
pub mod strings;

/// Items most tests want in scope, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
    };
}

/// Number of cases each property runs (`PROPTEST_CASES` overrides).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic generator driving value generation (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (the `proptest!` macro passes the
    /// fully-qualified test name, making every test's stream independent
    /// and stable across runs).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (`Strategy` is object-safe: combinators require
/// `Self: Sized`).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the whole domain of `T` (see [`any`]).
#[derive(Debug)]
pub struct Any<T>(pub(crate) PhantomData<T>);

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub const fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias towards boundary values: real-world codec bugs
                // cluster at 0, MAX and small integers.
                match rng.below(8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => rng.below(16) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = rng.next_f64() * 10f64.powi(rng.below(17) as i32 - 8);
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII is the interesting range for protocol strings.
        char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable ASCII")
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128).wrapping_sub(start as u128) as u64 + 1;
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.next_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

range_strategy_float!(f32, f64);

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        strings::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
}

/// Whole-domain strategies addressable as constants (`num::u8::ANY`…).
pub mod num {
    /// Strategies for `u8`.
    pub mod u8 {
        /// Any `u8`.
        pub const ANY: crate::Any<u8> = crate::Any(std::marker::PhantomData);
    }
    /// Strategies for `u16`.
    pub mod u16 {
        /// Any `u16`.
        pub const ANY: crate::Any<u16> = crate::Any(std::marker::PhantomData);
    }
    /// Strategies for `u32`.
    pub mod u32 {
        /// Any `u32`.
        pub const ANY: crate::Any<u32> = crate::Any(std::marker::PhantomData);
    }
    /// Strategies for `u64`.
    pub mod u64 {
        /// Any `u64`.
        pub const ANY: crate::Any<u64> = crate::Any(std::marker::PhantomData);
    }
}

/// Strategies for `bool`, mirroring `proptest::bool`.
pub mod bool {
    /// Any `bool`.
    pub const ANY: crate::Any<bool> = crate::Any(std::marker::PhantomData);
}

/// Uniform choice among strategies producing the same type, mirroring
/// `proptest::prop_oneof`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a property, mirroring `proptest::prop_assert`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property, mirroring `proptest::prop_assert_eq`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property, mirroring
/// `proptest::prop_assert_ne`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests, mirroring `proptest::proptest`.
///
/// Each `fn name(pat in strategy, …) { body }` becomes a `#[test]` that
/// draws [`cases`] inputs from the strategies and runs the body on each.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategies = ($($strat,)+);
                let mut rng = $crate::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..$crate::cases() {
                    let ($($arg,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                    $body
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{Strategy, TestRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.5f64..1.5).generate(&mut rng);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::from_name("arms");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn vec_and_option_compose() {
        let s = crate::collection::vec(crate::option::of(0u8..4), 2..5);
        let mut rng = TestRng::from_name("compose");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            for o in v.into_iter().flatten() {
                assert!(o < 4);
            }
        }
    }

    #[test]
    fn string_regex_subset() {
        let mut rng = TestRng::from_name("regex");
        for _ in 0..200 {
            let s = "[a-z0-9-]{1,20}".generate(&mut rng);
            assert!((1..=20).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
            let t = "[ -~]{0,60}".generate(&mut rng);
            assert!(t.len() <= 60 && t.chars().all(|c| (' '..='~').contains(&c)));
            let u = "ab[01]?c+".generate(&mut rng);
            assert!(u.starts_with("ab"));
        }
    }

    #[test]
    fn sample_index_in_bounds() {
        let mut rng = TestRng::from_name("index");
        for _ in 0..200 {
            let i = any::<crate::sample::Index>().generate(&mut rng);
            assert!(i.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0u64..1000, "[a-z]{3}");
        let mut a = TestRng::from_name("det");
        let mut b = TestRng::from_name("det");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    proptest! {
        /// The macro itself: tuple destructuring, trailing comma, doc attr.
        #[test]
        fn macro_smoke((a, b) in (0u32..10, 0u32..10), c in any::<bool>(),) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(c as u32 * 2, c as u32 + c as u32);
            prop_assert_ne!(a + 10, b);
        }
    }
}
