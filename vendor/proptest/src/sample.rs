//! Sampling helpers, mirroring `proptest::sample`.

use crate::{Arbitrary, TestRng};

/// A position into a collection whose length is not known at generation
/// time; resolve with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: usize,
}

impl Index {
    /// Resolve to a concrete index in `[0, len)`. Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.raw % len
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index {
            raw: rng.next_u64() as usize,
        }
    }
}
