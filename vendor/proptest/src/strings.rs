//! Regex-literal string generation.
//!
//! `&'static str` is a [`crate::Strategy`] whose value is a `String`
//! matching the pattern, as in the real crate. The supported grammar is
//! the subset the workspace's tests use: a concatenation of atoms, where
//! an atom is a character class (`[a-z0-9-]`, `[ -~]`, …) or a literal
//! character, optionally followed by a repetition (`{m}`, `{m,n}`, `*`,
//! `+`, `?`). Unbounded repetitions cap at 8.

use crate::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug)]
enum Atom {
    /// Candidate characters, expanded from a class or a single literal.
    Chars(Vec<char>),
}

#[derive(Debug)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32, // inclusive
}

/// Generate a string matching `pattern` (panics on unsupported syntax, as
/// the real crate errors on invalid regexes).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for p in &pieces {
        let span = u64::from(p.max - p.min) + 1;
        let n = p.min + rng.below(span) as u32;
        let Atom::Chars(chars) = &p.atom;
        for _ in 0..n {
            out.push(chars[rng.below(chars.len() as u64) as usize]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in regex {pattern:?}"))
                    + i;
                let set = expand_class(&chars[i + 1..close], pattern);
                i = close + 1;
                Atom::Chars(set)
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "trailing escape in regex {pattern:?}");
                let c = chars[i + 1];
                i += 2;
                Atom::Chars(vec![c])
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '.' | '^' | '$'),
                    "unsupported regex syntax {c:?} in {pattern:?}"
                );
                i += 1;
                Atom::Chars(vec![c])
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed repetition in regex {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("repetition lower bound"),
                        hi.parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = body.parse().expect("repetition count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                i += 1;
                (1, UNBOUNDED_CAP)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted repetition in regex {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty class in regex {pattern:?}");
    assert!(
        body[0] != '^',
        "negated classes unsupported in regex {pattern:?}"
    );
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // `X-Y` is a range unless the `-` is first or last in the class.
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted class range in regex {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str) -> String {
        generate_matching(pattern, &mut TestRng::from_name(pattern))
    }

    #[test]
    fn fixed_repetition() {
        assert_eq!(gen("a{3}").len(), 3);
    }

    #[test]
    fn class_with_trailing_dash() {
        for _ in 0..50 {
            let s = gen("[a-c-]{4}");
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '-')));
        }
    }

    #[test]
    fn space_to_tilde_range() {
        let s = gen("[ -~]{10,10}");
        assert_eq!(s.len(), 10);
        assert!(s.chars().all(|c| (' '..='~').contains(&c)));
    }

    #[test]
    fn literals_and_quantifiers() {
        let s = gen("ab?c*d+");
        assert!(s.starts_with('a'));
        assert!(s.ends_with('d'));
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn alternation_rejected() {
        gen("a|b");
    }
}
