//! Vendored stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly instead of `Result`s.
//! A poisoned std lock is recovered rather than propagated, matching
//! `parking_lot`'s behaviour of not having poisoning at all.

use std::sync;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive, API-compatible with `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock, API-compatible with `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(l.into_inner(), 8);
    }
}
