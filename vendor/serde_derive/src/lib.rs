//! Vendored stand-in for the `serde_derive` proc-macro crate.
//!
//! This workspace builds fully offline (see `vendor/README.md`). The code
//! base only ever *derives* `Serialize`/`Deserialize` — nothing serializes
//! through the traits yet — so the derives expand to nothing and the
//! blanket impls in the vendored `serde` crate satisfy any trait bounds.
//! Replacing this crate with the real one requires no source changes.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
