//! Vendored stand-in for `rand` 0.8 (see `vendor/README.md`).
//!
//! Implements the subset the simulation draws on: [`rngs::SmallRng`]
//! (xoshiro256++, the same family the real crate uses on 64-bit targets),
//! the [`RngCore`]/[`SeedableRng`]/[`Rng`] traits, uniform ranges, and the
//! [`distributions::Standard`] distribution. Streams are deterministic for
//! a given seed, which is the property the reproduction's determinism
//! contract actually relies on — it never asserts on specific draw values,
//! so this generator does not need to be bit-compatible with crates.io
//! `rand`. Swapping the real crate back in is a manifest-only change.

pub mod distributions;
pub mod rngs;

use distributions::{DistIter, Distribution, Standard};

/// Low-level uniform bit source, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: AsMut<[u8]> + Default;

    /// Build from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, spreading it over the full seed with splitmix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let mut x = {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            for b in chunk {
                *b = x as u8;
                x >>= 8;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types a range can be uniformly sampled from (argument of
/// [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounding (Lemire); bias is < 2^-64 per draw.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128).wrapping_sub(start as u128) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u: $t = Standard.sample(rng); // in [0, 1)
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value the [`Standard`] distribution covers.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p` ∈ [0, 1].
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]: {p}");
        let u: f64 = Standard.sample(self);
        u < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    /// Consume the generator into an iterator of samples.
    fn sample_iter<T, D: Distribution<T>>(self, distr: D) -> DistIter<D, Self, T>
    where
        Self: Sized,
    {
        DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..4)
            .map(|_| SmallRng::seed_from_u64(1).next_u64())
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|_| SmallRng::seed_from_u64(1).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_ne!(
            SmallRng::seed_from_u64(1).next_u64(),
            SmallRng::seed_from_u64(2).next_u64()
        );
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_range_mean_is_central() {
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
