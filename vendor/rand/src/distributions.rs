//! Distributions, mirroring `rand::distributions`.

use crate::RngCore;
use core::marker::PhantomData;

/// A way of producing values of type `T` from a bit source.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: full range for integers and
/// `bool`, the unit interval `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Iterator of samples, returned by [`crate::Rng::sample_iter`].
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<fn() -> T>,
}

impl<D, R, T> DistIter<D, R, T> {
    pub(crate) fn new(distr: D, rng: R) -> Self {
        DistIter {
            distr,
            rng,
            _marker: PhantomData,
        }
    }
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}
