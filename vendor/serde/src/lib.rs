//! Vendored stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace derives `Serialize`/`Deserialize` on its wire-adjacent
//! types to mark them as serialization-ready, but all actual encoding goes
//! through the hand-rolled binary codec in `gpunion-protocol`. This crate
//! therefore only has to make the derives and trait bounds *compile*:
//! the traits are empty and blanket-implemented, and the derive macros
//! expand to nothing. Swapping in the real crates.io `serde` is a
//! manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
