//! Vendored stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the harness subset the benches use — `benchmark_group`,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! throughput annotation and the `criterion_group!`/`criterion_main!`
//! macros — with a simple adaptive timer instead of criterion's full
//! statistical machinery. Reported numbers are the minimum observed
//! per-iteration wall time, which is the conventional low-noise point
//! estimate.
//!
//! Two modes, chosen by the `CRITERION_QUICK` environment variable:
//!
//! * unset (default): calibrated measurement — target ≈ 300 ms per bench.
//! * set: smoke mode — a handful of iterations, so `cargo test` (which
//!   runs `harness = false` bench targets) finishes fast. CI sets it.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

fn quick_mode() -> bool {
    std::env::var_os("CRITERION_QUICK").is_some()
}

/// Per-target measurement budget.
fn budget() -> Duration {
    if quick_mode() {
        Duration::from_millis(2)
    } else {
        Duration::from_millis(300)
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the stand-in runs one
/// input per batch regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Medium per-iteration input.
    MediumInput,
    /// Large per-iteration input.
    LargeInput,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `nodes/200`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Best observed per-iteration time, in nanoseconds.
    best_ns: f64,
    /// Total iterations executed.
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly until the budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let deadline = Instant::now() + budget();
        loop {
            let start = Instant::now();
            black_box(routine());
            self.observe(start.elapsed(), 1);
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let deadline = Instant::now() + budget();
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.observe(start.elapsed(), 1);
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine takes the input by
    /// mutable reference.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let deadline = Instant::now() + budget();
        loop {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.observe(start.elapsed(), 1);
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn observe(&mut self, elapsed: Duration, iters: u64) {
        let per_iter = elapsed.as_nanos() as f64 / iters as f64;
        if self.iters == 0 || per_iter < self.best_ns {
            self.best_ns = per_iter;
        }
        self.iters += iters;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benches with a throughput so results can be
    /// reported as a rate.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// End the group (parity with the real API; nothing to flush here).
    pub fn finish(self) {}

    fn report(&mut self, id: &str, b: &Bencher) {
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if b.best_ns > 0.0 => {
                format!(
                    "  {:>10.1} MiB/s",
                    n as f64 / b.best_ns * 1e9 / (1 << 20) as f64
                )
            }
            Some(Throughput::Elements(n)) if b.best_ns > 0.0 => {
                format!("  {:>10.1} Melem/s", n as f64 / b.best_ns * 1e3)
            }
            _ => String::new(),
        };
        self.criterion.results.push(format!(
            "{}/{:<28} {:>12.0} ns/iter  ({} iters){}",
            self.name, id, b.best_ns, b.iters, rate
        ));
        println!("{}", self.criterion.results.last().expect("just pushed"));
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<String>,
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, &mut f);
        g.finish();
        self
    }

    /// Lines reported so far (used by the vendored harness tests).
    pub fn result_lines(&self) -> &[String] {
        &self.results
    }
}

/// Define a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running benchmark groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags the stand-in
            // doesn't implement; `--list` must print nothing and succeed.
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_result() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(c.result_lines().len(), 2);
        assert!(c.result_lines()[1].contains("param/3"));
    }
}
