//! Vendored stand-in for `bytes` (see `vendor/README.md`).
//!
//! Implements the subset the wire protocol uses: an immutable [`Bytes`]
//! buffer, a growable [`BytesMut`] with little-endian put/get helpers, and
//! the [`Buf`]/[`BufMut`] traits. Backed by plain `Vec<u8>` — `clone` is a
//! copy, not a refcount bump, which is irrelevant at control-plane message
//! sizes. Swapping in the real crates.io `bytes` is a manifest-only change.

use std::ops::{Deref, DerefMut};

/// Read access to a contiguous buffer, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes remaining to be consumed.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Discard the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when nothing remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

/// Append access to a growable buffer, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian i32.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian f64 bit pattern.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte buffer, mirroring `bytes::Bytes`.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Borrow a static slice (copied here; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.data {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "advance past end of buffer");
        self.data.drain(..cnt);
    }
}

/// Growable byte buffer, mirroring `bytes::BytesMut`.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Total capacity of the underlying storage.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Remove all bytes.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Split off and return the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to past end of buffer");
        let tail = self.data.split_off(at);
        let head = std::mem::replace(&mut self.data, tail);
        BytesMut { data: head }
    }

    /// Split off and return everything from `at` on, keeping the head.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_off past end of buffer");
        BytesMut {
            data: self.data.split_off(at),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes {
            data: self.data.clone(),
        }
        .fmt(f)
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "advance past end of buffer");
        self.data.drain(..cnt);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(1);
        b.put_u16_le(0x0203);
        b.put_u32_le(0x04050607);
        b.put_u64_le(0x08090a0b0c0d0e0f);
        assert_eq!(b.len(), 15);
        assert_eq!(&b[..3], &[1, 0x03, 0x02]);
    }

    #[test]
    fn split_and_freeze() {
        let mut b = BytesMut::new();
        b.put_slice(b"hello world");
        b.advance(6);
        let head = b.split_to(5);
        assert_eq!(head.freeze().as_ref(), b"world");
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::copy_from_slice(b"a\x00b");
        assert_eq!(format!("{b:?}"), "b\"a\\x00b\"");
    }
}
