//! # gpunion — campus-scale autonomous GPU sharing
//!
//! A full Rust reproduction of *GPUnion: Autonomous GPU Sharing on Campus*
//! (HotNets '25). This façade crate re-exports the workspace so downstream
//! users depend on one crate:
//!
//! ```
//! use gpunion::core::{PlatformConfig, Scenario};
//! use gpunion::gpu::{GpuModel, ServerSpec};
//! use gpunion::workload::{ModelClass, TrainingJobSpec};
//! use gpunion::des::SimTime;
//!
//! let specs = vec![ServerSpec::workstation("ws-1", GpuModel::Rtx3090)];
//! let mut s = Scenario::new(PlatformConfig::default(), &specs);
//! s.submit_training_at(
//!     SimTime::from_secs(1),
//!     0,
//!     TrainingJobSpec::new(ModelClass::CnnSmall, 100),
//! );
//! s.run_until(SimTime::from_secs(600));
//! assert_eq!(s.world.stats.jobs_completed, 1);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every figure and table.

pub use gpunion_agent as agent;
pub use gpunion_baselines as baselines;
pub use gpunion_container as container;
pub use gpunion_core as core;
pub use gpunion_db as db;
pub use gpunion_des as des;
pub use gpunion_gpu as gpu;
pub use gpunion_protocol as protocol;
pub use gpunion_scheduler as scheduler;
pub use gpunion_simnet as simnet;
pub use gpunion_storage as storage;
pub use gpunion_telemetry as telemetry;
pub use gpunion_workload as workload;
