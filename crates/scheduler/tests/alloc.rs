//! Allocation discipline of the round-robin scatter–gather pick path.
//!
//! The scheduling pass's round-robin pick reads a 16-shard directory
//! through a reusable gather buffer (`RrGather`): one refill primes
//! per-shard next-uid replies and k-way-merges them into a buffer many
//! picks consume. This test pins the warm path — refills, merges, buffer
//! pops, per-uid candidacy verification, and the wrap-around restart —
//! to ZERO heap allocations by counting real allocations with a counting
//! global allocator. The counter is **per thread** (const-initialized TLS,
//! so reading it never recurses into the allocator): the libtest harness's
//! main thread lazily initializes channel state while it blocks waiting
//! for a test, and a process-global counter intermittently catches that
//! bookkeeping inside a measured window. The directory here runs its shard
//! actors inline (`with_shards` is `workers = 0`), so the calling thread's
//! count is the whole story.

use gpunion_des::SimTime;
use gpunion_gpu::GpuModel;
use gpunion_protocol::{DispatchSpec, ExecMode, GpuInfo, JobId, UserId};
use gpunion_scheduler::{Directory, Selector, Strategy};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static LOCAL_ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

/// Allocations charged to the calling thread so far.
fn allocations() -> usize {
    LOCAL_ALLOCATIONS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` so allocations during TLS teardown are not a panic.
        let _ = LOCAL_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = LOCAL_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn spec() -> DispatchSpec {
    DispatchSpec {
        job: JobId(1),
        image_repo: "r".into(),
        image_tag: "t".into(),
        image_digest: [0; 32],
        gpus: 1,
        gpu_mem_bytes: 4 << 30,
        min_cc: None,
        mode: ExecMode::Batch {
            entrypoint: vec!["x".into()],
        },
        checkpoint_interval_secs: 600,
        storage_nodes: vec![],
        state_bytes_hint: 0,
        restore_from_seq: None,
        priority: 1,
        user: UserId::SYSTEM,
    }
}

#[test]
fn warm_round_robin_gather_does_not_allocate() {
    let mut dir = Directory::with_shards(16);
    let models = GpuModel::ALL;
    for i in 0..64usize {
        let gpus: Vec<GpuInfo> = vec![models[i % models.len()].into()];
        dir.register(&format!("m-{i}"), "h", gpus, SimTime::from_secs(0));
    }
    // A little capacity texture so per-uid verification does real work.
    for i in (0..64u64).step_by(5) {
        dir.reserve(gpunion_protocol::NodeUid(i), JobId(i), 1, 8 << 30, None);
    }
    let s = spec();
    let mut sel = Selector::new(Strategy::RoundRobin);

    // Warm up: grow the gather buffer and per-shard head vector to their
    // steady-state capacity, covering at least one full wrap (and the
    // fresh-restart rule it triggers) outside the measured window.
    for _ in 0..150 {
        assert!(sel.pick(&dir, &s, &[]).is_some());
    }

    // Measured window: two more full circles of picks — buffer refills,
    // k-way head merges, wrap-around restarts, candidacy checks.
    let before = allocations();
    let mut hits = 0usize;
    for _ in 0..130 {
        hits += usize::from(sel.pick(&dir, &s, &[]).is_some());
    }
    let after = allocations();

    assert_eq!(hits, 130, "every pick lands on the all-eligible fleet");
    assert_eq!(
        after - before,
        0,
        "warm scatter–gather pick path allocated {} times over 130 picks",
        after - before
    );
}
