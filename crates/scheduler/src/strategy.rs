//! Allocation strategies over the capacity index.
//!
//! §3.2: "The scheduler implements multiple allocation strategies, including
//! distribution for fairness and assignment based on priority for
//! time-sensitive workloads", with "provider reliability predictions" folded
//! into placement (§3.5). Each strategy ranks the eligible nodes for one
//! job; the coordinator dispatches to the first and falls through on
//! rejection.
//!
//! Strategies never scan the whole directory. [`Selector::pick`] — the hot
//! path the batched scheduling pass drains jobs through — pops from the
//! directory's ordered views (free-capacity order, device-speed order, uid
//! order for round-robin; each a lazy k-way merge of the per-shard capacity
//! indexes, bit-identical to the unsharded order), verifying each popped
//! node exactly, so a placement decision is O(shards + log n) on a fleet
//! where most nodes are eligible.
//! [`Selector::rank`] returns the full ordering (diagnostics, tests,
//! embedding loops that want fallbacks) over the index's pre-filtered
//! candidate set.

use crate::directory::{Directory, GatherPos, NodeEntry, RrGather};
use gpunion_protocol::{DispatchSpec, NodeUid};
use serde::{Deserialize, Serialize};

/// Uids gathered per round-robin refill: enough for a whole scheduling
/// pass's picks in one scatter–gather, small enough that a mostly-
/// ineligible fleet doesn't over-fetch.
const RR_GATHER_CHUNK: usize = 32;

/// Selectable allocation strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Rotate through eligible nodes — the paper's default ("a round-robin
    /// scheduler which processes pending resource requests from a priority
    /// queue").
    RoundRobin,
    /// Most free VRAM first (spreads load, helps interactive latency).
    LeastLoaded,
    /// Weight free capacity by the provider's reliability score — long jobs
    /// avoid flaky volunteers.
    ReliabilityAware,
    /// Fastest eligible device first (minimizes training makespan on
    /// heterogeneous fleets).
    FastestDevice,
}

/// Stateful selector (round-robin needs a cursor).
#[derive(Debug)]
pub struct Selector {
    strategy: Strategy,
    /// Round-robin resumes scanning at this uid.
    rr_cursor: NodeUid,
    /// Reusable round-robin scatter–gather buffer: one refill serves many
    /// picks, so a 20-job pass pays the per-shard stream setup once
    /// instead of once per pick.
    gather: RrGather,
}

impl Selector {
    /// New selector.
    pub fn new(strategy: Strategy) -> Self {
        Selector {
            strategy,
            rr_cursor: NodeUid(0),
            gather: RrGather::new(),
        }
    }

    /// Which strategy this selector implements.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    fn eligible<'a>(
        dir: &'a Directory,
        spec: &'a DispatchSpec,
        exclude: &'a [NodeUid],
    ) -> impl Iterator<Item = &'a NodeEntry> + 'a {
        dir.candidates(spec).filter(|e| !exclude.contains(&e.uid))
    }

    fn reliability_score(e: &NodeEntry) -> f64 {
        e.total_free() as f64 * e.reliability.score()
    }

    /// The single best node for `spec`, advancing round-robin state. This
    /// is the scheduling pass's fast path: ordered index views are popped
    /// and verified until one eligible node survives — near-O(1) when most
    /// of the fleet qualifies, never worse than the pre-filtered candidate
    /// set.
    pub fn pick(
        &mut self,
        dir: &Directory,
        spec: &DispatchSpec,
        exclude: &[NodeUid],
    ) -> Option<NodeUid> {
        let ok = |uid: &NodeUid| !exclude.contains(uid) && dir.is_candidate(*uid, spec);
        match self.strategy {
            Strategy::RoundRobin => {
                let hit = self.rr_pick(dir, ok)?;
                self.rr_cursor = NodeUid(hit.0 + 1);
                Some(hit)
            }
            Strategy::LeastLoaded => dir.by_free_desc().find(ok),
            Strategy::FastestDevice => dir.by_speed_desc().find(ok),
            Strategy::ReliabilityAware => Self::eligible(dir, spec, exclude)
                .max_by(|a, b| {
                    Self::reliability_score(a)
                        .partial_cmp(&Self::reliability_score(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        // On equal score prefer the lower uid (rank order).
                        .then(b.uid.cmp(&a.uid))
                })
                .map(|e| e.uid),
        }
    }

    /// Round-robin pick through the scatter–gather buffer: exactly
    /// equivalent to `dir.round_robin_from(cursor).find(ok)` (tested
    /// against it), but the per-shard stream setup is paid once per
    /// refill, not once per pick.
    ///
    /// Exactness argument. The buffer holds a prefix-ordered suffix of
    /// `circle(origin)` = `[origin, ∞) ++ [0, origin)`. Reuse is allowed
    /// only when (a) no membership mutation happened since the fill
    /// (epoch check — reserve/release don't count, and eligibility is
    /// re-verified per uid via `ok` anyway) and (b) the pick's cursor is
    /// exactly where consumption stopped (`expected_cursor`). Under
    /// those conditions the remaining enumeration visits the same uids
    /// in the same order a fresh `circle(cursor)` scan would — except
    /// the part already consumed by earlier picks, which a fresh scan
    /// re-checks (non-membership mutations like `release` can requalify
    /// a previously skipped uid without bumping the epoch). So: if a hit
    /// occurs before the resumed enumeration runs dry, it is the fresh
    /// scan's hit (the shared prefix is order-identical); if it
    /// completes with no hit, the full circle is restarted at `cursor` —
    /// uids re-checked by the restart stay ineligible because nothing
    /// mutates mid-pick — and only a restarted (fresh-this-pick) scan
    /// that comes up dry may conclude `None`.
    ///
    /// Assumes the selector serves one directory for its lifetime (as
    /// the coordinator's does): the epoch clock is per-directory.
    fn rr_pick(&mut self, dir: &Directory, ok: impl Fn(&NodeUid) -> bool) -> Option<NodeUid> {
        let epoch = dir.membership_epoch();
        let g = &mut self.gather;
        let mut fresh = g.epoch != epoch || g.expected_cursor != Some(self.rr_cursor);
        if fresh {
            g.reset(epoch, self.rr_cursor);
        }
        loop {
            while let Some(uid) = g.buf.pop_front() {
                if ok(&uid) {
                    g.expected_cursor = Some(NodeUid(uid.0 + 1));
                    return Some(uid);
                }
            }
            if g.pos == GatherPos::Done {
                if !fresh {
                    // The enumeration was partly consumed by earlier
                    // picks, so this pick never saw the full circle.
                    // Restart it at the cursor before concluding None.
                    g.reset(epoch, self.rr_cursor);
                    fresh = true;
                    continue;
                }
                // Whole circle scanned this pick, nothing eligible. The
                // next pick must rescan (eligibility changes between
                // picks without bumping the membership epoch).
                g.expected_cursor = None;
                return None;
            }
            dir.fill_round_robin(g, RR_GATHER_CHUNK);
        }
    }

    /// Rank eligible nodes for `spec`, best first. `exclude` lists nodes
    /// that already rejected this job (or just failed). Orders the index's
    /// candidate set without touching ineligible nodes. Like [`Self::pick`]
    /// this counts as a placement turn: under round-robin it advances the
    /// shared cursor, so don't interleave it with `pick` on one selector
    /// expecting the rotation to be unaffected.
    pub fn rank(
        &mut self,
        dir: &Directory,
        spec: &DispatchSpec,
        exclude: &[NodeUid],
    ) -> Vec<NodeUid> {
        let mut nodes: Vec<&NodeEntry> = Self::eligible(dir, spec, exclude).collect();
        match self.strategy {
            Strategy::RoundRobin => {
                // Uid order, starting from the cursor (wrapping).
                nodes.sort_by_key(|e| e.uid);
                let k = nodes.partition_point(|e| e.uid < self.rr_cursor);
                if k < nodes.len() {
                    nodes.rotate_left(k);
                }
                if let Some(front) = nodes.first() {
                    self.rr_cursor = NodeUid(front.uid.0 + 1);
                }
            }
            Strategy::LeastLoaded => {
                nodes.sort_by(|a, b| b.total_free().cmp(&a.total_free()).then(a.uid.cmp(&b.uid)));
            }
            Strategy::ReliabilityAware => {
                nodes.sort_by(|a, b| {
                    Self::reliability_score(b)
                        .partial_cmp(&Self::reliability_score(a))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.uid.cmp(&b.uid))
                });
            }
            Strategy::FastestDevice => {
                nodes.sort_by(|a, b| {
                    b.best_tflops()
                        .partial_cmp(&a.best_tflops())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.uid.cmp(&b.uid))
                });
            }
        }
        nodes.into_iter().map(|e| e.uid).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::NodeLiveness;
    use gpunion_des::SimTime;
    use gpunion_gpu::GpuModel;
    use gpunion_protocol::{ExecMode, GpuInfo, JobId, UserId};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn spec(mem_gb: u64) -> DispatchSpec {
        DispatchSpec {
            job: JobId(1),
            image_repo: "r".into(),
            image_tag: "t".into(),
            image_digest: [0; 32],
            gpus: 1,
            gpu_mem_bytes: mem_gb << 30,
            min_cc: None,
            mode: ExecMode::Batch {
                entrypoint: vec!["x".into()],
            },
            checkpoint_interval_secs: 600,
            storage_nodes: vec![],
            state_bytes_hint: 0,
            restore_from_seq: None,
            priority: 1,
            user: UserId::SYSTEM,
        }
    }

    fn three_node_dir() -> (Directory, Vec<NodeUid>) {
        let mut d = Directory::new();
        let mut uids = Vec::new();
        for (i, model) in [GpuModel::Rtx3090, GpuModel::Rtx4090, GpuModel::A6000]
            .iter()
            .enumerate()
        {
            let gpus: Vec<GpuInfo> = vec![(*model).into()];
            let (uid, _) = d.register(&format!("m-{i}"), &format!("h-{i}"), gpus, t(0));
            uids.push(uid);
        }
        (d, uids)
    }

    #[test]
    fn round_robin_rotates() {
        let (d, uids) = three_node_dir();
        let mut sel = Selector::new(Strategy::RoundRobin);
        let first: Vec<NodeUid> = (0..3).map(|_| sel.rank(&d, &spec(4), &[])[0]).collect();
        assert_eq!(first, uids, "each pass starts at the next node");
        // The cursor wraps back around.
        assert_eq!(sel.rank(&d, &spec(4), &[])[0], uids[0]);
    }

    #[test]
    fn pick_matches_rank_front_for_every_strategy() {
        for strategy in [
            Strategy::RoundRobin,
            Strategy::LeastLoaded,
            Strategy::ReliabilityAware,
            Strategy::FastestDevice,
        ] {
            let (mut d, uids) = three_node_dir();
            d.reserve(uids[2], JobId(9), 1, 40 << 30, None);
            d.record_interruption(uids[1], t(9_000));
            // Two independent selectors must agree pick == rank[0].
            let mut a = Selector::new(strategy);
            let mut b = Selector::new(strategy);
            for round in 0..4 {
                let ranked = a.rank(&d, &spec(4), &[]);
                let picked = b.pick(&d, &spec(4), &[]);
                assert_eq!(
                    picked,
                    ranked.first().copied(),
                    "{strategy:?} round {round}"
                );
            }
        }
    }

    #[test]
    fn least_loaded_prefers_free_vram() {
        let (mut d, uids) = three_node_dir();
        // Reserve most of node 2 (A6000, 48 GB): big but busy.
        d.reserve(uids[2], JobId(9), 1, 40 << 30, None);
        let mut sel = Selector::new(Strategy::LeastLoaded);
        let ranked = sel.rank(&d, &spec(4), &[]);
        // 3090/4090 both 24 GB free > A6000's 8 GB remaining.
        assert_eq!(*ranked.last().unwrap(), uids[2]);
    }

    #[test]
    fn reliability_aware_penalizes_flaky() {
        let (mut d, uids) = three_node_dir();
        // Node 1 (4090) interrupts constantly.
        for day in 1..6 {
            d.record_interruption(uids[1], t(day * 10_000));
        }
        let mut sel = Selector::new(Strategy::ReliabilityAware);
        let ranked = sel.rank(&d, &spec(4), &[]);
        assert_eq!(*ranked.last().unwrap(), uids[1], "flaky node ranked last");
    }

    #[test]
    fn fastest_device_prefers_4090() {
        let (d, uids) = three_node_dir();
        let mut sel = Selector::new(Strategy::FastestDevice);
        let ranked = sel.rank(&d, &spec(4), &[]);
        assert_eq!(ranked[0], uids[1], "RTX 4090 has the highest TFLOPS");
        let mut sel = Selector::new(Strategy::FastestDevice);
        assert_eq!(sel.pick(&d, &spec(4), &[]), Some(uids[1]));
    }

    #[test]
    fn exclusion_and_capacity_filters() {
        let (d, uids) = three_node_dir();
        let mut sel = Selector::new(Strategy::LeastLoaded);
        // 30 GB only fits the A6000.
        let ranked = sel.rank(&d, &spec(30), &[]);
        assert_eq!(ranked, vec![uids[2]]);
        // Excluding it leaves nothing.
        let ranked = sel.rank(&d, &spec(30), &[uids[2]]);
        assert!(ranked.is_empty());
        assert_eq!(sel.pick(&d, &spec(30), &[uids[2]]), None);
    }

    #[test]
    fn paused_and_offline_nodes_excluded() {
        let (mut d, uids) = three_node_dir();
        d.set_liveness(uids[0], NodeLiveness::Paused);
        d.set_liveness(uids[1], NodeLiveness::Offline);
        let mut sel = Selector::new(Strategy::RoundRobin);
        let ranked = sel.rank(&d, &spec(4), &[]);
        assert_eq!(ranked, vec![uids[2]]);
    }

    #[test]
    fn round_robin_pick_spreads_across_the_fleet() {
        let (d, uids) = three_node_dir();
        let mut sel = Selector::new(Strategy::RoundRobin);
        let picks: Vec<NodeUid> = (0..6).filter_map(|_| sel.pick(&d, &spec(4), &[])).collect();
        assert_eq!(picks, [&uids[..], &uids[..]].concat(), "wraps twice");
    }

    proptest::proptest! {
        /// The gather-buffered round-robin pick is *exactly* the fresh
        /// enumeration `round_robin_from(cursor).find(ok)`, under any
        /// interleaving of picks with membership mutations (register,
        /// liveness flips) and capacity mutations (reserve/release) —
        /// the cases the epoch clock, `expected_cursor` check, and the
        /// Done-restart rule each exist for.
        #[test]
        fn prop_gathered_pick_matches_fresh_enumeration(
            actions in proptest::collection::vec((0u8..9, 0u64..10, 0u64..32), 1..120),
            shards in 1usize..9,
        ) {
            let mut d = Directory::with_shards(shards);
            let mut sel = Selector::new(Strategy::RoundRobin);
            let mut cursor = NodeUid(0); // reference's mirror of rr_cursor
            for (kind, a, b) in actions {
                match kind {
                    0 | 1 => {
                        let gpus: Vec<gpunion_protocol::GpuInfo> =
                            vec![GpuModel::ALL[(a % 5) as usize].into()];
                        d.register(&format!("m-{a}"), "h", gpus, t(b));
                    }
                    2 => {
                        d.reserve(NodeUid(a), JobId(b), 1, (b % 24) << 30, None);
                    }
                    3 => d.release(NodeUid(a), JobId(b)),
                    4 => {
                        let l = match b % 4 {
                            0 => NodeLiveness::Active,
                            1 => NodeLiveness::Paused,
                            2 => NodeLiveness::Departing,
                            _ => NodeLiveness::Offline,
                        };
                        d.set_liveness(NodeUid(a), l);
                    }
                    _ => {
                        // A pick turn: spec varies so eligibility shifts
                        // between picks over one gather buffer.
                        let s = spec(b % 30);
                        let ok = |uid: &NodeUid| d.is_candidate(*uid, &s);
                        let want = d.round_robin_from(cursor).find(ok);
                        if let Some(hit) = want {
                            cursor = NodeUid(hit.0 + 1);
                        }
                        let got = sel.pick(&d, &s, &[]);
                        proptest::prop_assert_eq!(got, want, "pick at cursor {:?}", cursor);
                    }
                }
            }
        }
    }
}
