//! Allocation strategies.
//!
//! §3.2: "The scheduler implements multiple allocation strategies, including
//! distribution for fairness and assignment based on priority for
//! time-sensitive workloads", with "provider reliability predictions" folded
//! into placement (§3.5). Each strategy ranks the eligible nodes for one
//! job; the coordinator dispatches to the first and falls through on
//! rejection.

use crate::directory::{Directory, NodeEntry, NodeLiveness};
use gpunion_protocol::{DispatchSpec, NodeUid};
use serde::{Deserialize, Serialize};

/// Selectable allocation strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Rotate through eligible nodes — the paper's default ("a round-robin
    /// scheduler which processes pending resource requests from a priority
    /// queue").
    RoundRobin,
    /// Most free VRAM first (spreads load, helps interactive latency).
    LeastLoaded,
    /// Weight free capacity by the provider's reliability score — long jobs
    /// avoid flaky volunteers.
    ReliabilityAware,
    /// Fastest eligible device first (minimizes training makespan on
    /// heterogeneous fleets).
    FastestDevice,
}

/// Stateful selector (round-robin needs a cursor).
#[derive(Debug)]
pub struct Selector {
    strategy: Strategy,
    rr_cursor: usize,
}

impl Selector {
    /// New selector.
    pub fn new(strategy: Strategy) -> Self {
        Selector {
            strategy,
            rr_cursor: 0,
        }
    }

    /// Which strategy this selector implements.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    fn eligible<'a>(
        dir: &'a Directory,
        spec: &DispatchSpec,
        exclude: &[NodeUid],
    ) -> Vec<&'a NodeEntry> {
        dir.iter()
            .filter(|e| e.liveness == NodeLiveness::Active)
            .filter(|e| !exclude.contains(&e.uid))
            .filter(|e| e.eligible_gpus(spec.gpu_mem_bytes, spec.min_cc) >= spec.gpus as usize)
            .collect()
    }

    /// Rank eligible nodes for `spec`, best first. `exclude` lists nodes
    /// that already rejected this job (or just failed).
    pub fn rank(
        &mut self,
        dir: &Directory,
        spec: &DispatchSpec,
        exclude: &[NodeUid],
    ) -> Vec<NodeUid> {
        let mut nodes = Self::eligible(dir, spec, exclude);
        match self.strategy {
            Strategy::RoundRobin => {
                // Stable order, then rotate by the cursor.
                nodes.sort_by_key(|e| e.uid);
                if !nodes.is_empty() {
                    let k = self.rr_cursor % nodes.len();
                    nodes.rotate_left(k);
                    self.rr_cursor = self.rr_cursor.wrapping_add(1);
                }
            }
            Strategy::LeastLoaded => {
                nodes.sort_by(|a, b| b.total_free().cmp(&a.total_free()).then(a.uid.cmp(&b.uid)));
            }
            Strategy::ReliabilityAware => {
                nodes.sort_by(|a, b| {
                    let score_a = a.total_free() as f64 * a.reliability.score();
                    let score_b = b.total_free() as f64 * b.reliability.score();
                    score_b
                        .partial_cmp(&score_a)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.uid.cmp(&b.uid))
                });
            }
            Strategy::FastestDevice => {
                nodes.sort_by(|a, b| {
                    b.best_tflops()
                        .partial_cmp(&a.best_tflops())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.uid.cmp(&b.uid))
                });
            }
        }
        nodes.into_iter().map(|e| e.uid).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpunion_des::SimTime;
    use gpunion_gpu::GpuModel;
    use gpunion_protocol::{ExecMode, GpuInfo, JobId};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn spec(mem_gb: u64) -> DispatchSpec {
        DispatchSpec {
            job: JobId(1),
            image_repo: "r".into(),
            image_tag: "t".into(),
            image_digest: [0; 32],
            gpus: 1,
            gpu_mem_bytes: mem_gb << 30,
            min_cc: None,
            mode: ExecMode::Batch {
                entrypoint: vec!["x".into()],
            },
            checkpoint_interval_secs: 600,
            storage_nodes: vec![],
            state_bytes_hint: 0,
            restore_from_seq: None,
            priority: 1,
        }
    }

    fn three_node_dir() -> (Directory, Vec<NodeUid>) {
        let mut d = Directory::new();
        let mut uids = Vec::new();
        for (i, model) in [GpuModel::Rtx3090, GpuModel::Rtx4090, GpuModel::A6000]
            .iter()
            .enumerate()
        {
            let gpus: Vec<GpuInfo> = vec![(*model).into()];
            let (uid, _) = d.register(&format!("m-{i}"), &format!("h-{i}"), gpus, t(0));
            uids.push(uid);
        }
        (d, uids)
    }

    #[test]
    fn round_robin_rotates() {
        let (d, uids) = three_node_dir();
        let mut sel = Selector::new(Strategy::RoundRobin);
        let first: Vec<NodeUid> = (0..3).map(|_| sel.rank(&d, &spec(4), &[])[0]).collect();
        assert_eq!(first, uids, "each pass starts at the next node");
    }

    #[test]
    fn least_loaded_prefers_free_vram() {
        let (mut d, uids) = three_node_dir();
        // Reserve most of node 2 (A6000, 48 GB): big but busy.
        d.get_mut(uids[2]).unwrap().reserve(JobId(9), 1, 40 << 30);
        let mut sel = Selector::new(Strategy::LeastLoaded);
        let ranked = sel.rank(&d, &spec(4), &[]);
        // 3090/4090 both 24 GB free > A6000's 8 GB remaining.
        assert_eq!(*ranked.last().unwrap(), uids[2]);
    }

    #[test]
    fn reliability_aware_penalizes_flaky() {
        let (mut d, uids) = three_node_dir();
        // Node 1 (4090) interrupts constantly.
        for day in 1..6 {
            d.get_mut(uids[1])
                .unwrap()
                .reliability
                .record_interruption(t(day * 10_000));
        }
        let mut sel = Selector::new(Strategy::ReliabilityAware);
        let ranked = sel.rank(&d, &spec(4), &[]);
        assert_eq!(*ranked.last().unwrap(), uids[1], "flaky node ranked last");
    }

    #[test]
    fn fastest_device_prefers_4090() {
        let (d, uids) = three_node_dir();
        let mut sel = Selector::new(Strategy::FastestDevice);
        let ranked = sel.rank(&d, &spec(4), &[]);
        assert_eq!(ranked[0], uids[1], "RTX 4090 has the highest TFLOPS");
    }

    #[test]
    fn exclusion_and_capacity_filters() {
        let (d, uids) = three_node_dir();
        let mut sel = Selector::new(Strategy::LeastLoaded);
        // 30 GB only fits the A6000.
        let ranked = sel.rank(&d, &spec(30), &[]);
        assert_eq!(ranked, vec![uids[2]]);
        // Excluding it leaves nothing.
        let ranked = sel.rank(&d, &spec(30), &[uids[2]]);
        assert!(ranked.is_empty());
    }

    #[test]
    fn paused_and_offline_nodes_excluded() {
        let (mut d, uids) = three_node_dir();
        d.get_mut(uids[0]).unwrap().liveness = NodeLiveness::Paused;
        d.get_mut(uids[1]).unwrap().liveness = NodeLiveness::Offline;
        let mut sel = Selector::new(Strategy::RoundRobin);
        let ranked = sel.rank(&d, &spec(4), &[]);
        assert_eq!(ranked, vec![uids[2]]);
    }
}
