//! The central scheduler and coordinator — an actor behind a typed inbox.
//!
//! "The central scheduler serves as the coordination hub for resource
//! discovery, allocation decisions, and workload management. It maintains a
//! real-time view of available GPU resources … through periodic status
//! updates from provider agents. … Unlike traditional cluster schedulers
//! that assume persistent resource availability, GPUnion's scheduler is
//! designed to handle dynamic resource volatility" (§3.2).
//!
//! The coordinator is a **single-owner actor** (DESIGN.md §3b): it owns
//! `{Directory + CapacityIndex, jobs, timers}` behind a bounded MPSC inbox
//! of typed [`CoordEnvelope`]s. Senders — the platform pump delivering
//! network envelopes, user clients submitting jobs, harnesses injecting
//! departures — call [`Coordinator::send`], which only enqueues. All state
//! mutation happens inside [`Coordinator::advance`], one envelope or timer
//! at a time, so every index mutation is single-threaded by construction:
//! the batched scheduling pass's "reserve, then the next decision sees it"
//! invariant *is* an actor turn. The embedding loop drives the actor
//! exactly like the [`DbActor`]: [`Coordinator::next_wake`] /
//! [`Coordinator::advance`], with [`CoordAction`]s coming out. Read-only
//! consumers (metrics scrape, harness inspection) use snapshot accessors,
//! never references into actor state held across a turn.
//!
//! Every mutation of the system database travels as a fire-and-forget
//! [`WriteIntent`] through the [`DbActor`]'s bounded write queue; a
//! dispatch decision's latency is the emergent sojourn time of its own
//! write — queue wait plus service — which is what the scalability
//! experiment (§5.2) measures as the node count grows.
//!
//! **Critical-write backpressure.** Sheddable status writes (heartbeat
//! `NodeSeen`) are dropped at the database inbox bound, but critical
//! intents must never be lost. When [`DbActor::would_block`] reports the
//! bound reached, the coordinator *defers its own turn* instead of
//! over-filling the queue: the inbox head stays queued (FIFO, so ordering
//! is preserved), due timers that would write are re-armed at the next
//! write completion, and a scheduling pass stops mid-drain and re-arms.
//! The stall is DES-visible as added pass latency and inbox sojourn time —
//! the single-threaded analogue of a blocking database client.
//!
//! A scheduling pass is batched: it drains the pending queue once against
//! the directory's capacity index, reserving capacity as it places so later
//! jobs in the same pass see the updated state — no per-job rescans, no
//! re-ranking between placements. Displaced jobs whose provider returned
//! take a preferred-node fast path that runs before the general drain, so
//! migrate-back can't lose its home slot to an earlier queue position.

use crate::directory::{Directory, NodeLiveness};
use crate::strategy::{Selector, Strategy};
use gpunion_db::{DbActor, DbActorConfig, JobState, NodeRecord, NodeState, SystemDb, WriteIntent};
use gpunion_des::{Online, SimDuration, SimTime, TokenBucket};
use gpunion_protocol::{
    AuthToken, Control, DispatchSpec, Envelope, FreeSlice, JobId, KillReason, Message, NodeUid,
    TokenRegistry, UserId, Work, WorkloadState,
};
use gpunion_telemetry::{labels, Counter, MetricHistogram, Registry};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// A typed envelope bound for the coordinator actor's inbox.
///
/// Everything that mutates coordinator state travels as one of these —
/// registration, heartbeat, and scheduling traffic ride [`Message`]s inside
/// [`CoordEnvelope::Net`] / [`CoordEnvelope::Msg`]; user submissions and
/// harness injections have their own variants. Timer wakes are internal to
/// the actor (they never cross the inbox); the DES pump only ever observes
/// them through [`Coordinator::next_wake`].
#[derive(Debug)]
pub enum CoordEnvelope {
    /// An authenticated-on-arrival network envelope (Register, Heartbeat,
    /// DispatchReply, WorkloadUpdate, CheckpointDone, DepartureNotice, …).
    /// Token validation happens at the actor turn, not at enqueue.
    Net(Box<Envelope>),
    /// A pre-authenticated message (trusted harness path — the equivalent
    /// of [`CoordEnvelope::Net`] with validation already done).
    Msg(Box<Message>),
    /// A user client submits a job. The job id is assigned at admission
    /// (see [`Coordinator::send`]); the spec's `job` field is overwritten.
    SubmitJob(Box<DispatchSpec>),
    /// A user client cancels a job.
    CancelJob(JobId),
    /// Harness-observed node loss (emergency departure injected out of
    /// band): displace everything the node was running.
    NodeDeparture(NodeUid),
    /// Reset latency/backlog telemetry (coordinator inbox + database
    /// write queue) — experiment harnesses send this after a warm-up phase
    /// so steady-state numbers exclude the boot-time registration storm.
    ResetTelemetry,
}

/// What [`Coordinator::send`] did with an envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Accepted into the inbox. Job submissions get their id assigned at
    /// admission so the caller can track the job before its turn runs.
    Enqueued {
        /// The id assigned to a [`CoordEnvelope::SubmitJob`] (None for
        /// every other variant).
        job: Option<JobId>,
    },
    /// Sheddable envelope (heartbeat) dropped at the inbox bound — the
    /// next heartbeat carries fresher data. Critical envelopes are never
    /// shed.
    Shed,
}

/// Actions for the embedding loop.
#[derive(Debug)]
pub enum CoordAction {
    /// Send a message to a node's agent. `delay` models the scheduling /
    /// database latency accrued before the message leaves the coordinator.
    Send {
        /// Destination node.
        to: NodeUid,
        /// The message.
        msg: Message,
        /// Processing delay before transmission.
        delay: SimDuration,
    },
    /// Job lifecycle notification for user clients / experiment harnesses.
    JobEvent {
        /// The job.
        job: JobId,
        /// What happened.
        event: JobEvent,
    },
}

/// Job lifecycle events surfaced to the platform user.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEvent {
    /// Accepted into the pending queue.
    Queued,
    /// Dispatched to a node (offer in flight).
    Dispatched {
        /// Target node.
        node: NodeUid,
    },
    /// Agent reported the workload running.
    Started {
        /// Hosting node.
        node: NodeUid,
    },
    /// Finished successfully.
    Completed,
    /// Permanently failed (retries exhausted).
    Failed,
    /// Displaced (kill-switch / departure / heartbeat loss) and requeued.
    Requeued {
        /// Checkpoint sequence it will restore from (None = from scratch).
        restore_seq: Option<u64>,
    },
    /// Displaced job placed back on its original node after the provider
    /// returned.
    MigratedBack {
        /// The original (returning) node.
        node: NodeUid,
    },
}

/// How placements reach nodes (DESIGN.md §3c).
///
/// * `Push` — the coordinator's scheduling pass drains the pending queue
///   against the capacity index and *pushes* [`Work::Dispatch`] offers at
///   nodes of its choosing. The pre-marketplace behaviour; the default, and
///   bit-identical to it.
/// * `Pull` — agents advertise free capacity with [`Work::WorkRequest`]
///   offers; the pass drains pending jobs against *offered* capacity and
///   answers with [`Work::WorkGrant`] leases, falling back to the capacity
///   index (a plain `Dispatch`) for jobs no live offer can satisfy. On a
///   quiescent trace where every free node holds a live offer, pull reaches
///   the same allocation fixpoint as push (property-tested).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementMode {
    /// Coordinator-chosen placements pushed at nodes (the default).
    #[default]
    Push,
    /// Worker-pull marketplace: request/grant against standing offers.
    Pull,
}

/// Token-bucket admission control on job submissions (the coordinator's
/// front door). `None` in [`CoordinatorConfig::admission`] — the default —
/// admits everything, preserving the pre-marketplace invariant that job
/// submissions are never shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Burst: submissions admitted instantly from a full bucket.
    pub burst: u64,
    /// Sustained admission rate, submissions per second.
    pub rate_per_sec: u64,
    /// Submissions at or above this priority bypass the bucket entirely —
    /// critical jobs are never shed, even at overload (ρ > 1).
    pub critical_priority: u8,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            burst: 64,
            rate_per_sec: 16,
            critical_priority: 3,
        }
    }
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Heartbeat period agents must honour.
    pub heartbeat_period: SimDuration,
    /// Heartbeats missed before a node is marked unavailable (paper: 3).
    pub missed_beats: u32,
    /// Allocation strategy.
    pub strategy: Strategy,
    /// How long after displacement a returning provider can reclaim its
    /// jobs (migrate-back window).
    pub migrate_back_window: SimDuration,
    /// Dispatch attempts per job before it is failed.
    pub max_retries: u32,
    /// How long to wait for a DispatchReply before treating it as a reject.
    pub offer_timeout: SimDuration,
    /// Coordinator inbox bound. Heartbeat envelopes submitted past this
    /// depth are shed (the next beat carries fresher data); critical
    /// envelopes are always accepted and counted if over the bound.
    pub inbox_capacity: usize,
    /// Directory shards (by node uid). 1 — the default — reproduces the
    /// unsharded directory exactly; larger counts keep each per-shard
    /// index small as fleets grow past 10⁴ nodes, with the read views
    /// k-way-merged so pick order is bit-identical at any count
    /// (DESIGN.md §3b).
    pub shard_count: usize,
    /// Directory shard-actor worker threads. 0 — the default — applies
    /// shard intents inline on the coordinator's thread (the degenerate
    /// actor: the exact pre-actor code path, byte-stable goldens);
    /// `W ≥ 1` multiplexes the shards onto `W` worker threads behind
    /// per-worker inboxes, with every read quiescing at the join point
    /// first (DESIGN.md §3b). Scheduling decisions are bit-identical at
    /// any value (property-tested). Defaults to `GPUNION_WORKER_THREADS`
    /// when set, so CI can run the whole suite threaded.
    pub worker_threads: usize,
    /// Database write-queue parameters (service time, inbox bound).
    pub db: DbActorConfig,
    /// Placement mode: coordinator-push (default) or worker-pull
    /// marketplace (DESIGN.md §3c).
    pub placement_mode: PlacementMode,
    /// Token-bucket admission control on job submissions. `None` (default)
    /// admits everything — job submissions are never shed.
    pub admission: Option<AdmissionConfig>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            heartbeat_period: SimDuration::from_secs(5),
            missed_beats: 3,
            strategy: Strategy::RoundRobin,
            migrate_back_window: SimDuration::from_mins(30),
            max_retries: 5,
            offer_timeout: SimDuration::from_secs(10),
            inbox_capacity: 4096,
            shard_count: 1,
            worker_threads: std::env::var("GPUNION_WORKER_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            db: DbActorConfig::default(),
            placement_mode: PlacementMode::Push,
            admission: None,
        }
    }
}

/// A node's standing capacity offer (pull mode): what it advertised and
/// until when the advertisement is trusted.
#[derive(Debug, Clone)]
struct Offer {
    /// Free capacity by GPU shape, as the agent reported it. Advisory —
    /// the directory's reservation bookkeeping stays authoritative; the
    /// slices pre-filter grants so a stale offer can't draw a grant its
    /// shape can no longer cover.
    slices: Vec<FreeSlice>,
    /// When the offer lapses (receipt + the agent's deadline).
    expires: SimTime,
}

impl Offer {
    /// Whether the advertised slices could host `spec`: enough GPUs among
    /// shapes with sufficient VRAM and compute capability.
    fn matches(&self, spec: &DispatchSpec) -> bool {
        let mut covered: u32 = 0;
        for s in &self.slices {
            let cc_ok = spec
                .min_cc
                .map(|(maj, min)| (s.cc_major, s.cc_minor) >= (maj, min))
                .unwrap_or(true);
            if cc_ok && s.mem_bytes >= spec.gpu_mem_bytes {
                covered += s.count as u32;
            }
        }
        covered >= spec.gpus as u32
    }
}

/// Scheduler-side job bookkeeping.
#[derive(Debug, Clone)]
struct JobMeta {
    spec: DispatchSpec,
    current_node: Option<NodeUid>,
    offered_to: Option<NodeUid>,
    /// Nodes that rejected this job in the current placement epoch.
    /// Cleared on displacement — a new epoch with a changed world.
    excluded: Vec<NodeUid>,
    preferred: Option<NodeUid>,
    /// The preferred home node's directory-shard affinity, cached when the
    /// preference is set (§3b: the migrate-back fast path reads job +
    /// home-node state together, so phase-1 placements route through the
    /// owning shard instead of re-hashing the uid).
    preferred_shard: Option<u32>,
    /// Capacity held on the preferred home node while a migrate-back
    /// checkpoint round-trip is in flight: (node, held since).
    home_hold: Option<(NodeUid, SimTime)>,
    latest_checkpoint: Option<(u64, Vec<NodeUid>)>,
    displaced_from: Option<(NodeUid, SimTime)>,
    migrating_back: bool,
    retries: u32,
    submitted_at: SimTime,
    /// Absolute expiry of the pull-mode [`Work::WorkGrant`] lease this job
    /// runs under, renewed by every heartbeat from the hosting node that
    /// reports the workload. `None` for push-mode placements (no lease).
    /// The heartbeat sweep revokes grants whose lease lapsed.
    lease: Option<SimTime>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoordTimer {
    HeartbeatSweep,
    SchedulePass,
    OfferTimeout(JobId),
}

/// An inbox entry: accepted at `enqueued`, processed at its turn.
#[derive(Debug)]
struct QueuedEnvelope {
    enqueued: SimTime,
    env: CoordEnvelope,
}

/// One coherent snapshot of the coordinator's observable counters — the
/// replacement for the family of ad-hoc per-counter getters. Taken with
/// [`Coordinator::stats`] in a single call, so every field reflects the
/// same instant (readers previously interleaving getters could observe a
/// torn view across turns). Telemetry fields reset together on
/// [`CoordEnvelope::ResetTelemetry`].
#[derive(Debug, Clone)]
pub struct CoordinatorStats {
    /// Jobs not yet terminal (pending, offered, or running).
    pub live_jobs: usize,
    /// Envelopes waiting in the inbox right now.
    pub inbox_depth: usize,
    /// Deepest the inbox has been since the last telemetry reset.
    pub inbox_depth_peak: usize,
    /// Inbox sojourn statistics (enqueue → turn, seconds).
    pub inbox_sojourn: Online,
    /// Heartbeat envelopes shed at the inbox bound.
    pub shed_envelopes: u64,
    /// Critical envelopes accepted while the inbox was over its bound.
    pub over_bound_envelopes: u64,
    /// Turns deferred on database write-queue backpressure.
    pub deferred_turns: u64,
    /// Job submissions shed by token-bucket admission control. Criticals
    /// (priority ≥ [`AdmissionConfig::critical_priority`]) never count
    /// here — they bypass the bucket.
    pub admission_shed_jobs: u64,
    /// Scheduling decision latency statistics (the §5.2 quantity).
    pub decision_latency: Online,
    /// Database writes queued but not yet applied.
    pub db_depth: usize,
    /// Deepest the database write queue has been since the last reset.
    pub db_depth_peak: usize,
    /// Database writes applied to the tables so far.
    pub db_applied_writes: u64,
    /// Sheddable database writes dropped at the write-queue bound.
    pub db_shed_writes: u64,
    /// Critical database writes admitted while the queue was at bound.
    pub db_over_bound_writes: u64,
    /// Database write sojourn statistics (submit → apply, seconds).
    pub db_sojourn: Online,
    /// Standing pull-mode capacity offers currently live.
    pub live_offers: usize,
    /// Pull-mode [`Work::WorkGrant`]s sent against standing offers.
    pub grants_sent: u64,
    /// Pull-mode [`Work::GrantNack`]s sent for offers that lapsed unmatched.
    pub nacks_sent: u64,
    /// Pull-mode grants revoked because their lease expired unrenewed
    /// (no heartbeat from the hosting node reported the workload).
    pub lease_revocations: u64,
}

/// The coordinator actor.
pub struct Coordinator {
    config: CoordinatorConfig,
    db: DbActor,
    dir: Directory,
    tokens: TokenRegistry,
    selector: Selector,
    /// The bounded MPSC inbox. Envelopes drain FIFO inside `advance`.
    inbox: VecDeque<QueuedEnvelope>,
    /// The inbox head is a critical envelope and the database write queue
    /// is at bound: the actor is waiting for a write completion before
    /// taking its next turn (critical-write backpressure).
    stalled: bool,
    /// Standing capacity offers by node (pull mode), ordered by uid so
    /// grant matching is deterministic. Empty in push mode.
    offers: BTreeMap<NodeUid, Offer>,
    /// Admission token bucket, built from [`CoordinatorConfig::admission`].
    admission: Option<TokenBucket>,
    /// Ordered by job id so displacement/migrate-back sweeps are
    /// deterministic (golden-output experiments depend on it).
    jobs: BTreeMap<JobId, JobMeta>,
    /// Jobs currently holding a migrate-back home slot — the sweep and
    /// node-loss scans walk this (holds are rare) instead of every job.
    held_jobs: BTreeSet<JobId>,
    next_job: u64,
    timers: BTreeMap<(SimTime, u64), CoordTimer>,
    timer_seq: u64,
    pass_armed: bool,
    metrics: Registry,
    // Cached handles: registry lookups take a lock + label hashing, which
    // the per-dispatch hot path must not pay.
    sched_latency: Option<Arc<MetricHistogram>>,
    jobs_submitted: Option<Arc<Counter>>,
    jobs_displaced: Option<Arc<Counter>>,
    nodes_lost: Option<Arc<Counter>>,
    decision_latency: Online,
    // Inbox telemetry (enqueue → turn).
    inbox_sojourn: Online,
    inbox_depth_peak: usize,
    shed_envelopes: u64,
    over_bound_envelopes: u64,
    deferred_turns: u64,
    /// Job submissions shed by admission control (non-critical only).
    admission_shed: u64,
    /// Pull-mode grants sent against standing offers.
    grants_sent: u64,
    /// Pull-mode nacks sent for offers that expired unmatched.
    nacks_sent: u64,
    /// Pull-mode grants revoked at lease expiry.
    lease_revocations: u64,
    rng: SmallRng,
}

impl Coordinator {
    /// A coordinator with the given config; `seed` drives token issuance.
    /// Periodic duties (the heartbeat sweep) are armed from `SimTime::ZERO`.
    pub fn new(config: CoordinatorConfig, seed: u64) -> Self {
        let selector = Selector::new(config.strategy);
        let metrics = Registry::new();
        let sched_latency = metrics
            .histogram(
                "scheduling_latency_seconds",
                "per-decision scheduling latency",
                labels([]),
            )
            .ok();
        let jobs_submitted = metrics
            .counter("jobs_submitted_total", "jobs submitted", labels([]))
            .ok();
        let jobs_displaced = metrics
            .counter("jobs_displaced_total", "displacements", labels([]))
            .ok();
        let nodes_lost = metrics
            .counter("nodes_lost_total", "node losses", labels([]))
            .ok();
        let db = DbActor::new(config.db, seed ^ 0xD8);
        let dir = Directory::with_shards_workers(config.shard_count, config.worker_threads);
        let admission = config
            .admission
            .as_ref()
            .map(|a| TokenBucket::new(a.burst, a.rate_per_sec, SimTime::ZERO));
        let mut coord = Coordinator {
            config,
            db,
            dir,
            tokens: TokenRegistry::new(),
            selector,
            inbox: VecDeque::new(),
            stalled: false,
            offers: BTreeMap::new(),
            admission,
            jobs: BTreeMap::new(),
            held_jobs: BTreeSet::new(),
            next_job: 1,
            timers: BTreeMap::new(),
            timer_seq: 0,
            pass_armed: false,
            metrics,
            sched_latency,
            jobs_submitted,
            jobs_displaced,
            nodes_lost,
            decision_latency: Online::new(),
            inbox_sojourn: Online::new(),
            inbox_depth_peak: 0,
            shed_envelopes: 0,
            over_bound_envelopes: 0,
            deferred_turns: 0,
            admission_shed: 0,
            grants_sent: 0,
            nacks_sent: 0,
            lease_revocations: 0,
            rng: SmallRng::seed_from_u64(seed),
        };
        coord.arm(
            SimTime::ZERO + coord.config.heartbeat_period,
            CoordTimer::HeartbeatSweep,
        );
        coord
    }

    // ---- snapshot accessors (read-only consumers) ----------------------

    /// One coherent snapshot of every observable counter — coordinator
    /// inbox, scheduling, admission, marketplace, and database write-queue
    /// telemetry together. This is THE read surface for benches, harnesses,
    /// and experiment bins; the per-counter getters it replaces are
    /// deprecated.
    pub fn stats(&self) -> CoordinatorStats {
        CoordinatorStats {
            live_jobs: self.jobs.len(),
            inbox_depth: self.inbox.len(),
            inbox_depth_peak: self.inbox_depth_peak,
            inbox_sojourn: self.inbox_sojourn.clone(),
            shed_envelopes: self.shed_envelopes,
            over_bound_envelopes: self.over_bound_envelopes,
            deferred_turns: self.deferred_turns,
            admission_shed_jobs: self.admission_shed,
            decision_latency: self.decision_latency.clone(),
            db_depth: self.db.depth(),
            db_depth_peak: self.db.depth_peak(),
            db_applied_writes: self.db.applied_writes(),
            db_shed_writes: self.db.shed_writes(),
            db_over_bound_writes: self.db.over_bound_writes(),
            db_sojourn: self.db.sojourn().clone(),
            live_offers: self.offers.len(),
            grants_sent: self.grants_sent,
            nacks_sent: self.nacks_sent,
            lease_revocations: self.lease_revocations,
        }
    }

    /// The node directory (read access for harnesses).
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Snapshot of the system-database tables (read access for harnesses).
    /// Valid only within the current turn — in-flight writes apply on the
    /// next [`Coordinator::advance`].
    pub fn db(&self) -> &SystemDb {
        self.db.state()
    }

    /// The database write-queue actor (queue-depth / latency telemetry).
    pub fn db_actor(&self) -> &DbActor {
        &self.db
    }

    /// Scheduling decision latency statistics (the §5.2 quantity).
    #[deprecated(note = "use Coordinator::stats().decision_latency")]
    pub fn decision_latency(&self) -> &Online {
        &self.decision_latency
    }

    /// Coordinator metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Number of jobs not yet terminal.
    #[deprecated(note = "use Coordinator::stats().live_jobs")]
    pub fn live_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Envelopes waiting in the inbox right now.
    #[deprecated(note = "use Coordinator::stats().inbox_depth")]
    pub fn inbox_depth(&self) -> usize {
        self.inbox.len()
    }

    /// Deepest the inbox has been since the last telemetry reset.
    #[deprecated(note = "use Coordinator::stats().inbox_depth_peak")]
    pub fn inbox_depth_peak(&self) -> usize {
        self.inbox_depth_peak
    }

    /// Inbox sojourn statistics (enqueue → turn, in seconds) since the
    /// last telemetry reset. Under critical-write backpressure this is
    /// where the database stall becomes visible to senders.
    #[deprecated(note = "use Coordinator::stats().inbox_sojourn")]
    pub fn inbox_sojourn(&self) -> &Online {
        &self.inbox_sojourn
    }

    /// Heartbeat envelopes shed at the inbox bound.
    #[deprecated(note = "use Coordinator::stats().shed_envelopes")]
    pub fn shed_envelopes(&self) -> u64 {
        self.shed_envelopes
    }

    /// Critical envelopes accepted while the inbox was over its bound
    /// (never shed — counted so saturation is observable).
    #[deprecated(note = "use Coordinator::stats().over_bound_envelopes")]
    pub fn over_bound_envelopes(&self) -> u64 {
        self.over_bound_envelopes
    }

    /// Turns deferred because the database write queue was at bound for
    /// critical intents (envelope stalls, timer re-arms, and mid-pass
    /// stops all count).
    #[deprecated(note = "use Coordinator::stats().deferred_turns")]
    pub fn deferred_turns(&self) -> u64 {
        self.deferred_turns
    }

    /// Route a user's fair-share weight to the database (one critical
    /// write through the same bounded queue as every other mutation).
    /// Weights only matter under
    /// [`gpunion_db::QueueDiscipline::WeightedFairShare`].
    pub fn set_user_weight(&mut self, now: SimTime, user: UserId, weight: u64) {
        self.db
            .submit(now, WriteIntent::SetUserWeight { user, weight });
    }

    /// The emergent database write latency right now: residual write-queue
    /// backlog plus one mean service time (the §5.2 quantity).
    pub fn db_write_latency(&self, now: SimTime) -> SimDuration {
        self.db.write_latency_estimate(now)
    }

    /// Time a job has been waiting (diagnostics).
    pub fn job_wait(&self, job: JobId, now: SimTime) -> Option<SimDuration> {
        self.jobs.get(&job).map(|m| now.since(m.submitted_at))
    }

    /// The node currently hosting a job.
    pub fn job_node(&self, job: JobId) -> Option<NodeUid> {
        self.jobs.get(&job).and_then(|m| m.current_node)
    }

    /// Latest durable checkpoint of a job.
    pub fn job_checkpoint(&self, job: JobId) -> Option<(u64, Vec<NodeUid>)> {
        self.jobs
            .get(&job)
            .and_then(|m| m.latest_checkpoint.clone())
    }

    /// Validate a token for a node (live-mode helper).
    pub fn validate_token(&self, node: NodeUid, token: &AuthToken) -> bool {
        self.tokens.validate(node, token)
    }

    // ---- the inbox ------------------------------------------------------

    /// Enqueue an envelope for the actor's next turn. This is the ONLY
    /// entry point for mutating traffic: nothing is processed here — the
    /// turn runs inside [`Coordinator::advance`]. Heartbeats are shed at
    /// the inbox bound; every other envelope is always accepted (and a
    /// [`CoordEnvelope::SubmitJob`] gets its job id assigned so the caller
    /// can track it).
    pub fn send(&mut self, now: SimTime, env: CoordEnvelope) -> SendOutcome {
        let mut env = env;
        if self.envelope_sheddable(&env) && self.inbox.len() >= self.config.inbox_capacity {
            self.shed_envelopes += 1;
            return SendOutcome::Shed;
        }
        // Token-bucket admission on submissions (off by default). Critical
        // jobs bypass the bucket entirely — they are never shed, even at
        // sustained overload; everything else takes a token or bounces.
        if let (CoordEnvelope::SubmitJob(spec), Some(bucket), Some(cfg)) =
            (&env, &mut self.admission, &self.config.admission)
        {
            if spec.priority < cfg.critical_priority && !bucket.try_take(now) {
                self.admission_shed += 1;
                return SendOutcome::Shed;
            }
        }
        let job = if let CoordEnvelope::SubmitJob(spec) = &mut env {
            let id = JobId(self.next_job);
            self.next_job += 1;
            spec.job = id;
            Some(id)
        } else {
            None
        };
        if self.inbox.len() >= self.config.inbox_capacity {
            self.over_bound_envelopes += 1;
        }
        self.inbox.push_back(QueuedEnvelope { enqueued: now, env });
        self.inbox_depth_peak = self.inbox_depth_peak.max(self.inbox.len());
        SendOutcome::Enqueued { job }
    }

    /// Next wake time: the earliest of the inbox head (unless the actor is
    /// stalled on database backpressure), the earliest timer, and the next
    /// database write completion. While stalled, the next write completion
    /// *is* the wake — a slot frees and the turn retries.
    pub fn next_wake(&self) -> Option<SimTime> {
        let timer = self.timers.keys().next().map(|&(t, _)| t);
        let inbox = if self.stalled {
            None
        } else {
            self.inbox.front().map(|q| q.enqueued)
        };
        [timer, inbox, self.db.next_wake()]
            .into_iter()
            .flatten()
            .min()
    }

    /// Run the actor up to `now`: apply due database writes first (so
    /// every turn reads a database that reflects all writes whose service
    /// completed), then take turns — inbox envelopes and due timers merged
    /// in time order, timers first on ties (a timer armed *for* `t`
    /// precedes work enqueued *at* `t`; this makes turn order independent
    /// of how senders batch their same-instant sends — property-tested).
    ///
    /// Critical-write backpressure: when the database inbox is at bound, a
    /// turn that would submit critical intents is deferred — the envelope
    /// stays at the inbox head (FIFO order preserved) or the timer is
    /// re-armed at the next write completion — rather than over-filling
    /// the queue. Deferred work retries as completions free slots.
    pub fn advance(&mut self, now: SimTime) -> Vec<CoordAction> {
        let mut actions = Vec::new();
        loop {
            // Re-applied every turn: a turn may submit writes whose service
            // lands within this same instant, and deferral target times
            // must always be strictly in the future.
            self.db.advance(now);
            if self.stalled && !self.db.would_block() {
                self.stalled = false;
            }
            let env_due = self
                .inbox
                .front()
                .map(|q| q.enqueued)
                .filter(|&t| t <= now && !self.stalled);
            let timer_due = self
                .timers
                .first_key_value()
                .map(|(&(t, _), _)| t)
                .filter(|&t| t <= now);
            match (env_due, timer_due) {
                (None, None) => break,
                (Some(e), t) if t.is_none_or(|t| e < t) => {
                    if self.head_turn_writes() && self.db.would_block() {
                        // The head would over-fill the write queue: stall
                        // until a completion frees a slot. FIFO blocks the
                        // whole inbox so ordering is never violated.
                        self.stalled = true;
                        self.deferred_turns += 1;
                        continue;
                    }
                    let q = self.inbox.pop_front().expect("just peeked");
                    self.inbox_sojourn
                        .record(now.since(q.enqueued).as_secs_f64());
                    self.process_envelope(now, q.env, &mut actions);
                }
                _ => {
                    let (&key, _) = self
                        .timers
                        .first_key_value()
                        .expect("non-envelope turn implies a due timer");
                    let timer = self.timers.remove(&key).expect("just observed");
                    if self.db.would_block() {
                        // Every timer's duty submits critical writes
                        // (requeues, state flips, dequeues): re-arm it at
                        // the next write completion instead of firing.
                        self.deferred_turns += 1;
                        let retry = self.db.next_wake().expect("full queue has completions");
                        self.arm(retry.max(now), timer);
                        continue;
                    }
                    self.fire_timer(now, timer, &mut actions);
                }
            }
        }
        actions
    }

    fn process_envelope(
        &mut self,
        now: SimTime,
        env: CoordEnvelope,
        actions: &mut Vec<CoordAction>,
    ) {
        match env {
            CoordEnvelope::Net(e) => self.handle_envelope(now, *e, actions),
            CoordEnvelope::Msg(m) => self.handle_message(now, *m, actions),
            CoordEnvelope::SubmitJob(spec) => self.admit_job(now, *spec, actions),
            CoordEnvelope::CancelJob(job) => self.cancel_job(now, job, actions),
            CoordEnvelope::NodeDeparture(node) => self.node_lost(now, node, actions),
            CoordEnvelope::ResetTelemetry => {
                self.db.reset_telemetry();
                self.inbox_sojourn = Online::new();
                self.inbox_depth_peak = self.inbox.len();
                self.shed_envelopes = 0;
                self.over_bound_envelopes = 0;
                self.deferred_turns = 0;
                self.admission_shed = 0;
                self.grants_sent = 0;
                self.nacks_sent = 0;
                self.lease_revocations = 0;
            }
        }
    }

    fn fire_timer(&mut self, now: SimTime, timer: CoordTimer, actions: &mut Vec<CoordAction>) {
        match timer {
            CoordTimer::HeartbeatSweep => {
                self.heartbeat_sweep(now, actions);
                self.arm(
                    now + self.config.heartbeat_period,
                    CoordTimer::HeartbeatSweep,
                );
            }
            CoordTimer::SchedulePass => {
                self.pass_armed = false;
                self.scheduling_pass(now, actions);
            }
            CoordTimer::OfferTimeout(job) => {
                self.offer_timed_out(now, job, actions);
            }
        }
    }

    fn arm(&mut self, at: SimTime, t: CoordTimer) {
        self.timers.insert((at, self.timer_seq), t);
        self.timer_seq += 1;
    }

    fn arm_pass(&mut self, now: SimTime) {
        if !self.pass_armed {
            self.pass_armed = true;
            // A pass runs once the write queue has drained the transactions
            // submitted so far (its own enqueues included) — this is where
            // scheduling latency grows with scale: the deeper the backlog,
            // the later the pass.
            let delay = self.db.write_latency_estimate(now);
            self.arm(now + delay, CoordTimer::SchedulePass);
        }
    }

    /// Database backpressure hit mid-pass: stop draining and re-arm the
    /// pass at the next write completion. Placements already made in this
    /// pass keep their reservations and offers; the remainder of the
    /// queue is retried once a slot frees — the stall shows up as added
    /// pass latency, never as a dropped critical write.
    fn defer_pass(&mut self, now: SimTime) {
        self.deferred_turns += 1;
        self.pass_armed = true;
        let retry = self
            .db
            .next_wake()
            .map(|t| t.max(now))
            .unwrap_or(now + self.config.db.mean_service_time);
        self.arm(retry, CoordTimer::SchedulePass);
    }

    // ---- turn handlers ---------------------------------------------------

    /// Admission of a user job submission (the [`CoordEnvelope::SubmitJob`]
    /// turn). The id was assigned at enqueue; `now` is the turn time, so a
    /// backpressure stall is visible as later `submitted_at`.
    fn admit_job(&mut self, now: SimTime, spec: DispatchSpec, actions: &mut Vec<CoordAction>) {
        let job = spec.job;
        let priority = spec.priority;
        self.db.submit(
            now,
            WriteIntent::SubmitJob {
                job,
                submitted_at: now,
                priority,
                user: spec.user,
                // The weighted max-min currency: requested VRAM × GPUs.
                demand: spec.gpu_mem_bytes.saturating_mul(spec.gpus as u64),
            },
        );
        self.jobs.insert(
            job,
            JobMeta {
                spec,
                current_node: None,
                offered_to: None,
                excluded: Vec::new(),
                preferred: None,
                preferred_shard: None,
                home_hold: None,
                latest_checkpoint: None,
                displaced_from: None,
                migrating_back: false,
                retries: 0,
                submitted_at: now,
                lease: None,
            },
        );
        actions.push(CoordAction::JobEvent {
            job,
            event: JobEvent::Queued,
        });
        self.arm_pass(now);
        if let Some(c) = &self.jobs_submitted {
            c.inc();
        }
    }

    /// Cancel a job (the [`CoordEnvelope::CancelJob`] turn).
    fn cancel_job(&mut self, now: SimTime, job: JobId, actions: &mut Vec<CoordAction>) {
        self.drop_hold(job);
        let Some(meta) = self.jobs.remove(&job) else {
            return;
        };
        self.db.submit(now, WriteIntent::TakePending(job));
        let latency = self
            .db
            .submit(now, WriteIntent::SetJobState(job, JobState::Cancelled));
        if let Some(node) = meta.current_node.or(meta.offered_to) {
            self.dir.release(node, job);
            actions.push(CoordAction::Send {
                to: node,
                msg: Work::Kill {
                    job,
                    reason: KillReason::UserCancel,
                }
                .into(),
                // The kill follows the cancellation transaction.
                delay: latency,
            });
        }
    }

    /// Drop a job's migrate-back hold (and its reservation), if any.
    fn drop_hold(&mut self, job: JobId) {
        self.held_jobs.remove(&job);
        if let Some(meta) = self.jobs.get_mut(&job) {
            if let Some((node, _)) = meta.home_hold.take() {
                self.dir.release(node, job);
            }
        }
    }

    /// Abandon every live hold whose (node, held-since) matches `pred` —
    /// the expiry sweep and node-loss teardown share this walk over the
    /// (small) held-jobs set.
    fn abandon_holds_where(&mut self, now: SimTime, pred: impl Fn(NodeUid, SimTime) -> bool) {
        let doomed: Vec<JobId> = self
            .held_jobs
            .iter()
            .filter(|j| {
                self.jobs
                    .get(j)
                    .and_then(|m| m.home_hold)
                    .map(|(n, at)| pred(n, at))
                    .unwrap_or(false)
            })
            .copied()
            .collect();
        for job in doomed {
            self.abandon_migrate_back(now, job);
        }
    }

    /// Give up on moving a job back home: drop the hold, the preference,
    /// and the in-flight migrate-back flag, and arm a pass — a pending job
    /// was deliberately skipped by the drain while its hold lived, so
    /// releasing it must re-open general placement even on a quiet fleet.
    fn abandon_migrate_back(&mut self, now: SimTime, job: JobId) {
        self.drop_hold(job);
        if let Some(meta) = self.jobs.get_mut(&job) {
            meta.preferred = None;
            meta.preferred_shard = None;
            meta.migrating_back = false;
        }
        self.arm_pass(now);
    }

    // ---- message handling --------------------------------------------

    /// Validate and process a network envelope (one actor turn).
    fn handle_envelope(&mut self, now: SimTime, env: Envelope, actions: &mut Vec<CoordAction>) {
        // Register is the only unauthenticated message.
        if !matches!(env.msg, Message::Control(Control::Register { .. })) {
            let valid = self.tokens.validate(env.sender, &env.token)
                // Node-bearing messages must also claim the right sender.
                && message_source(&env.msg)
                    .map(|n| n == env.sender)
                    .unwrap_or(true);
            if !valid {
                actions.push(CoordAction::Send {
                    to: env.sender,
                    msg: Control::Error {
                        code: 401,
                        detail: "invalid token".into(),
                    }
                    .into(),
                    delay: SimDuration::ZERO,
                });
                return;
            }
        }
        self.handle_message(now, env.msg, actions);
    }

    /// Process an already-authenticated message (one actor turn).
    fn handle_message(&mut self, now: SimTime, msg: Message, actions: &mut Vec<CoordAction>) {
        match msg {
            Message::Control(c) => self.handle_control(now, c, actions),
            Message::Work(w) => self.handle_work(now, w, actions),
        }
    }

    /// Membership and status traffic: registration, heartbeats,
    /// departures, pause toggles.
    fn handle_control(&mut self, now: SimTime, msg: Control, actions: &mut Vec<CoordAction>) {
        match msg {
            Control::Register {
                machine_id,
                hostname,
                gpus,
                agent_version: _,
            } => {
                let gpu_count = gpus.len() as u8;
                let (uid, returning) = self.dir.register(&machine_id, &hostname, gpus, now);
                let token = self.tokens.issue(uid, &mut self.rng);
                let latency = self.db.submit(
                    now,
                    WriteIntent::UpsertNode(NodeRecord {
                        uid,
                        hostname,
                        gpu_count,
                        registered_at: now,
                        last_seen: now,
                        state: NodeState::Active,
                    }),
                );
                actions.push(CoordAction::Send {
                    to: uid,
                    msg: Control::RegisterAck {
                        node: uid,
                        token,
                        heartbeat_period_ms: self.config.heartbeat_period.as_millis() as u32,
                    }
                    .into(),
                    // The ack leaves once the registration row is durable:
                    // its own write's emergent sojourn time.
                    delay: latency,
                });
                if returning {
                    self.provider_returned(now, uid, actions);
                }
                self.arm_pass(now);
            }
            Control::Heartbeat {
                node,
                seq,
                accepting,
                gpu_stats,
                workloads,
            } => {
                let was_offline = self
                    .dir
                    .get(node)
                    .map(|e| e.liveness() == NodeLiveness::Offline)
                    .unwrap_or(false);
                self.dir
                    .apply_heartbeat(node, now, seq, accepting, &gpu_stats);
                // Every heartbeat is one status write through the same
                // queue as scheduling transactions — §5.2's contention is
                // this traffic. Sheddable: a full inbox drops it and the
                // next heartbeat carries fresher data.
                self.db.try_submit(now, WriteIntent::NodeSeen(node));
                if was_offline {
                    // Node came back without re-registering (short blip).
                    self.db
                        .submit(now, WriteIntent::SetNodeState(node, NodeState::Active));
                    self.provider_returned(now, node, actions);
                }
                // Progress bookkeeping from piggybacked workload status.
                let lease_period = self.config.offer_timeout;
                for ws in &workloads {
                    if let Some(meta) = self.jobs.get_mut(&ws.job) {
                        // A heartbeat that reports the workload from its
                        // hosting node renews the pull-mode grant lease.
                        if meta.lease.is_some() && meta.current_node == Some(node) {
                            meta.lease = Some(now + lease_period);
                        }
                        if ws.checkpoint_seq > 0 {
                            let stored = meta
                                .latest_checkpoint
                                .as_ref()
                                .map(|(_, s)| s.clone())
                                .unwrap_or_default();
                            if meta
                                .latest_checkpoint
                                .as_ref()
                                .map(|(s, _)| *s < ws.checkpoint_seq)
                                .unwrap_or(true)
                            {
                                meta.latest_checkpoint = Some((ws.checkpoint_seq, stored));
                            }
                        }
                    }
                }
                actions.push(CoordAction::Send {
                    to: node,
                    msg: Control::HeartbeatAck { node, seq }.into(),
                    delay: SimDuration::ZERO,
                });
            }
            Control::DepartureNotice { node, mode } if self.dir.get(node).is_some() => {
                self.dir.record_interruption(node, now);
                match mode {
                    gpunion_protocol::DepartureMode::Graceful { .. } => {
                        self.dir.set_liveness(node, NodeLiveness::Departing);
                        self.db
                            .submit(now, WriteIntent::SetNodeState(node, NodeState::Departed));
                        // Jobs will checkpoint; displacement happens when
                        // the node goes offline (or per CheckpointDone).
                    }
                    gpunion_protocol::DepartureMode::Emergency => {
                        self.node_lost(now, node, actions);
                    }
                }
            }
            Control::PauseScheduling { node, paused } => {
                let liveness = self.dir.get(node).map(|e| e.liveness());
                if liveness.is_some() && liveness != Some(NodeLiveness::Offline) {
                    self.dir.set_liveness(
                        node,
                        if paused {
                            NodeLiveness::Paused
                        } else {
                            NodeLiveness::Active
                        },
                    );
                }
                self.db.submit(
                    now,
                    WriteIntent::SetNodeState(
                        node,
                        if paused {
                            NodeState::Paused
                        } else {
                            NodeState::Active
                        },
                    ),
                );
                if !paused {
                    self.arm_pass(now);
                }
            }
            _ => {}
        }
    }

    /// Job placement and lifecycle traffic — including the pull-mode
    /// request/grant marketplace (DESIGN.md §3c).
    fn handle_work(&mut self, now: SimTime, msg: Work, actions: &mut Vec<CoordAction>) {
        match msg {
            Work::DispatchReply {
                job,
                accepted,
                reason: _,
            } => {
                self.timers
                    .retain(|_, t| !matches!(t, CoordTimer::OfferTimeout(j) if *j == job));
                let Some(meta) = self.jobs.get_mut(&job) else {
                    return;
                };
                let node = meta.offered_to.take();
                let Some(node) = node else {
                    return;
                };
                if accepted {
                    meta.current_node = Some(node);
                    // `preferred` is only ever set to a returning provider's
                    // node, so landing there means the migrate-back worked.
                    let migrated_back = meta.preferred == Some(node);
                    if migrated_back {
                        meta.displaced_from = None;
                    }
                    // Either way the preference is spent: it belongs to the
                    // placement epoch in which the provider returned. Left
                    // in place, a placement on another node would let a much
                    // later, unrelated displacement still route home and
                    // count as a migrate-back.
                    meta.preferred = None;
                    meta.preferred_shard = None;
                    meta.migrating_back = false;
                    // Release the offer reservation: the agent has allocated
                    // real VRAM, which the next heartbeat reports. Keeping
                    // the reservation would double-count the job's memory.
                    self.dir.release(node, job);
                    self.drop_hold(job);
                    self.db.submit(
                        now,
                        WriteIntent::Allocate {
                            job,
                            node,
                            gpu_indices: vec![],
                            at: now,
                        },
                    );
                    if migrated_back {
                        actions.push(CoordAction::JobEvent {
                            job,
                            event: JobEvent::MigratedBack { node },
                        });
                    }
                } else {
                    self.offer_failed(now, job, node, actions);
                }
            }
            Work::WorkloadUpdate { status, exit_code } => {
                let job = status.job;
                match status.state {
                    WorkloadState::Running => {
                        if let Some(meta) = self.jobs.get(&job) {
                            if let Some(node) = meta.current_node {
                                actions.push(CoordAction::JobEvent {
                                    job,
                                    event: JobEvent::Started { node },
                                });
                            }
                        }
                    }
                    WorkloadState::Completed => {
                        self.finish_job(now, job, actions);
                    }
                    WorkloadState::Killed => {
                        // Provider kill-switch or preemption: displace.
                        self.displace_job(now, job, actions);
                    }
                    WorkloadState::Failed => {
                        let retry = self
                            .jobs
                            .get_mut(&job)
                            .map(|m| {
                                m.retries += 1;
                                m.retries <= self.config.max_retries
                            })
                            .unwrap_or(false);
                        if retry {
                            self.displace_job(now, job, actions);
                        } else {
                            self.fail_job(now, job, actions);
                        }
                    }
                    _ => {}
                }
                let _ = exit_code;
            }
            Work::CheckpointDone {
                job,
                seq,
                transfer_bytes: _,
                stored_on,
            } => {
                let migrating_back = if let Some(meta) = self.jobs.get_mut(&job) {
                    meta.latest_checkpoint = Some((seq, stored_on));
                    meta.migrating_back
                } else {
                    false
                };
                if migrating_back {
                    // Fresh checkpoint durable: now preempt and move home.
                    if let Some(meta) = self.jobs.get_mut(&job) {
                        meta.migrating_back = false;
                    }
                    if let Some(node) = self.jobs.get(&job).and_then(|m| m.current_node) {
                        let delay = self.db.write_latency_estimate(now);
                        actions.push(CoordAction::Send {
                            to: node,
                            msg: Work::Kill {
                                job,
                                reason: KillReason::SchedulerPreempt,
                            }
                            .into(),
                            // The preempt order queues behind the current
                            // write backlog like any other transaction.
                            delay,
                        });
                    }
                }
            }
            Work::WorkRequest {
                node,
                free_slices,
                deadline_ms,
            } => {
                // A standing offer replaces any earlier one from the same
                // node (latest capacity picture wins). Offers from nodes
                // the directory doesn't know — or can't place on — are
                // dropped silently; the agent re-offers on its next
                // capacity change.
                let placeable = self
                    .dir
                    .get(node)
                    .map(|e| e.liveness() == NodeLiveness::Active)
                    .unwrap_or(false);
                if !placeable || free_slices.is_empty() {
                    return;
                }
                self.offers.insert(
                    node,
                    Offer {
                        slices: free_slices,
                        expires: now + SimDuration::from_millis(deadline_ms as u64),
                    },
                );
                // Fresh capacity on the market: drain pending against it.
                self.arm_pass(now);
            }
            _ => {}
        }
    }

    // ---- failure handling ----------------------------------------------

    fn heartbeat_sweep(&mut self, now: SimTime, actions: &mut Vec<CoordAction>) {
        let timeout = self.config.heartbeat_period * self.config.missed_beats as u64;
        for uid in self.dir.stale_nodes(now, timeout) {
            self.node_lost(now, uid, actions);
        }
        // Expire migrate-back holds whose window has passed: the held
        // capacity goes back to the pool and the preference lapses.
        let window = self.config.migrate_back_window;
        self.abandon_holds_where(now, |_, since| now.since(since) > window);
        // Lapsed capacity offers are nacked here too, so an idle market
        // (no passes running) still tells agents to re-offer.
        self.expire_offers(now, actions);
        // Enforce grant leases: a pull-mode placement whose lease lapsed
        // unrenewed (no heartbeat reported the workload) loses its grant —
        // the node is told to kill the run and the job requeues.
        let expired: Vec<(JobId, NodeUid)> = self
            .jobs
            .iter()
            .filter_map(|(job, m)| match (m.lease, m.current_node) {
                (Some(exp), Some(node)) if exp <= now => Some((*job, node)),
                _ => None,
            })
            .collect();
        for (job, node) in expired {
            self.lease_revocations += 1;
            actions.push(CoordAction::Send {
                to: node,
                msg: Work::Kill {
                    job,
                    reason: KillReason::SchedulerPreempt,
                }
                .into(),
                delay: SimDuration::ZERO,
            });
            self.displace_job(now, job, actions);
        }
    }

    /// A node is gone (heartbeat loss or emergency departure): displace
    /// everything it was running.
    fn node_lost(&mut self, now: SimTime, node: NodeUid, actions: &mut Vec<CoordAction>) {
        match self.dir.get(node) {
            None => return,
            Some(e) if e.liveness() == NodeLiveness::Offline => return,
            Some(_) => {}
        }
        self.dir.set_liveness(node, NodeLiveness::Offline);
        self.dir.record_interruption(node, now);
        // A dead node's standing offer dies with it (no nack: there is no
        // one left to hear it).
        self.offers.remove(&node);
        self.db
            .submit(now, WriteIntent::SetNodeState(node, NodeState::Unavailable));
        let displaced: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, m)| m.current_node == Some(node) || m.offered_to == Some(node))
            .map(|(j, _)| *j)
            .collect();
        for job in displaced {
            self.displace_job(now, job, actions);
        }
        // Migrate-back holds on the dead node are gone with it.
        self.abandon_holds_where(now, |n, _| n == node);
        if let Some(c) = &self.nodes_lost {
            c.inc();
        }
    }

    /// Requeue a displaced job for migration, restoring from its latest
    /// durable checkpoint when one exists.
    fn displace_job(&mut self, now: SimTime, job: JobId, actions: &mut Vec<CoordAction>) {
        let Some(meta) = self.jobs.get_mut(&job) else {
            return;
        };
        let from = meta.current_node.take().or(meta.offered_to.take());
        if let Some(n) = from {
            self.dir.release(n, job);
        }
        let meta = self.jobs.get_mut(&job).expect("still present");
        if let Some(n) = from {
            meta.displaced_from = Some((n, now));
        }
        let restore_seq = meta.latest_checkpoint.as_ref().map(|(s, _)| *s);
        meta.spec.restore_from_seq = restore_seq;
        meta.migrating_back = false;
        meta.lease = None;
        // New placement epoch: rejections collected while the job was last
        // being placed say nothing about the post-displacement world. In
        // particular the original node must be offerable again, or
        // migrate-back could never land (the fig3 gap).
        meta.excluded.clear();
        self.db.submit(now, WriteIntent::RequeueJob(job));
        actions.push(CoordAction::JobEvent {
            job,
            event: JobEvent::Requeued { restore_seq },
        });
        self.arm_pass(now);
        if let Some(c) = &self.jobs_displaced {
            c.inc();
        }
    }

    fn finish_job(&mut self, now: SimTime, job: JobId, actions: &mut Vec<CoordAction>) {
        self.drop_hold(job);
        if let Some(meta) = self.jobs.remove(&job) {
            if let Some(node) = meta.current_node {
                self.dir.release(node, job);
            }
            self.db
                .submit(now, WriteIntent::SetJobState(job, JobState::Completed));
            self.db.submit(now, WriteIntent::Deallocate(job));
            actions.push(CoordAction::JobEvent {
                job,
                event: JobEvent::Completed,
            });
            self.arm_pass(now);
        }
    }

    fn fail_job(&mut self, now: SimTime, job: JobId, actions: &mut Vec<CoordAction>) {
        self.drop_hold(job);
        if let Some(meta) = self.jobs.remove(&job) {
            if let Some(node) = meta.current_node.or(meta.offered_to) {
                self.dir.release(node, job);
            }
            self.db.submit(now, WriteIntent::TakePending(job));
            self.db
                .submit(now, WriteIntent::SetJobState(job, JobState::Failed));
            actions.push(CoordAction::JobEvent {
                job,
                event: JobEvent::Failed,
            });
        }
    }

    fn offer_timed_out(&mut self, now: SimTime, job: JobId, actions: &mut Vec<CoordAction>) {
        let Some(meta) = self.jobs.get_mut(&job) else {
            return;
        };
        let Some(node) = meta.offered_to.take() else {
            return;
        };
        self.offer_failed(now, job, node, actions);
    }

    /// Shared tail of "the offer to `node` did not work out" — explicit
    /// rejection and silent timeout take the same path: release the offer
    /// reservation, exclude the node for this placement epoch, burn a
    /// retry, give up on migrate-back if the refusing node was the home,
    /// then requeue or fail.
    fn offer_failed(
        &mut self,
        now: SimTime,
        job: JobId,
        node: NodeUid,
        actions: &mut Vec<CoordAction>,
    ) {
        self.dir.release(node, job);
        let Some(meta) = self.jobs.get_mut(&job) else {
            return;
        };
        meta.lease = None;
        meta.excluded.push(node);
        meta.retries += 1;
        if meta.preferred == Some(node) {
            // The home node itself refused: give up migrating back rather
            // than spinning on a rejecting host.
            self.abandon_migrate_back(now, job);
        }
        let meta = self.jobs.get_mut(&job).expect("present");
        if meta.retries > self.config.max_retries {
            self.fail_job(now, job, actions);
        } else {
            self.db.submit(now, WriteIntent::RequeueJob(job));
            self.arm_pass(now);
        }
    }

    /// A displaced provider came back: try to move its jobs home.
    fn provider_returned(&mut self, now: SimTime, node: NodeUid, actions: &mut Vec<CoordAction>) {
        let window = self.config.migrate_back_window;
        let candidates: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, m)| {
                m.displaced_from
                    .map(|(n, at)| n == node && now.since(at) <= window)
                    .unwrap_or(false)
            })
            .map(|(j, _)| *j)
            .collect();
        let shard = self.dir.shard_of(node);
        for job in candidates {
            let meta = self.jobs.get_mut(&job).expect("just listed");
            meta.preferred = Some(node);
            // §3b affinity rule: cache the home node's owning shard with
            // the preference, so the phase-1 fast path reads that shard
            // directly (job meta + home-node state travel together).
            meta.preferred_shard = Some(shard);
            // A rejection from a past epoch must not veto the return home.
            meta.excluded.retain(|u| *u != node);
            match meta.current_node {
                None => {
                    // Still queued: the preferred-node fast path in the next
                    // pass places it home before the general drain runs.
                    self.arm_pass(now);
                }
                Some(current) if current != node => {
                    // Running elsewhere: checkpoint there, then preempt and
                    // restore on the original node — but only after securing
                    // the home slot with a hold, so the pass can't give it
                    // away mid-round-trip. If the home can't cover the job
                    // right now (a sibling displaced job may have taken the
                    // capacity first), leave the healthy run alone; the
                    // preference stays set for any future displacement.
                    let spec = meta.spec.clone();
                    if self.dir.is_candidate(node, &spec)
                        && self
                            .dir
                            .reserve(node, job, spec.gpus, spec.gpu_mem_bytes, spec.min_cc)
                    {
                        let meta = self.jobs.get_mut(&job).expect("just listed");
                        meta.home_hold = Some((node, now));
                        meta.migrating_back = true;
                        self.held_jobs.insert(job);
                        let delay = self.db.write_latency_estimate(now);
                        actions.push(CoordAction::Send {
                            to: current,
                            msg: Work::CheckpointRequest { job }.into(),
                            delay,
                        });
                    }
                }
                _ => {}
            }
        }
    }

    // ---- the scheduling pass -------------------------------------------

    /// One batched pass over the pending queue (priority order, per §3.5),
    /// placing against the capacity index with incremental reservation
    /// updates — each placement is visible to the next decision without
    /// re-ranking anything.
    ///
    /// Runs in two phases: migrate-back candidates claim their preferred
    /// (returning) node first, then the general drain picks per strategy.
    ///
    /// Each placement submits its dequeue transaction to the write-queue
    /// actor and pays that write's *emergent* sojourn time as its decision
    /// latency — later decisions in the same pass queue behind earlier
    /// ones, which is exactly the §5.2 contention the M/M/1 formula used
    /// to simulate. If the write queue hits its bound mid-drain, the pass
    /// defers (see [`Coordinator::defer_pass`]) rather than over-filling.
    fn scheduling_pass(&mut self, now: SimTime, actions: &mut Vec<CoordAction>) {
        let pending = self.db.state().pending_in_order();
        // Retire offers that lapsed before this pass could use them, with
        // a nack so the offering agent knows its request went unmatched.
        self.expire_offers(now, actions);

        // Phase 1: the preferred-node (migrate-back) fast path. In pull
        // mode the home node's standing offer is pre-matched below — but a
        // returning home is claimed with or without one: the hold taken in
        // `provider_returned` is the offer, made on the provider's behalf
        // the moment it registered (affinity must not wait for the agent's
        // first WorkRequest to win the race against the general drain).
        for &job in &pending {
            if self.db.would_block() {
                self.defer_pass(now);
                return;
            }
            let Some(meta) = self.jobs.get(&job) else {
                continue;
            };
            if meta.offered_to.is_some() {
                continue;
            }
            let Some(pref) = meta.preferred else {
                continue;
            };
            if meta.excluded.contains(&pref) {
                continue;
            }
            if meta.home_hold.is_some_and(|(n, _)| n != pref) {
                // The preference re-pointed to a different returner since
                // this hold was taken: the old hold is obsolete — release
                // it so it can't pin capacity on the stale home or keep
                // phase 2 from placing the job.
                self.drop_hold(job);
            }
            let meta = self.jobs.get(&job).expect("present");
            // The job's own held home slot counts as free for its check
            // (read-only; a transient miss leaves the hold untouched).
            // Routed through the home node's cached shard affinity: the
            // fast path reads job meta and home-node state together
            // without re-hashing the uid (§3b).
            let shard = meta
                .preferred_shard
                .unwrap_or_else(|| self.dir.shard_of(pref));
            if self
                .dir
                .is_candidate_for_holder_on(shard, pref, &meta.spec, job)
            {
                // Swap the hold (if any) for the offer reservation, taken
                // atomically within this pass by dispatch_offer.
                self.drop_hold(job);
                let via_offer = self.offers.contains_key(&pref);
                self.dispatch_offer(now, job, pref, via_offer, actions);
            }
        }

        // Phase 2: drain the rest of the queue. Push mode picks against
        // the full capacity index. Pull mode drains against *offered*
        // capacity first — the selector runs with non-offering (and
        // shape-mismatched) nodes masked out, so strategy order among
        // offering nodes is identical to push — and falls back to the
        // full index (a plain Dispatch) for jobs no live offer covers.
        let pull = self.config.placement_mode == PlacementMode::Pull;
        // Nodes with no live offer, masked out of the pull-first pick.
        // Computed once per pass: the offer book only shrinks mid-pass
        // (grants never add offers), and a node whose offer a grant
        // consumed is still capacity-checked by its reservation.
        let unoffered: Vec<NodeUid> = if pull {
            self.dir
                .iter()
                .map(|e| e.uid)
                .filter(|u| !self.offers.contains_key(u))
                .collect()
        } else {
            Vec::new()
        };
        for &job in &pending {
            if self.db.would_block() {
                self.defer_pass(now);
                return;
            }
            let Some(meta) = self.jobs.get(&job) else {
                // Job no longer tracked (cancelled/failed elsewhere):
                // scrub the orphan queue entry.
                self.db.submit(now, WriteIntent::TakePending(job));
                continue;
            };
            if meta.offered_to.is_some() {
                continue;
            }
            if meta.home_hold.is_some() {
                // A live home hold means this job was deliberately
                // preempted to move it home; don't scatter it to another
                // node while the hold stands. The heartbeat sweep expires
                // stale holds and re-opens general placement.
                continue;
            }
            let (target, via_offer) = if pull {
                let spec = meta.spec.clone();
                let excluded = meta.excluded.clone();
                match self.pick_offered(&spec, &excluded, &unoffered) {
                    Some(t) => (Some(t), true),
                    // No live offer can host this job: fall back to the
                    // capacity index, exactly as push mode would place it.
                    None => (self.selector.pick(&self.dir, &spec, &excluded), false),
                }
            } else {
                (
                    self.selector.pick(&self.dir, &meta.spec, &meta.excluded),
                    false,
                )
            };
            let Some(target) = target else {
                continue; // nothing eligible; stays queued
            };
            self.dispatch_offer(now, job, target, via_offer, actions);
        }

        // Writes that add pending jobs may still be in flight (submitted
        // after this pass was armed): they were invisible to the drain
        // above, so run another pass once the queue has drained them.
        if self.db.pending_enqueues() > 0 {
            self.arm_pass(now);
        }
    }

    /// Pull-mode pick: run the configured strategy with every node that
    /// has no live offer — or whose offered slices can't cover `spec` —
    /// masked out. Among offering nodes the strategy order is exactly the
    /// push-mode order, which is what makes pull reach the push fixpoint
    /// when every free node is on the market.
    fn pick_offered(
        &mut self,
        spec: &DispatchSpec,
        excluded: &[NodeUid],
        unoffered: &[NodeUid],
    ) -> Option<NodeUid> {
        let mut masked: Vec<NodeUid> = excluded.to_vec();
        masked.extend_from_slice(unoffered);
        for (&node, offer) in &self.offers {
            if !offer.matches(spec) {
                masked.push(node);
            }
        }
        self.selector.pick(&self.dir, spec, &masked)
    }

    /// Drop every offer whose validity window has passed, nacking the
    /// offering node so its agent knows to re-offer (deterministic: the
    /// book iterates in uid order).
    fn expire_offers(&mut self, now: SimTime, actions: &mut Vec<CoordAction>) {
        let expired: Vec<NodeUid> = self
            .offers
            .iter()
            .filter(|(_, o)| o.expires <= now)
            .map(|(&n, _)| n)
            .collect();
        for node in expired {
            self.offers.remove(&node);
            self.nacks_sent += 1;
            actions.push(CoordAction::Send {
                to: node,
                msg: Work::GrantNack {
                    node,
                    retry_after_ms: self.config.heartbeat_period.as_millis() as u32,
                }
                .into(),
                delay: SimDuration::ZERO,
            });
        }
    }

    /// Reserve, dequeue, and send one offer. Bails out (leaving the job
    /// pending, no offer) if the reservation cannot be fully covered —
    /// callers verify candidacy first, so this is a consistency backstop,
    /// not a placement strategy. `via_offer` placements answer a standing
    /// [`Work::WorkRequest`] and go out as [`Work::WorkGrant`] leases; the
    /// rest are push-style [`Work::Dispatch`]es.
    fn dispatch_offer(
        &mut self,
        now: SimTime,
        job: JobId,
        target: NodeUid,
        via_offer: bool,
        actions: &mut Vec<CoordAction>,
    ) {
        let spec = self.jobs.get(&job).expect("present").spec.clone();
        if !self
            .dir
            .reserve(target, job, spec.gpus, spec.gpu_mem_bytes, spec.min_cc)
        {
            self.dir.release(target, job);
            return;
        }
        self.jobs.get_mut(&job).expect("present").offered_to = Some(target);
        // The decision's latency is its dequeue transaction's emergent
        // sojourn: queue wait behind every earlier write (including this
        // pass's previous decisions) plus service.
        let latency = self.db.submit(now, WriteIntent::TakePending(job));
        self.decision_latency.record(latency.as_secs_f64());
        self.arm(
            now + latency + self.config.offer_timeout,
            CoordTimer::OfferTimeout(job),
        );
        let msg = if via_offer {
            self.grants_sent += 1;
            // Start the grant's lease clock at the same instant as the
            // OfferTimeout timer; the node's first heartbeat reporting the
            // workload renews it, and the sweep revokes it if none does.
            self.jobs.get_mut(&job).expect("present").lease =
                Some(now + latency + self.config.offer_timeout);
            Work::WorkGrant {
                spec,
                lease_ms: self.config.offer_timeout.as_millis() as u32,
            }
            .into()
        } else {
            Work::Dispatch { spec }.into()
        };
        actions.push(CoordAction::Send {
            to: target,
            msg,
            delay: latency,
        });
        actions.push(CoordAction::JobEvent {
            job,
            event: JobEvent::Dispatched { node: target },
        });
        if let Some(h) = &self.sched_latency {
            h.observe(latency.as_secs_f64());
        }
    }
}

/// Which node a message claims to come from (for token validation).
fn message_source(msg: &Message) -> Option<NodeUid> {
    match msg {
        Message::Control(
            Control::Heartbeat { node, .. }
            | Control::DepartureNotice { node, .. }
            | Control::PauseScheduling { node, .. },
        )
        | Message::Work(Work::WorkRequest { node, .. }) => Some(*node),
        _ => None,
    }
}

impl Coordinator {
    /// Heartbeats are status traffic: sheddable at the inbox bound — the
    /// next beat carries fresher data. The exception mirrors
    /// [`Coordinator::head_turn_writes`]: a heartbeat that would *revive*
    /// an Offline node carries a critical state flip (and migrate-back
    /// bookkeeping), so shedding it could leave the node dead at the
    /// coordinator indefinitely; it is admitted like any other critical
    /// envelope.
    fn envelope_sheddable(&self, env: &CoordEnvelope) -> bool {
        match env {
            CoordEnvelope::Net(e) => match &e.msg {
                Message::Control(Control::Heartbeat { node, .. }) => !self.heartbeat_revives(*node),
                _ => false,
            },
            CoordEnvelope::Msg(m) => match &**m {
                Message::Control(Control::Heartbeat { node, .. }) => !self.heartbeat_revives(*node),
                _ => false,
            },
            _ => false,
        }
    }
    /// Whether the inbox head's turn would submit critical database writes
    /// (and must therefore defer while the write queue is at bound).
    /// Heartbeats normally carry only a sheddable status write — except a
    /// heartbeat that *revives* an Offline node, whose turn submits a
    /// critical state flip (and may start migrate-back bookkeeping), so it
    /// defers like any other critical envelope. Telemetry resets write
    /// nothing.
    fn head_turn_writes(&self) -> bool {
        match &self.inbox.front().expect("head peeked by caller").env {
            CoordEnvelope::Net(e) => match &e.msg {
                Message::Control(Control::Heartbeat { node, .. }) => self.heartbeat_revives(*node),
                _ => true,
            },
            CoordEnvelope::Msg(m) => match &**m {
                Message::Control(Control::Heartbeat { node, .. }) => self.heartbeat_revives(*node),
                _ => true,
            },
            CoordEnvelope::ResetTelemetry => false,
            _ => true,
        }
    }

    fn heartbeat_revives(&self, node: NodeUid) -> bool {
        self.dir
            .get(node)
            .map(|e| e.liveness() == NodeLiveness::Offline)
            .unwrap_or(false)
    }
}
