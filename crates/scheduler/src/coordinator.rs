//! The central scheduler and coordinator — an actor behind a typed inbox.
//!
//! "The central scheduler serves as the coordination hub for resource
//! discovery, allocation decisions, and workload management. It maintains a
//! real-time view of available GPU resources … through periodic status
//! updates from provider agents. … Unlike traditional cluster schedulers
//! that assume persistent resource availability, GPUnion's scheduler is
//! designed to handle dynamic resource volatility" (§3.2).
//!
//! The coordinator is a **single-owner actor** (DESIGN.md §3b): it owns
//! `{Directory + CapacityIndex, jobs, timers}` behind a bounded MPSC inbox
//! of typed [`CoordEnvelope`]s. Senders — the platform pump delivering
//! network envelopes, user clients submitting jobs, harnesses injecting
//! departures — call [`Coordinator::send`], which only enqueues. All state
//! mutation happens inside [`Coordinator::advance`], one envelope or timer
//! at a time, so every index mutation is single-threaded by construction:
//! the batched scheduling pass's "reserve, then the next decision sees it"
//! invariant *is* an actor turn. The embedding loop drives the actor
//! exactly like the [`DbActor`]: [`Coordinator::next_wake`] /
//! [`Coordinator::advance`], with [`CoordAction`]s coming out. Read-only
//! consumers (metrics scrape, harness inspection) use snapshot accessors,
//! never references into actor state held across a turn.
//!
//! Every mutation of the system database travels as a fire-and-forget
//! [`WriteIntent`] through the [`DbActor`]'s bounded write queue; a
//! dispatch decision's latency is the emergent sojourn time of its own
//! write — queue wait plus service — which is what the scalability
//! experiment (§5.2) measures as the node count grows.
//!
//! **Critical-write backpressure.** Sheddable status writes (heartbeat
//! `NodeSeen`) are dropped at the database inbox bound, but critical
//! intents must never be lost. When [`DbActor::would_block`] reports the
//! bound reached, the coordinator *defers its own turn* instead of
//! over-filling the queue: the inbox head stays queued (FIFO, so ordering
//! is preserved), due timers that would write are re-armed at the next
//! write completion, and a scheduling pass stops mid-drain and re-arms.
//! The stall is DES-visible as added pass latency and inbox sojourn time —
//! the single-threaded analogue of a blocking database client.
//!
//! A scheduling pass is batched: it drains the pending queue once against
//! the directory's capacity index, reserving capacity as it places so later
//! jobs in the same pass see the updated state — no per-job rescans, no
//! re-ranking between placements. Displaced jobs whose provider returned
//! take a preferred-node fast path that runs before the general drain, so
//! migrate-back can't lose its home slot to an earlier queue position.

use crate::directory::{Directory, NodeLiveness};
use crate::strategy::{Selector, Strategy};
use gpunion_db::{DbActor, DbActorConfig, JobState, NodeRecord, NodeState, SystemDb, WriteIntent};
use gpunion_des::{Online, SimDuration, SimTime};
use gpunion_protocol::{
    AuthToken, DispatchSpec, Envelope, JobId, KillReason, Message, NodeUid, TokenRegistry,
    WorkloadState,
};
use gpunion_telemetry::{labels, Counter, MetricHistogram, Registry};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// A typed envelope bound for the coordinator actor's inbox.
///
/// Everything that mutates coordinator state travels as one of these —
/// registration, heartbeat, and scheduling traffic ride [`Message`]s inside
/// [`CoordEnvelope::Net`] / [`CoordEnvelope::Msg`]; user submissions and
/// harness injections have their own variants. Timer wakes are internal to
/// the actor (they never cross the inbox); the DES pump only ever observes
/// them through [`Coordinator::next_wake`].
#[derive(Debug)]
pub enum CoordEnvelope {
    /// An authenticated-on-arrival network envelope (Register, Heartbeat,
    /// DispatchReply, WorkloadUpdate, CheckpointDone, DepartureNotice, …).
    /// Token validation happens at the actor turn, not at enqueue.
    Net(Box<Envelope>),
    /// A pre-authenticated message (trusted harness path — the equivalent
    /// of [`CoordEnvelope::Net`] with validation already done).
    Msg(Box<Message>),
    /// A user client submits a job. The job id is assigned at admission
    /// (see [`Coordinator::send`]); the spec's `job` field is overwritten.
    SubmitJob(Box<DispatchSpec>),
    /// A user client cancels a job.
    CancelJob(JobId),
    /// Harness-observed node loss (emergency departure injected out of
    /// band): displace everything the node was running.
    NodeDeparture(NodeUid),
    /// Reset latency/backlog telemetry (coordinator inbox + database
    /// write queue) — experiment harnesses send this after a warm-up phase
    /// so steady-state numbers exclude the boot-time registration storm.
    ResetTelemetry,
}

/// What [`Coordinator::send`] did with an envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Accepted into the inbox. Job submissions get their id assigned at
    /// admission so the caller can track the job before its turn runs.
    Enqueued {
        /// The id assigned to a [`CoordEnvelope::SubmitJob`] (None for
        /// every other variant).
        job: Option<JobId>,
    },
    /// Sheddable envelope (heartbeat) dropped at the inbox bound — the
    /// next heartbeat carries fresher data. Critical envelopes are never
    /// shed.
    Shed,
}

/// Actions for the embedding loop.
#[derive(Debug)]
pub enum CoordAction {
    /// Send a message to a node's agent. `delay` models the scheduling /
    /// database latency accrued before the message leaves the coordinator.
    Send {
        /// Destination node.
        to: NodeUid,
        /// The message.
        msg: Message,
        /// Processing delay before transmission.
        delay: SimDuration,
    },
    /// Job lifecycle notification for user clients / experiment harnesses.
    JobEvent {
        /// The job.
        job: JobId,
        /// What happened.
        event: JobEvent,
    },
}

/// Job lifecycle events surfaced to the platform user.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEvent {
    /// Accepted into the pending queue.
    Queued,
    /// Dispatched to a node (offer in flight).
    Dispatched {
        /// Target node.
        node: NodeUid,
    },
    /// Agent reported the workload running.
    Started {
        /// Hosting node.
        node: NodeUid,
    },
    /// Finished successfully.
    Completed,
    /// Permanently failed (retries exhausted).
    Failed,
    /// Displaced (kill-switch / departure / heartbeat loss) and requeued.
    Requeued {
        /// Checkpoint sequence it will restore from (None = from scratch).
        restore_seq: Option<u64>,
    },
    /// Displaced job placed back on its original node after the provider
    /// returned.
    MigratedBack {
        /// The original (returning) node.
        node: NodeUid,
    },
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Heartbeat period agents must honour.
    pub heartbeat_period: SimDuration,
    /// Heartbeats missed before a node is marked unavailable (paper: 3).
    pub missed_beats: u32,
    /// Allocation strategy.
    pub strategy: Strategy,
    /// How long after displacement a returning provider can reclaim its
    /// jobs (migrate-back window).
    pub migrate_back_window: SimDuration,
    /// Dispatch attempts per job before it is failed.
    pub max_retries: u32,
    /// How long to wait for a DispatchReply before treating it as a reject.
    pub offer_timeout: SimDuration,
    /// Coordinator inbox bound. Heartbeat envelopes submitted past this
    /// depth are shed (the next beat carries fresher data); critical
    /// envelopes are always accepted and counted if over the bound.
    pub inbox_capacity: usize,
    /// Directory shards (by node uid). 1 — the default — reproduces the
    /// unsharded directory exactly; larger counts keep each per-shard
    /// index small as fleets grow past 10⁴ nodes, with the read views
    /// k-way-merged so pick order is bit-identical at any count
    /// (DESIGN.md §3b).
    pub shard_count: usize,
    /// Directory shard-actor worker threads. 0 — the default — applies
    /// shard intents inline on the coordinator's thread (the degenerate
    /// actor: the exact pre-actor code path, byte-stable goldens);
    /// `W ≥ 1` multiplexes the shards onto `W` worker threads behind
    /// per-worker inboxes, with every read quiescing at the join point
    /// first (DESIGN.md §3b). Scheduling decisions are bit-identical at
    /// any value (property-tested). Defaults to `GPUNION_WORKER_THREADS`
    /// when set, so CI can run the whole suite threaded.
    pub worker_threads: usize,
    /// Database write-queue parameters (service time, inbox bound).
    pub db: DbActorConfig,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            heartbeat_period: SimDuration::from_secs(5),
            missed_beats: 3,
            strategy: Strategy::RoundRobin,
            migrate_back_window: SimDuration::from_mins(30),
            max_retries: 5,
            offer_timeout: SimDuration::from_secs(10),
            inbox_capacity: 4096,
            shard_count: 1,
            worker_threads: std::env::var("GPUNION_WORKER_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            db: DbActorConfig::default(),
        }
    }
}

/// Scheduler-side job bookkeeping.
#[derive(Debug, Clone)]
struct JobMeta {
    spec: DispatchSpec,
    current_node: Option<NodeUid>,
    offered_to: Option<NodeUid>,
    /// Nodes that rejected this job in the current placement epoch.
    /// Cleared on displacement — a new epoch with a changed world.
    excluded: Vec<NodeUid>,
    preferred: Option<NodeUid>,
    /// The preferred home node's directory-shard affinity, cached when the
    /// preference is set (§3b: the migrate-back fast path reads job +
    /// home-node state together, so phase-1 placements route through the
    /// owning shard instead of re-hashing the uid).
    preferred_shard: Option<u32>,
    /// Capacity held on the preferred home node while a migrate-back
    /// checkpoint round-trip is in flight: (node, held since).
    home_hold: Option<(NodeUid, SimTime)>,
    latest_checkpoint: Option<(u64, Vec<NodeUid>)>,
    displaced_from: Option<(NodeUid, SimTime)>,
    migrating_back: bool,
    retries: u32,
    submitted_at: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoordTimer {
    HeartbeatSweep,
    SchedulePass,
    OfferTimeout(JobId),
}

/// An inbox entry: accepted at `enqueued`, processed at its turn.
#[derive(Debug)]
struct QueuedEnvelope {
    enqueued: SimTime,
    env: CoordEnvelope,
}

/// The coordinator actor.
pub struct Coordinator {
    config: CoordinatorConfig,
    db: DbActor,
    dir: Directory,
    tokens: TokenRegistry,
    selector: Selector,
    /// The bounded MPSC inbox. Envelopes drain FIFO inside `advance`.
    inbox: VecDeque<QueuedEnvelope>,
    /// The inbox head is a critical envelope and the database write queue
    /// is at bound: the actor is waiting for a write completion before
    /// taking its next turn (critical-write backpressure).
    stalled: bool,
    /// Ordered by job id so displacement/migrate-back sweeps are
    /// deterministic (golden-output experiments depend on it).
    jobs: BTreeMap<JobId, JobMeta>,
    /// Jobs currently holding a migrate-back home slot — the sweep and
    /// node-loss scans walk this (holds are rare) instead of every job.
    held_jobs: BTreeSet<JobId>,
    next_job: u64,
    timers: BTreeMap<(SimTime, u64), CoordTimer>,
    timer_seq: u64,
    pass_armed: bool,
    metrics: Registry,
    // Cached handles: registry lookups take a lock + label hashing, which
    // the per-dispatch hot path must not pay.
    sched_latency: Option<Arc<MetricHistogram>>,
    jobs_submitted: Option<Arc<Counter>>,
    jobs_displaced: Option<Arc<Counter>>,
    nodes_lost: Option<Arc<Counter>>,
    decision_latency: Online,
    // Inbox telemetry (enqueue → turn).
    inbox_sojourn: Online,
    inbox_depth_peak: usize,
    shed_envelopes: u64,
    over_bound_envelopes: u64,
    deferred_turns: u64,
    rng: SmallRng,
}

impl Coordinator {
    /// A coordinator with the given config; `seed` drives token issuance.
    /// Periodic duties (the heartbeat sweep) are armed from `SimTime::ZERO`.
    pub fn new(config: CoordinatorConfig, seed: u64) -> Self {
        let selector = Selector::new(config.strategy);
        let metrics = Registry::new();
        let sched_latency = metrics
            .histogram(
                "scheduling_latency_seconds",
                "per-decision scheduling latency",
                labels([]),
            )
            .ok();
        let jobs_submitted = metrics
            .counter("jobs_submitted_total", "jobs submitted", labels([]))
            .ok();
        let jobs_displaced = metrics
            .counter("jobs_displaced_total", "displacements", labels([]))
            .ok();
        let nodes_lost = metrics
            .counter("nodes_lost_total", "node losses", labels([]))
            .ok();
        let db = DbActor::new(config.db, seed ^ 0xD8);
        let dir = Directory::with_shards_workers(config.shard_count, config.worker_threads);
        let mut coord = Coordinator {
            config,
            db,
            dir,
            tokens: TokenRegistry::new(),
            selector,
            inbox: VecDeque::new(),
            stalled: false,
            jobs: BTreeMap::new(),
            held_jobs: BTreeSet::new(),
            next_job: 1,
            timers: BTreeMap::new(),
            timer_seq: 0,
            pass_armed: false,
            metrics,
            sched_latency,
            jobs_submitted,
            jobs_displaced,
            nodes_lost,
            decision_latency: Online::new(),
            inbox_sojourn: Online::new(),
            inbox_depth_peak: 0,
            shed_envelopes: 0,
            over_bound_envelopes: 0,
            deferred_turns: 0,
            rng: SmallRng::seed_from_u64(seed),
        };
        coord.arm(
            SimTime::ZERO + coord.config.heartbeat_period,
            CoordTimer::HeartbeatSweep,
        );
        coord
    }

    // ---- snapshot accessors (read-only consumers) ----------------------

    /// The node directory (read access for harnesses).
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Snapshot of the system-database tables (read access for harnesses).
    /// Valid only within the current turn — in-flight writes apply on the
    /// next [`Coordinator::advance`].
    pub fn db(&self) -> &SystemDb {
        self.db.state()
    }

    /// The database write-queue actor (queue-depth / latency telemetry).
    pub fn db_actor(&self) -> &DbActor {
        &self.db
    }

    /// Scheduling decision latency statistics (the §5.2 quantity).
    pub fn decision_latency(&self) -> &Online {
        &self.decision_latency
    }

    /// Coordinator metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Number of jobs not yet terminal.
    pub fn live_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Envelopes waiting in the inbox right now.
    pub fn inbox_depth(&self) -> usize {
        self.inbox.len()
    }

    /// Deepest the inbox has been since the last telemetry reset.
    pub fn inbox_depth_peak(&self) -> usize {
        self.inbox_depth_peak
    }

    /// Inbox sojourn statistics (enqueue → turn, in seconds) since the
    /// last telemetry reset. Under critical-write backpressure this is
    /// where the database stall becomes visible to senders.
    pub fn inbox_sojourn(&self) -> &Online {
        &self.inbox_sojourn
    }

    /// Heartbeat envelopes shed at the inbox bound.
    pub fn shed_envelopes(&self) -> u64 {
        self.shed_envelopes
    }

    /// Critical envelopes accepted while the inbox was over its bound
    /// (never shed — counted so saturation is observable).
    pub fn over_bound_envelopes(&self) -> u64 {
        self.over_bound_envelopes
    }

    /// Turns deferred because the database write queue was at bound for
    /// critical intents (envelope stalls, timer re-arms, and mid-pass
    /// stops all count).
    pub fn deferred_turns(&self) -> u64 {
        self.deferred_turns
    }

    /// The emergent database write latency right now: residual write-queue
    /// backlog plus one mean service time (the §5.2 quantity).
    pub fn db_write_latency(&self, now: SimTime) -> SimDuration {
        self.db.write_latency_estimate(now)
    }

    /// Time a job has been waiting (diagnostics).
    pub fn job_wait(&self, job: JobId, now: SimTime) -> Option<SimDuration> {
        self.jobs.get(&job).map(|m| now.since(m.submitted_at))
    }

    /// The node currently hosting a job.
    pub fn job_node(&self, job: JobId) -> Option<NodeUid> {
        self.jobs.get(&job).and_then(|m| m.current_node)
    }

    /// Latest durable checkpoint of a job.
    pub fn job_checkpoint(&self, job: JobId) -> Option<(u64, Vec<NodeUid>)> {
        self.jobs
            .get(&job)
            .and_then(|m| m.latest_checkpoint.clone())
    }

    /// Validate a token for a node (live-mode helper).
    pub fn validate_token(&self, node: NodeUid, token: &AuthToken) -> bool {
        self.tokens.validate(node, token)
    }

    // ---- the inbox ------------------------------------------------------

    /// Enqueue an envelope for the actor's next turn. This is the ONLY
    /// entry point for mutating traffic: nothing is processed here — the
    /// turn runs inside [`Coordinator::advance`]. Heartbeats are shed at
    /// the inbox bound; every other envelope is always accepted (and a
    /// [`CoordEnvelope::SubmitJob`] gets its job id assigned so the caller
    /// can track it).
    pub fn send(&mut self, now: SimTime, env: CoordEnvelope) -> SendOutcome {
        let mut env = env;
        if self.envelope_sheddable(&env) && self.inbox.len() >= self.config.inbox_capacity {
            self.shed_envelopes += 1;
            return SendOutcome::Shed;
        }
        let job = if let CoordEnvelope::SubmitJob(spec) = &mut env {
            let id = JobId(self.next_job);
            self.next_job += 1;
            spec.job = id;
            Some(id)
        } else {
            None
        };
        if self.inbox.len() >= self.config.inbox_capacity {
            self.over_bound_envelopes += 1;
        }
        self.inbox.push_back(QueuedEnvelope { enqueued: now, env });
        self.inbox_depth_peak = self.inbox_depth_peak.max(self.inbox.len());
        SendOutcome::Enqueued { job }
    }

    /// Next wake time: the earliest of the inbox head (unless the actor is
    /// stalled on database backpressure), the earliest timer, and the next
    /// database write completion. While stalled, the next write completion
    /// *is* the wake — a slot frees and the turn retries.
    pub fn next_wake(&self) -> Option<SimTime> {
        let timer = self.timers.keys().next().map(|&(t, _)| t);
        let inbox = if self.stalled {
            None
        } else {
            self.inbox.front().map(|q| q.enqueued)
        };
        [timer, inbox, self.db.next_wake()]
            .into_iter()
            .flatten()
            .min()
    }

    /// Run the actor up to `now`: apply due database writes first (so
    /// every turn reads a database that reflects all writes whose service
    /// completed), then take turns — inbox envelopes and due timers merged
    /// in time order, timers first on ties (a timer armed *for* `t`
    /// precedes work enqueued *at* `t`; this makes turn order independent
    /// of how senders batch their same-instant sends — property-tested).
    ///
    /// Critical-write backpressure: when the database inbox is at bound, a
    /// turn that would submit critical intents is deferred — the envelope
    /// stays at the inbox head (FIFO order preserved) or the timer is
    /// re-armed at the next write completion — rather than over-filling
    /// the queue. Deferred work retries as completions free slots.
    pub fn advance(&mut self, now: SimTime) -> Vec<CoordAction> {
        let mut actions = Vec::new();
        loop {
            // Re-applied every turn: a turn may submit writes whose service
            // lands within this same instant, and deferral target times
            // must always be strictly in the future.
            self.db.advance(now);
            if self.stalled && !self.db.would_block() {
                self.stalled = false;
            }
            let env_due = self
                .inbox
                .front()
                .map(|q| q.enqueued)
                .filter(|&t| t <= now && !self.stalled);
            let timer_due = self
                .timers
                .first_key_value()
                .map(|(&(t, _), _)| t)
                .filter(|&t| t <= now);
            match (env_due, timer_due) {
                (None, None) => break,
                (Some(e), t) if t.is_none_or(|t| e < t) => {
                    if self.head_turn_writes() && self.db.would_block() {
                        // The head would over-fill the write queue: stall
                        // until a completion frees a slot. FIFO blocks the
                        // whole inbox so ordering is never violated.
                        self.stalled = true;
                        self.deferred_turns += 1;
                        continue;
                    }
                    let q = self.inbox.pop_front().expect("just peeked");
                    self.inbox_sojourn
                        .record(now.since(q.enqueued).as_secs_f64());
                    self.process_envelope(now, q.env, &mut actions);
                }
                _ => {
                    let (&key, _) = self
                        .timers
                        .first_key_value()
                        .expect("non-envelope turn implies a due timer");
                    let timer = self.timers.remove(&key).expect("just observed");
                    if self.db.would_block() {
                        // Every timer's duty submits critical writes
                        // (requeues, state flips, dequeues): re-arm it at
                        // the next write completion instead of firing.
                        self.deferred_turns += 1;
                        let retry = self.db.next_wake().expect("full queue has completions");
                        self.arm(retry.max(now), timer);
                        continue;
                    }
                    self.fire_timer(now, timer, &mut actions);
                }
            }
        }
        actions
    }

    fn process_envelope(
        &mut self,
        now: SimTime,
        env: CoordEnvelope,
        actions: &mut Vec<CoordAction>,
    ) {
        match env {
            CoordEnvelope::Net(e) => self.handle_envelope(now, *e, actions),
            CoordEnvelope::Msg(m) => self.handle_message(now, *m, actions),
            CoordEnvelope::SubmitJob(spec) => self.admit_job(now, *spec, actions),
            CoordEnvelope::CancelJob(job) => self.cancel_job(now, job, actions),
            CoordEnvelope::NodeDeparture(node) => self.node_lost(now, node, actions),
            CoordEnvelope::ResetTelemetry => {
                self.db.reset_telemetry();
                self.inbox_sojourn = Online::new();
                self.inbox_depth_peak = self.inbox.len();
                self.shed_envelopes = 0;
                self.over_bound_envelopes = 0;
                self.deferred_turns = 0;
            }
        }
    }

    fn fire_timer(&mut self, now: SimTime, timer: CoordTimer, actions: &mut Vec<CoordAction>) {
        match timer {
            CoordTimer::HeartbeatSweep => {
                self.heartbeat_sweep(now, actions);
                self.arm(
                    now + self.config.heartbeat_period,
                    CoordTimer::HeartbeatSweep,
                );
            }
            CoordTimer::SchedulePass => {
                self.pass_armed = false;
                self.scheduling_pass(now, actions);
            }
            CoordTimer::OfferTimeout(job) => {
                self.offer_timed_out(now, job, actions);
            }
        }
    }

    fn arm(&mut self, at: SimTime, t: CoordTimer) {
        self.timers.insert((at, self.timer_seq), t);
        self.timer_seq += 1;
    }

    fn arm_pass(&mut self, now: SimTime) {
        if !self.pass_armed {
            self.pass_armed = true;
            // A pass runs once the write queue has drained the transactions
            // submitted so far (its own enqueues included) — this is where
            // scheduling latency grows with scale: the deeper the backlog,
            // the later the pass.
            let delay = self.db.write_latency_estimate(now);
            self.arm(now + delay, CoordTimer::SchedulePass);
        }
    }

    /// Database backpressure hit mid-pass: stop draining and re-arm the
    /// pass at the next write completion. Placements already made in this
    /// pass keep their reservations and offers; the remainder of the
    /// queue is retried once a slot frees — the stall shows up as added
    /// pass latency, never as a dropped critical write.
    fn defer_pass(&mut self, now: SimTime) {
        self.deferred_turns += 1;
        self.pass_armed = true;
        let retry = self
            .db
            .next_wake()
            .map(|t| t.max(now))
            .unwrap_or(now + self.config.db.mean_service_time);
        self.arm(retry, CoordTimer::SchedulePass);
    }

    // ---- turn handlers ---------------------------------------------------

    /// Admission of a user job submission (the [`CoordEnvelope::SubmitJob`]
    /// turn). The id was assigned at enqueue; `now` is the turn time, so a
    /// backpressure stall is visible as later `submitted_at`.
    fn admit_job(&mut self, now: SimTime, spec: DispatchSpec, actions: &mut Vec<CoordAction>) {
        let job = spec.job;
        let priority = spec.priority;
        self.db.submit(
            now,
            WriteIntent::SubmitJob {
                job,
                submitted_at: now,
                priority,
            },
        );
        self.jobs.insert(
            job,
            JobMeta {
                spec,
                current_node: None,
                offered_to: None,
                excluded: Vec::new(),
                preferred: None,
                preferred_shard: None,
                home_hold: None,
                latest_checkpoint: None,
                displaced_from: None,
                migrating_back: false,
                retries: 0,
                submitted_at: now,
            },
        );
        actions.push(CoordAction::JobEvent {
            job,
            event: JobEvent::Queued,
        });
        self.arm_pass(now);
        if let Some(c) = &self.jobs_submitted {
            c.inc();
        }
    }

    /// Cancel a job (the [`CoordEnvelope::CancelJob`] turn).
    fn cancel_job(&mut self, now: SimTime, job: JobId, actions: &mut Vec<CoordAction>) {
        self.drop_hold(job);
        let Some(meta) = self.jobs.remove(&job) else {
            return;
        };
        self.db.submit(now, WriteIntent::TakePending(job));
        let latency = self
            .db
            .submit(now, WriteIntent::SetJobState(job, JobState::Cancelled));
        if let Some(node) = meta.current_node.or(meta.offered_to) {
            self.dir.release(node, job);
            actions.push(CoordAction::Send {
                to: node,
                msg: Message::Kill {
                    job,
                    reason: KillReason::UserCancel,
                },
                // The kill follows the cancellation transaction.
                delay: latency,
            });
        }
    }

    /// Drop a job's migrate-back hold (and its reservation), if any.
    fn drop_hold(&mut self, job: JobId) {
        self.held_jobs.remove(&job);
        if let Some(meta) = self.jobs.get_mut(&job) {
            if let Some((node, _)) = meta.home_hold.take() {
                self.dir.release(node, job);
            }
        }
    }

    /// Abandon every live hold whose (node, held-since) matches `pred` —
    /// the expiry sweep and node-loss teardown share this walk over the
    /// (small) held-jobs set.
    fn abandon_holds_where(&mut self, now: SimTime, pred: impl Fn(NodeUid, SimTime) -> bool) {
        let doomed: Vec<JobId> = self
            .held_jobs
            .iter()
            .filter(|j| {
                self.jobs
                    .get(j)
                    .and_then(|m| m.home_hold)
                    .map(|(n, at)| pred(n, at))
                    .unwrap_or(false)
            })
            .copied()
            .collect();
        for job in doomed {
            self.abandon_migrate_back(now, job);
        }
    }

    /// Give up on moving a job back home: drop the hold, the preference,
    /// and the in-flight migrate-back flag, and arm a pass — a pending job
    /// was deliberately skipped by the drain while its hold lived, so
    /// releasing it must re-open general placement even on a quiet fleet.
    fn abandon_migrate_back(&mut self, now: SimTime, job: JobId) {
        self.drop_hold(job);
        if let Some(meta) = self.jobs.get_mut(&job) {
            meta.preferred = None;
            meta.preferred_shard = None;
            meta.migrating_back = false;
        }
        self.arm_pass(now);
    }

    // ---- message handling --------------------------------------------

    /// Validate and process a network envelope (one actor turn).
    fn handle_envelope(&mut self, now: SimTime, env: Envelope, actions: &mut Vec<CoordAction>) {
        // Register is the only unauthenticated message.
        if !matches!(env.msg, Message::Register { .. }) {
            let valid = self.tokens.validate(env.sender, &env.token)
                // Node-bearing messages must also claim the right sender.
                && message_source(&env.msg)
                    .map(|n| n == env.sender)
                    .unwrap_or(true);
            if !valid {
                actions.push(CoordAction::Send {
                    to: env.sender,
                    msg: Message::Error {
                        code: 401,
                        detail: "invalid token".into(),
                    },
                    delay: SimDuration::ZERO,
                });
                return;
            }
        }
        self.handle_message(now, env.msg, actions);
    }

    /// Process an already-authenticated message (one actor turn).
    fn handle_message(&mut self, now: SimTime, msg: Message, actions: &mut Vec<CoordAction>) {
        match msg {
            Message::Register {
                machine_id,
                hostname,
                gpus,
                agent_version: _,
            } => {
                let gpu_count = gpus.len() as u8;
                let (uid, returning) = self.dir.register(&machine_id, &hostname, gpus, now);
                let token = self.tokens.issue(uid, &mut self.rng);
                let latency = self.db.submit(
                    now,
                    WriteIntent::UpsertNode(NodeRecord {
                        uid,
                        hostname,
                        gpu_count,
                        registered_at: now,
                        last_seen: now,
                        state: NodeState::Active,
                    }),
                );
                actions.push(CoordAction::Send {
                    to: uid,
                    msg: Message::RegisterAck {
                        node: uid,
                        token,
                        heartbeat_period_ms: self.config.heartbeat_period.as_millis() as u32,
                    },
                    // The ack leaves once the registration row is durable:
                    // its own write's emergent sojourn time.
                    delay: latency,
                });
                if returning {
                    self.provider_returned(now, uid, actions);
                }
                self.arm_pass(now);
            }
            Message::Heartbeat {
                node,
                seq,
                accepting,
                gpu_stats,
                workloads,
            } => {
                let was_offline = self
                    .dir
                    .get(node)
                    .map(|e| e.liveness() == NodeLiveness::Offline)
                    .unwrap_or(false);
                self.dir
                    .apply_heartbeat(node, now, seq, accepting, &gpu_stats);
                // Every heartbeat is one status write through the same
                // queue as scheduling transactions — §5.2's contention is
                // this traffic. Sheddable: a full inbox drops it and the
                // next heartbeat carries fresher data.
                self.db.try_submit(now, WriteIntent::NodeSeen(node));
                if was_offline {
                    // Node came back without re-registering (short blip).
                    self.db
                        .submit(now, WriteIntent::SetNodeState(node, NodeState::Active));
                    self.provider_returned(now, node, actions);
                }
                // Progress bookkeeping from piggybacked workload status.
                for ws in &workloads {
                    if let Some(meta) = self.jobs.get_mut(&ws.job) {
                        if ws.checkpoint_seq > 0 {
                            let stored = meta
                                .latest_checkpoint
                                .as_ref()
                                .map(|(_, s)| s.clone())
                                .unwrap_or_default();
                            if meta
                                .latest_checkpoint
                                .as_ref()
                                .map(|(s, _)| *s < ws.checkpoint_seq)
                                .unwrap_or(true)
                            {
                                meta.latest_checkpoint = Some((ws.checkpoint_seq, stored));
                            }
                        }
                    }
                }
                actions.push(CoordAction::Send {
                    to: node,
                    msg: Message::HeartbeatAck { node, seq },
                    delay: SimDuration::ZERO,
                });
            }
            Message::DispatchReply {
                job,
                accepted,
                reason: _,
            } => {
                self.timers
                    .retain(|_, t| !matches!(t, CoordTimer::OfferTimeout(j) if *j == job));
                let Some(meta) = self.jobs.get_mut(&job) else {
                    return;
                };
                let node = meta.offered_to.take();
                let Some(node) = node else {
                    return;
                };
                if accepted {
                    meta.current_node = Some(node);
                    // `preferred` is only ever set to a returning provider's
                    // node, so landing there means the migrate-back worked.
                    let migrated_back = meta.preferred == Some(node);
                    if migrated_back {
                        meta.displaced_from = None;
                    }
                    // Either way the preference is spent: it belongs to the
                    // placement epoch in which the provider returned. Left
                    // in place, a placement on another node would let a much
                    // later, unrelated displacement still route home and
                    // count as a migrate-back.
                    meta.preferred = None;
                    meta.preferred_shard = None;
                    meta.migrating_back = false;
                    // Release the offer reservation: the agent has allocated
                    // real VRAM, which the next heartbeat reports. Keeping
                    // the reservation would double-count the job's memory.
                    self.dir.release(node, job);
                    self.drop_hold(job);
                    self.db.submit(
                        now,
                        WriteIntent::Allocate {
                            job,
                            node,
                            gpu_indices: vec![],
                            at: now,
                        },
                    );
                    if migrated_back {
                        actions.push(CoordAction::JobEvent {
                            job,
                            event: JobEvent::MigratedBack { node },
                        });
                    }
                } else {
                    self.offer_failed(now, job, node, actions);
                }
            }
            Message::WorkloadUpdate { status, exit_code } => {
                let job = status.job;
                match status.state {
                    WorkloadState::Running => {
                        if let Some(meta) = self.jobs.get(&job) {
                            if let Some(node) = meta.current_node {
                                actions.push(CoordAction::JobEvent {
                                    job,
                                    event: JobEvent::Started { node },
                                });
                            }
                        }
                    }
                    WorkloadState::Completed => {
                        self.finish_job(now, job, actions);
                    }
                    WorkloadState::Killed => {
                        // Provider kill-switch or preemption: displace.
                        self.displace_job(now, job, actions);
                    }
                    WorkloadState::Failed => {
                        let retry = self
                            .jobs
                            .get_mut(&job)
                            .map(|m| {
                                m.retries += 1;
                                m.retries <= self.config.max_retries
                            })
                            .unwrap_or(false);
                        if retry {
                            self.displace_job(now, job, actions);
                        } else {
                            self.fail_job(now, job, actions);
                        }
                    }
                    _ => {}
                }
                let _ = exit_code;
            }
            Message::CheckpointDone {
                job,
                seq,
                transfer_bytes: _,
                stored_on,
            } => {
                let migrating_back = if let Some(meta) = self.jobs.get_mut(&job) {
                    meta.latest_checkpoint = Some((seq, stored_on));
                    meta.migrating_back
                } else {
                    false
                };
                if migrating_back {
                    // Fresh checkpoint durable: now preempt and move home.
                    if let Some(meta) = self.jobs.get_mut(&job) {
                        meta.migrating_back = false;
                    }
                    if let Some(node) = self.jobs.get(&job).and_then(|m| m.current_node) {
                        let delay = self.db.write_latency_estimate(now);
                        actions.push(CoordAction::Send {
                            to: node,
                            msg: Message::Kill {
                                job,
                                reason: KillReason::SchedulerPreempt,
                            },
                            // The preempt order queues behind the current
                            // write backlog like any other transaction.
                            delay,
                        });
                    }
                }
            }
            Message::DepartureNotice { node, mode } if self.dir.get(node).is_some() => {
                self.dir.record_interruption(node, now);
                match mode {
                    gpunion_protocol::DepartureMode::Graceful { .. } => {
                        self.dir.set_liveness(node, NodeLiveness::Departing);
                        self.db
                            .submit(now, WriteIntent::SetNodeState(node, NodeState::Departed));
                        // Jobs will checkpoint; displacement happens when
                        // the node goes offline (or per CheckpointDone).
                    }
                    gpunion_protocol::DepartureMode::Emergency => {
                        self.node_lost(now, node, actions);
                    }
                }
            }
            Message::PauseScheduling { node, paused } => {
                let liveness = self.dir.get(node).map(|e| e.liveness());
                if liveness.is_some() && liveness != Some(NodeLiveness::Offline) {
                    self.dir.set_liveness(
                        node,
                        if paused {
                            NodeLiveness::Paused
                        } else {
                            NodeLiveness::Active
                        },
                    );
                }
                self.db.submit(
                    now,
                    WriteIntent::SetNodeState(
                        node,
                        if paused {
                            NodeState::Paused
                        } else {
                            NodeState::Active
                        },
                    ),
                );
                if !paused {
                    self.arm_pass(now);
                }
            }
            Message::Error { .. } => {}
            _ => {}
        }
    }

    // ---- failure handling ----------------------------------------------

    fn heartbeat_sweep(&mut self, now: SimTime, actions: &mut Vec<CoordAction>) {
        let timeout = self.config.heartbeat_period * self.config.missed_beats as u64;
        for uid in self.dir.stale_nodes(now, timeout) {
            self.node_lost(now, uid, actions);
        }
        // Expire migrate-back holds whose window has passed: the held
        // capacity goes back to the pool and the preference lapses.
        let window = self.config.migrate_back_window;
        self.abandon_holds_where(now, |_, since| now.since(since) > window);
    }

    /// A node is gone (heartbeat loss or emergency departure): displace
    /// everything it was running.
    fn node_lost(&mut self, now: SimTime, node: NodeUid, actions: &mut Vec<CoordAction>) {
        match self.dir.get(node) {
            None => return,
            Some(e) if e.liveness() == NodeLiveness::Offline => return,
            Some(_) => {}
        }
        self.dir.set_liveness(node, NodeLiveness::Offline);
        self.dir.record_interruption(node, now);
        self.db
            .submit(now, WriteIntent::SetNodeState(node, NodeState::Unavailable));
        let displaced: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, m)| m.current_node == Some(node) || m.offered_to == Some(node))
            .map(|(j, _)| *j)
            .collect();
        for job in displaced {
            self.displace_job(now, job, actions);
        }
        // Migrate-back holds on the dead node are gone with it.
        self.abandon_holds_where(now, |n, _| n == node);
        if let Some(c) = &self.nodes_lost {
            c.inc();
        }
    }

    /// Requeue a displaced job for migration, restoring from its latest
    /// durable checkpoint when one exists.
    fn displace_job(&mut self, now: SimTime, job: JobId, actions: &mut Vec<CoordAction>) {
        let Some(meta) = self.jobs.get_mut(&job) else {
            return;
        };
        let from = meta.current_node.take().or(meta.offered_to.take());
        if let Some(n) = from {
            self.dir.release(n, job);
        }
        let meta = self.jobs.get_mut(&job).expect("still present");
        if let Some(n) = from {
            meta.displaced_from = Some((n, now));
        }
        let restore_seq = meta.latest_checkpoint.as_ref().map(|(s, _)| *s);
        meta.spec.restore_from_seq = restore_seq;
        meta.migrating_back = false;
        // New placement epoch: rejections collected while the job was last
        // being placed say nothing about the post-displacement world. In
        // particular the original node must be offerable again, or
        // migrate-back could never land (the fig3 gap).
        meta.excluded.clear();
        self.db.submit(now, WriteIntent::RequeueJob(job));
        actions.push(CoordAction::JobEvent {
            job,
            event: JobEvent::Requeued { restore_seq },
        });
        self.arm_pass(now);
        if let Some(c) = &self.jobs_displaced {
            c.inc();
        }
    }

    fn finish_job(&mut self, now: SimTime, job: JobId, actions: &mut Vec<CoordAction>) {
        self.drop_hold(job);
        if let Some(meta) = self.jobs.remove(&job) {
            if let Some(node) = meta.current_node {
                self.dir.release(node, job);
            }
            self.db
                .submit(now, WriteIntent::SetJobState(job, JobState::Completed));
            self.db.submit(now, WriteIntent::Deallocate(job));
            actions.push(CoordAction::JobEvent {
                job,
                event: JobEvent::Completed,
            });
            self.arm_pass(now);
        }
    }

    fn fail_job(&mut self, now: SimTime, job: JobId, actions: &mut Vec<CoordAction>) {
        self.drop_hold(job);
        if let Some(meta) = self.jobs.remove(&job) {
            if let Some(node) = meta.current_node.or(meta.offered_to) {
                self.dir.release(node, job);
            }
            self.db.submit(now, WriteIntent::TakePending(job));
            self.db
                .submit(now, WriteIntent::SetJobState(job, JobState::Failed));
            actions.push(CoordAction::JobEvent {
                job,
                event: JobEvent::Failed,
            });
        }
    }

    fn offer_timed_out(&mut self, now: SimTime, job: JobId, actions: &mut Vec<CoordAction>) {
        let Some(meta) = self.jobs.get_mut(&job) else {
            return;
        };
        let Some(node) = meta.offered_to.take() else {
            return;
        };
        self.offer_failed(now, job, node, actions);
    }

    /// Shared tail of "the offer to `node` did not work out" — explicit
    /// rejection and silent timeout take the same path: release the offer
    /// reservation, exclude the node for this placement epoch, burn a
    /// retry, give up on migrate-back if the refusing node was the home,
    /// then requeue or fail.
    fn offer_failed(
        &mut self,
        now: SimTime,
        job: JobId,
        node: NodeUid,
        actions: &mut Vec<CoordAction>,
    ) {
        self.dir.release(node, job);
        let Some(meta) = self.jobs.get_mut(&job) else {
            return;
        };
        meta.excluded.push(node);
        meta.retries += 1;
        if meta.preferred == Some(node) {
            // The home node itself refused: give up migrating back rather
            // than spinning on a rejecting host.
            self.abandon_migrate_back(now, job);
        }
        let meta = self.jobs.get_mut(&job).expect("present");
        if meta.retries > self.config.max_retries {
            self.fail_job(now, job, actions);
        } else {
            self.db.submit(now, WriteIntent::RequeueJob(job));
            self.arm_pass(now);
        }
    }

    /// A displaced provider came back: try to move its jobs home.
    fn provider_returned(&mut self, now: SimTime, node: NodeUid, actions: &mut Vec<CoordAction>) {
        let window = self.config.migrate_back_window;
        let candidates: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, m)| {
                m.displaced_from
                    .map(|(n, at)| n == node && now.since(at) <= window)
                    .unwrap_or(false)
            })
            .map(|(j, _)| *j)
            .collect();
        let shard = self.dir.shard_of(node);
        for job in candidates {
            let meta = self.jobs.get_mut(&job).expect("just listed");
            meta.preferred = Some(node);
            // §3b affinity rule: cache the home node's owning shard with
            // the preference, so the phase-1 fast path reads that shard
            // directly (job meta + home-node state travel together).
            meta.preferred_shard = Some(shard);
            // A rejection from a past epoch must not veto the return home.
            meta.excluded.retain(|u| *u != node);
            match meta.current_node {
                None => {
                    // Still queued: the preferred-node fast path in the next
                    // pass places it home before the general drain runs.
                    self.arm_pass(now);
                }
                Some(current) if current != node => {
                    // Running elsewhere: checkpoint there, then preempt and
                    // restore on the original node — but only after securing
                    // the home slot with a hold, so the pass can't give it
                    // away mid-round-trip. If the home can't cover the job
                    // right now (a sibling displaced job may have taken the
                    // capacity first), leave the healthy run alone; the
                    // preference stays set for any future displacement.
                    let spec = meta.spec.clone();
                    if self.dir.is_candidate(node, &spec)
                        && self
                            .dir
                            .reserve(node, job, spec.gpus, spec.gpu_mem_bytes, spec.min_cc)
                    {
                        let meta = self.jobs.get_mut(&job).expect("just listed");
                        meta.home_hold = Some((node, now));
                        meta.migrating_back = true;
                        self.held_jobs.insert(job);
                        let delay = self.db.write_latency_estimate(now);
                        actions.push(CoordAction::Send {
                            to: current,
                            msg: Message::CheckpointRequest { job },
                            delay,
                        });
                    }
                }
                _ => {}
            }
        }
    }

    // ---- the scheduling pass -------------------------------------------

    /// One batched pass over the pending queue (priority order, per §3.5),
    /// placing against the capacity index with incremental reservation
    /// updates — each placement is visible to the next decision without
    /// re-ranking anything.
    ///
    /// Runs in two phases: migrate-back candidates claim their preferred
    /// (returning) node first, then the general drain picks per strategy.
    ///
    /// Each placement submits its dequeue transaction to the write-queue
    /// actor and pays that write's *emergent* sojourn time as its decision
    /// latency — later decisions in the same pass queue behind earlier
    /// ones, which is exactly the §5.2 contention the M/M/1 formula used
    /// to simulate. If the write queue hits its bound mid-drain, the pass
    /// defers (see [`Coordinator::defer_pass`]) rather than over-filling.
    fn scheduling_pass(&mut self, now: SimTime, actions: &mut Vec<CoordAction>) {
        let pending = self.db.state().pending_in_order();

        // Phase 1: the preferred-node (migrate-back) fast path.
        for &job in &pending {
            if self.db.would_block() {
                self.defer_pass(now);
                return;
            }
            let Some(meta) = self.jobs.get(&job) else {
                continue;
            };
            if meta.offered_to.is_some() {
                continue;
            }
            let Some(pref) = meta.preferred else {
                continue;
            };
            if meta.excluded.contains(&pref) {
                continue;
            }
            if meta.home_hold.is_some_and(|(n, _)| n != pref) {
                // The preference re-pointed to a different returner since
                // this hold was taken: the old hold is obsolete — release
                // it so it can't pin capacity on the stale home or keep
                // phase 2 from placing the job.
                self.drop_hold(job);
            }
            let meta = self.jobs.get(&job).expect("present");
            // The job's own held home slot counts as free for its check
            // (read-only; a transient miss leaves the hold untouched).
            // Routed through the home node's cached shard affinity: the
            // fast path reads job meta and home-node state together
            // without re-hashing the uid (§3b).
            let shard = meta
                .preferred_shard
                .unwrap_or_else(|| self.dir.shard_of(pref));
            if self
                .dir
                .is_candidate_for_holder_on(shard, pref, &meta.spec, job)
            {
                // Swap the hold (if any) for the offer reservation, taken
                // atomically within this pass by dispatch_offer.
                self.drop_hold(job);
                self.dispatch_offer(now, job, pref, actions);
            }
        }

        // Phase 2: drain the rest of the queue against the live index.
        for &job in &pending {
            if self.db.would_block() {
                self.defer_pass(now);
                return;
            }
            let Some(meta) = self.jobs.get(&job) else {
                // Job no longer tracked (cancelled/failed elsewhere):
                // scrub the orphan queue entry.
                self.db.submit(now, WriteIntent::TakePending(job));
                continue;
            };
            if meta.offered_to.is_some() {
                continue;
            }
            if meta.home_hold.is_some() {
                // A live home hold means this job was deliberately
                // preempted to move it home; don't scatter it to another
                // node while the hold stands. The heartbeat sweep expires
                // stale holds and re-opens general placement.
                continue;
            }
            let Some(target) = self.selector.pick(&self.dir, &meta.spec, &meta.excluded) else {
                continue; // nothing eligible; stays queued
            };
            self.dispatch_offer(now, job, target, actions);
        }

        // Writes that add pending jobs may still be in flight (submitted
        // after this pass was armed): they were invisible to the drain
        // above, so run another pass once the queue has drained them.
        if self.db.pending_enqueues() > 0 {
            self.arm_pass(now);
        }
    }

    /// Reserve, dequeue, and send one offer. Bails out (leaving the job
    /// pending, no offer) if the reservation cannot be fully covered —
    /// callers verify candidacy first, so this is a consistency backstop,
    /// not a placement strategy.
    fn dispatch_offer(
        &mut self,
        now: SimTime,
        job: JobId,
        target: NodeUid,
        actions: &mut Vec<CoordAction>,
    ) {
        let spec = self.jobs.get(&job).expect("present").spec.clone();
        if !self
            .dir
            .reserve(target, job, spec.gpus, spec.gpu_mem_bytes, spec.min_cc)
        {
            self.dir.release(target, job);
            return;
        }
        self.jobs.get_mut(&job).expect("present").offered_to = Some(target);
        // The decision's latency is its dequeue transaction's emergent
        // sojourn: queue wait behind every earlier write (including this
        // pass's previous decisions) plus service.
        let latency = self.db.submit(now, WriteIntent::TakePending(job));
        self.decision_latency.record(latency.as_secs_f64());
        self.arm(
            now + latency + self.config.offer_timeout,
            CoordTimer::OfferTimeout(job),
        );
        actions.push(CoordAction::Send {
            to: target,
            msg: Message::Dispatch { spec },
            delay: latency,
        });
        actions.push(CoordAction::JobEvent {
            job,
            event: JobEvent::Dispatched { node: target },
        });
        if let Some(h) = &self.sched_latency {
            h.observe(latency.as_secs_f64());
        }
    }
}

/// Which node a message claims to come from (for token validation).
fn message_source(msg: &Message) -> Option<NodeUid> {
    match msg {
        Message::Heartbeat { node, .. }
        | Message::DepartureNotice { node, .. }
        | Message::PauseScheduling { node, .. } => Some(*node),
        _ => None,
    }
}

impl Coordinator {
    /// Heartbeats are status traffic: sheddable at the inbox bound — the
    /// next beat carries fresher data. The exception mirrors
    /// [`Coordinator::head_turn_writes`]: a heartbeat that would *revive*
    /// an Offline node carries a critical state flip (and migrate-back
    /// bookkeeping), so shedding it could leave the node dead at the
    /// coordinator indefinitely; it is admitted like any other critical
    /// envelope.
    fn envelope_sheddable(&self, env: &CoordEnvelope) -> bool {
        match env {
            CoordEnvelope::Net(e) => match &e.msg {
                Message::Heartbeat { node, .. } => !self.heartbeat_revives(*node),
                _ => false,
            },
            CoordEnvelope::Msg(m) => match &**m {
                Message::Heartbeat { node, .. } => !self.heartbeat_revives(*node),
                _ => false,
            },
            _ => false,
        }
    }
    /// Whether the inbox head's turn would submit critical database writes
    /// (and must therefore defer while the write queue is at bound).
    /// Heartbeats normally carry only a sheddable status write — except a
    /// heartbeat that *revives* an Offline node, whose turn submits a
    /// critical state flip (and may start migrate-back bookkeeping), so it
    /// defers like any other critical envelope. Telemetry resets write
    /// nothing.
    fn head_turn_writes(&self) -> bool {
        match &self.inbox.front().expect("head peeked by caller").env {
            CoordEnvelope::Net(e) => match &e.msg {
                Message::Heartbeat { node, .. } => self.heartbeat_revives(*node),
                _ => true,
            },
            CoordEnvelope::Msg(m) => match &**m {
                Message::Heartbeat { node, .. } => self.heartbeat_revives(*node),
                _ => true,
            },
            CoordEnvelope::ResetTelemetry => false,
            _ => true,
        }
    }

    fn heartbeat_revives(&self, node: NodeUid) -> bool {
        self.dir
            .get(node)
            .map(|e| e.liveness() == NodeLiveness::Offline)
            .unwrap_or(false)
    }
}
