//! The central scheduler and coordinator.
//!
//! "The central scheduler serves as the coordination hub for resource
//! discovery, allocation decisions, and workload management. It maintains a
//! real-time view of available GPU resources … through periodic status
//! updates from provider agents. … Unlike traditional cluster schedulers
//! that assume persistent resource availability, GPUnion's scheduler is
//! designed to handle dynamic resource volatility" (§3.2).
//!
//! Like the agent, the coordinator is passive: messages and timer wakes go
//! in, [`CoordAction`]s come out. Every mutation of the system database
//! travels as a fire-and-forget [`WriteIntent`] through the [`DbActor`]'s
//! bounded write queue (DESIGN.md §3b); a dispatch decision's latency is
//! the emergent sojourn time of its own write — queue wait plus service —
//! which is what the scalability experiment (§5.2) measures as the node
//! count grows. The coordinator only ever *reads* the database through
//! snapshot accessors within a turn; it holds no references into actor
//! state.
//!
//! A scheduling pass is batched: it drains the pending queue once against
//! the directory's capacity index, reserving capacity as it places so later
//! jobs in the same pass see the updated state — no per-job rescans, no
//! re-ranking between placements. Displaced jobs whose provider returned
//! take a preferred-node fast path that runs before the general drain, so
//! migrate-back can't lose its home slot to an earlier queue position.

use crate::directory::{Directory, NodeLiveness};
use crate::strategy::{Selector, Strategy};
use gpunion_db::{DbActor, DbActorConfig, JobState, NodeRecord, NodeState, SystemDb, WriteIntent};
use gpunion_des::{Online, SimDuration, SimTime};
use gpunion_protocol::{
    AuthToken, DispatchSpec, Envelope, JobId, KillReason, Message, NodeUid, TokenRegistry,
    WorkloadState,
};
use gpunion_telemetry::{labels, Counter, MetricHistogram, Registry};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Actions for the embedding loop.
#[derive(Debug)]
pub enum CoordAction {
    /// Send a message to a node's agent. `delay` models the scheduling /
    /// database latency accrued before the message leaves the coordinator.
    Send {
        /// Destination node.
        to: NodeUid,
        /// The message.
        msg: Message,
        /// Processing delay before transmission.
        delay: SimDuration,
    },
    /// Job lifecycle notification for user clients / experiment harnesses.
    JobEvent {
        /// The job.
        job: JobId,
        /// What happened.
        event: JobEvent,
    },
}

/// Job lifecycle events surfaced to the platform user.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEvent {
    /// Accepted into the pending queue.
    Queued,
    /// Dispatched to a node (offer in flight).
    Dispatched {
        /// Target node.
        node: NodeUid,
    },
    /// Agent reported the workload running.
    Started {
        /// Hosting node.
        node: NodeUid,
    },
    /// Finished successfully.
    Completed,
    /// Permanently failed (retries exhausted).
    Failed,
    /// Displaced (kill-switch / departure / heartbeat loss) and requeued.
    Requeued {
        /// Checkpoint sequence it will restore from (None = from scratch).
        restore_seq: Option<u64>,
    },
    /// Displaced job placed back on its original node after the provider
    /// returned.
    MigratedBack {
        /// The original (returning) node.
        node: NodeUid,
    },
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Heartbeat period agents must honour.
    pub heartbeat_period: SimDuration,
    /// Heartbeats missed before a node is marked unavailable (paper: 3).
    pub missed_beats: u32,
    /// Allocation strategy.
    pub strategy: Strategy,
    /// How long after displacement a returning provider can reclaim its
    /// jobs (migrate-back window).
    pub migrate_back_window: SimDuration,
    /// Dispatch attempts per job before it is failed.
    pub max_retries: u32,
    /// How long to wait for a DispatchReply before treating it as a reject.
    pub offer_timeout: SimDuration,
    /// Database write-queue parameters (service time, inbox bound).
    pub db: DbActorConfig,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            heartbeat_period: SimDuration::from_secs(5),
            missed_beats: 3,
            strategy: Strategy::RoundRobin,
            migrate_back_window: SimDuration::from_mins(30),
            max_retries: 5,
            offer_timeout: SimDuration::from_secs(10),
            db: DbActorConfig::default(),
        }
    }
}

/// Scheduler-side job bookkeeping.
#[derive(Debug, Clone)]
struct JobMeta {
    spec: DispatchSpec,
    current_node: Option<NodeUid>,
    offered_to: Option<NodeUid>,
    /// Nodes that rejected this job in the current placement epoch.
    /// Cleared on displacement — a new epoch with a changed world.
    excluded: Vec<NodeUid>,
    preferred: Option<NodeUid>,
    /// Capacity held on the preferred home node while a migrate-back
    /// checkpoint round-trip is in flight: (node, held since).
    home_hold: Option<(NodeUid, SimTime)>,
    latest_checkpoint: Option<(u64, Vec<NodeUid>)>,
    displaced_from: Option<(NodeUid, SimTime)>,
    migrating_back: bool,
    retries: u32,
    submitted_at: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoordTimer {
    HeartbeatSweep,
    SchedulePass,
    OfferTimeout(JobId),
}

/// The coordinator.
pub struct Coordinator {
    config: CoordinatorConfig,
    db: DbActor,
    dir: Directory,
    tokens: TokenRegistry,
    selector: Selector,
    /// Ordered by job id so displacement/migrate-back sweeps are
    /// deterministic (golden-output experiments depend on it).
    jobs: BTreeMap<JobId, JobMeta>,
    /// Jobs currently holding a migrate-back home slot — the sweep and
    /// node-loss scans walk this (holds are rare) instead of every job.
    held_jobs: BTreeSet<JobId>,
    next_job: u64,
    timers: BTreeMap<(SimTime, u64), CoordTimer>,
    timer_seq: u64,
    pass_armed: bool,
    metrics: Registry,
    // Cached handles: registry lookups take a lock + label hashing, which
    // the per-dispatch hot path must not pay.
    sched_latency: Option<Arc<MetricHistogram>>,
    jobs_submitted: Option<Arc<Counter>>,
    jobs_displaced: Option<Arc<Counter>>,
    nodes_lost: Option<Arc<Counter>>,
    decision_latency: Online,
    rng: SmallRng,
}

impl Coordinator {
    /// A coordinator with the given config; `seed` drives token issuance.
    pub fn new(config: CoordinatorConfig, seed: u64) -> Self {
        let selector = Selector::new(config.strategy);
        let metrics = Registry::new();
        let sched_latency = metrics
            .histogram(
                "scheduling_latency_seconds",
                "per-decision scheduling latency",
                labels([]),
            )
            .ok();
        let jobs_submitted = metrics
            .counter("jobs_submitted_total", "jobs submitted", labels([]))
            .ok();
        let jobs_displaced = metrics
            .counter("jobs_displaced_total", "displacements", labels([]))
            .ok();
        let nodes_lost = metrics
            .counter("nodes_lost_total", "node losses", labels([]))
            .ok();
        let db = DbActor::new(config.db, seed ^ 0xD8);
        Coordinator {
            config,
            db,
            dir: Directory::new(),
            tokens: TokenRegistry::new(),
            selector,
            jobs: BTreeMap::new(),
            held_jobs: BTreeSet::new(),
            next_job: 1,
            timers: BTreeMap::new(),
            timer_seq: 0,
            pass_armed: false,
            metrics,
            sched_latency,
            jobs_submitted,
            jobs_displaced,
            nodes_lost,
            decision_latency: Online::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Start periodic duties (heartbeat sweep). Call once at boot.
    pub fn start(&mut self, now: SimTime) {
        self.arm(
            now + self.config.heartbeat_period,
            CoordTimer::HeartbeatSweep,
        );
    }

    /// The node directory (read access for harnesses).
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Snapshot of the system-database tables (read access for harnesses).
    /// Valid only within the current turn — in-flight writes apply on the
    /// next [`Coordinator::on_wake`].
    pub fn db(&self) -> &SystemDb {
        self.db.state()
    }

    /// The database write-queue actor (queue-depth / latency telemetry).
    pub fn db_actor(&self) -> &DbActor {
        &self.db
    }

    /// Reset the database actor's latency/backlog telemetry — experiment
    /// harnesses call this after a warm-up phase so steady-state numbers
    /// exclude the boot-time registration storm.
    pub fn reset_db_telemetry(&mut self) {
        self.db.reset_telemetry();
    }

    /// Apply database writes whose service completed by `now` without
    /// firing any coordinator timers. Benchmark scaffolding: lets a
    /// harness settle the write queue between setup steps while keeping
    /// the scheduling pass under its own control.
    pub fn apply_db_writes(&mut self, now: SimTime) {
        self.db.advance(now);
    }

    /// Scheduling decision latency statistics (the §5.2 quantity).
    pub fn decision_latency(&self) -> &Online {
        &self.decision_latency
    }

    /// Coordinator metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Number of jobs not yet terminal.
    pub fn live_jobs(&self) -> usize {
        self.jobs.len()
    }

    fn arm(&mut self, at: SimTime, t: CoordTimer) {
        self.timers.insert((at, self.timer_seq), t);
        self.timer_seq += 1;
    }

    fn arm_pass(&mut self, now: SimTime) {
        if !self.pass_armed {
            self.pass_armed = true;
            // A pass runs once the write queue has drained the transactions
            // submitted so far (its own enqueues included) — this is where
            // scheduling latency grows with scale: the deeper the backlog,
            // the later the pass.
            let delay = self.db.write_latency_estimate(now);
            self.arm(now + delay, CoordTimer::SchedulePass);
        }
    }

    /// The emergent database write latency right now: residual write-queue
    /// backlog plus one mean service time (the §5.2 quantity).
    pub fn db_write_latency(&self, now: SimTime) -> SimDuration {
        self.db.write_latency_estimate(now)
    }

    /// Next wake time (earliest timer or database write completion).
    pub fn next_wake(&self) -> Option<SimTime> {
        let timer = self.timers.keys().next().map(|(t, _)| *t);
        match (timer, self.db.next_wake()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Fire due timers, applying due database writes first so every turn
    /// reads a database that reflects all writes whose service completed.
    pub fn on_wake(&mut self, now: SimTime) -> Vec<CoordAction> {
        self.db.advance(now);
        let mut actions = Vec::new();
        while let Some((&(at, seq), _)) = self.timers.first_key_value() {
            if at > now {
                break;
            }
            let timer = self.timers.remove(&(at, seq)).expect("just observed");
            match timer {
                CoordTimer::HeartbeatSweep => {
                    self.heartbeat_sweep(now, &mut actions);
                    self.arm(
                        now + self.config.heartbeat_period,
                        CoordTimer::HeartbeatSweep,
                    );
                }
                CoordTimer::SchedulePass => {
                    self.pass_armed = false;
                    self.scheduling_pass(now, &mut actions);
                }
                CoordTimer::OfferTimeout(job) => {
                    self.offer_timed_out(now, job, &mut actions);
                }
            }
        }
        actions
    }

    // ---- user entry point ------------------------------------------------

    /// Submit a job (from a user client). The coordinator assigns the id.
    pub fn submit_job(
        &mut self,
        now: SimTime,
        mut spec: DispatchSpec,
    ) -> (JobId, Vec<CoordAction>) {
        self.db.advance(now);
        let job = JobId(self.next_job);
        self.next_job += 1;
        spec.job = job;
        let priority = spec.priority;
        self.db.submit(
            now,
            WriteIntent::SubmitJob {
                job,
                submitted_at: now,
                priority,
            },
        );
        self.jobs.insert(
            job,
            JobMeta {
                spec,
                current_node: None,
                offered_to: None,
                excluded: Vec::new(),
                preferred: None,
                home_hold: None,
                latest_checkpoint: None,
                displaced_from: None,
                migrating_back: false,
                retries: 0,
                submitted_at: now,
            },
        );
        let actions = vec![CoordAction::JobEvent {
            job,
            event: JobEvent::Queued,
        }];
        self.arm_pass(now);
        if let Some(c) = &self.jobs_submitted {
            c.inc();
        }
        (job, actions)
    }

    /// Cancel a job on user request.
    pub fn cancel_job(&mut self, now: SimTime, job: JobId) -> Vec<CoordAction> {
        self.db.advance(now);
        let mut actions = Vec::new();
        self.drop_hold(job);
        let Some(meta) = self.jobs.remove(&job) else {
            return actions;
        };
        self.db.submit(now, WriteIntent::TakePending(job));
        let latency = self
            .db
            .submit(now, WriteIntent::SetJobState(job, JobState::Cancelled));
        if let Some(node) = meta.current_node.or(meta.offered_to) {
            self.dir.release(node, job);
            actions.push(CoordAction::Send {
                to: node,
                msg: Message::Kill {
                    job,
                    reason: KillReason::UserCancel,
                },
                // The kill follows the cancellation transaction.
                delay: latency,
            });
        }
        actions
    }

    /// Drop a job's migrate-back hold (and its reservation), if any.
    fn drop_hold(&mut self, job: JobId) {
        self.held_jobs.remove(&job);
        if let Some(meta) = self.jobs.get_mut(&job) {
            if let Some((node, _)) = meta.home_hold.take() {
                self.dir.release(node, job);
            }
        }
    }

    /// Abandon every live hold whose (node, held-since) matches `pred` —
    /// the expiry sweep and node-loss teardown share this walk over the
    /// (small) held-jobs set.
    fn abandon_holds_where(&mut self, now: SimTime, pred: impl Fn(NodeUid, SimTime) -> bool) {
        let doomed: Vec<JobId> = self
            .held_jobs
            .iter()
            .filter(|j| {
                self.jobs
                    .get(j)
                    .and_then(|m| m.home_hold)
                    .map(|(n, at)| pred(n, at))
                    .unwrap_or(false)
            })
            .copied()
            .collect();
        for job in doomed {
            self.abandon_migrate_back(now, job);
        }
    }

    /// Give up on moving a job back home: drop the hold, the preference,
    /// and the in-flight migrate-back flag, and arm a pass — a pending job
    /// was deliberately skipped by the drain while its hold lived, so
    /// releasing it must re-open general placement even on a quiet fleet.
    fn abandon_migrate_back(&mut self, now: SimTime, job: JobId) {
        self.drop_hold(job);
        if let Some(meta) = self.jobs.get_mut(&job) {
            meta.preferred = None;
            meta.migrating_back = false;
        }
        self.arm_pass(now);
    }

    // ---- message handling --------------------------------------------

    /// Validate and process an envelope from the network.
    pub fn handle_envelope(&mut self, now: SimTime, env: Envelope) -> Vec<CoordAction> {
        // Register is the only unauthenticated message.
        if !matches!(env.msg, Message::Register { .. }) {
            let valid = self.tokens.validate(env.sender, &env.token)
                // Node-bearing messages must also claim the right sender.
                && message_source(&env.msg)
                    .map(|n| n == env.sender)
                    .unwrap_or(true);
            if !valid {
                return vec![CoordAction::Send {
                    to: env.sender,
                    msg: Message::Error {
                        code: 401,
                        detail: "invalid token".into(),
                    },
                    delay: SimDuration::ZERO,
                }];
            }
        }
        self.handle_message(now, env.msg)
    }

    /// Process an already-authenticated message.
    pub fn handle_message(&mut self, now: SimTime, msg: Message) -> Vec<CoordAction> {
        self.db.advance(now);
        let mut actions = Vec::new();
        match msg {
            Message::Register {
                machine_id,
                hostname,
                gpus,
                agent_version: _,
            } => {
                let gpu_count = gpus.len() as u8;
                let (uid, returning) = self.dir.register(&machine_id, &hostname, gpus, now);
                let token = self.tokens.issue(uid, &mut self.rng);
                let latency = self.db.submit(
                    now,
                    WriteIntent::UpsertNode(NodeRecord {
                        uid,
                        hostname,
                        gpu_count,
                        registered_at: now,
                        last_seen: now,
                        state: NodeState::Active,
                    }),
                );
                actions.push(CoordAction::Send {
                    to: uid,
                    msg: Message::RegisterAck {
                        node: uid,
                        token,
                        heartbeat_period_ms: self.config.heartbeat_period.as_millis() as u32,
                    },
                    // The ack leaves once the registration row is durable:
                    // its own write's emergent sojourn time.
                    delay: latency,
                });
                if returning {
                    self.provider_returned(now, uid, &mut actions);
                }
                self.arm_pass(now);
            }
            Message::Heartbeat {
                node,
                seq,
                accepting,
                gpu_stats,
                workloads,
            } => {
                let was_offline = self
                    .dir
                    .get(node)
                    .map(|e| e.liveness() == NodeLiveness::Offline)
                    .unwrap_or(false);
                self.dir
                    .apply_heartbeat(node, now, seq, accepting, &gpu_stats);
                // Every heartbeat is one status write through the same
                // queue as scheduling transactions — §5.2's contention is
                // this traffic. Sheddable: a full inbox drops it and the
                // next heartbeat carries fresher data.
                self.db.try_submit(now, WriteIntent::NodeSeen(node));
                if was_offline {
                    // Node came back without re-registering (short blip).
                    self.db
                        .submit(now, WriteIntent::SetNodeState(node, NodeState::Active));
                    self.provider_returned(now, node, &mut actions);
                }
                // Progress bookkeeping from piggybacked workload status.
                for ws in &workloads {
                    if let Some(meta) = self.jobs.get_mut(&ws.job) {
                        if ws.checkpoint_seq > 0 {
                            let stored = meta
                                .latest_checkpoint
                                .as_ref()
                                .map(|(_, s)| s.clone())
                                .unwrap_or_default();
                            if meta
                                .latest_checkpoint
                                .as_ref()
                                .map(|(s, _)| *s < ws.checkpoint_seq)
                                .unwrap_or(true)
                            {
                                meta.latest_checkpoint = Some((ws.checkpoint_seq, stored));
                            }
                        }
                    }
                }
                actions.push(CoordAction::Send {
                    to: node,
                    msg: Message::HeartbeatAck { node, seq },
                    delay: SimDuration::ZERO,
                });
            }
            Message::DispatchReply {
                job,
                accepted,
                reason: _,
            } => {
                self.timers
                    .retain(|_, t| !matches!(t, CoordTimer::OfferTimeout(j) if *j == job));
                let Some(meta) = self.jobs.get_mut(&job) else {
                    return actions;
                };
                let node = meta.offered_to.take();
                let Some(node) = node else {
                    return actions;
                };
                if accepted {
                    meta.current_node = Some(node);
                    // `preferred` is only ever set to a returning provider's
                    // node, so landing there means the migrate-back worked.
                    let migrated_back = meta.preferred == Some(node);
                    if migrated_back {
                        meta.displaced_from = None;
                    }
                    // Either way the preference is spent: it belongs to the
                    // placement epoch in which the provider returned. Left
                    // in place, a placement on another node would let a much
                    // later, unrelated displacement still route home and
                    // count as a migrate-back.
                    meta.preferred = None;
                    meta.migrating_back = false;
                    // Release the offer reservation: the agent has allocated
                    // real VRAM, which the next heartbeat reports. Keeping
                    // the reservation would double-count the job's memory.
                    self.dir.release(node, job);
                    self.drop_hold(job);
                    self.db.submit(
                        now,
                        WriteIntent::Allocate {
                            job,
                            node,
                            gpu_indices: vec![],
                            at: now,
                        },
                    );
                    if migrated_back {
                        actions.push(CoordAction::JobEvent {
                            job,
                            event: JobEvent::MigratedBack { node },
                        });
                    }
                } else {
                    self.offer_failed(now, job, node, &mut actions);
                }
            }
            Message::WorkloadUpdate { status, exit_code } => {
                let job = status.job;
                match status.state {
                    WorkloadState::Running => {
                        if let Some(meta) = self.jobs.get(&job) {
                            if let Some(node) = meta.current_node {
                                actions.push(CoordAction::JobEvent {
                                    job,
                                    event: JobEvent::Started { node },
                                });
                            }
                        }
                    }
                    WorkloadState::Completed => {
                        self.finish_job(now, job, &mut actions);
                    }
                    WorkloadState::Killed => {
                        // Provider kill-switch or preemption: displace.
                        self.displace_job(now, job, &mut actions);
                    }
                    WorkloadState::Failed => {
                        let retry = self
                            .jobs
                            .get_mut(&job)
                            .map(|m| {
                                m.retries += 1;
                                m.retries <= self.config.max_retries
                            })
                            .unwrap_or(false);
                        if retry {
                            self.displace_job(now, job, &mut actions);
                        } else {
                            self.fail_job(now, job, &mut actions);
                        }
                    }
                    _ => {}
                }
                let _ = exit_code;
            }
            Message::CheckpointDone {
                job,
                seq,
                transfer_bytes: _,
                stored_on,
            } => {
                let migrating_back = if let Some(meta) = self.jobs.get_mut(&job) {
                    meta.latest_checkpoint = Some((seq, stored_on));
                    meta.migrating_back
                } else {
                    false
                };
                if migrating_back {
                    // Fresh checkpoint durable: now preempt and move home.
                    if let Some(meta) = self.jobs.get_mut(&job) {
                        meta.migrating_back = false;
                    }
                    if let Some(node) = self.jobs.get(&job).and_then(|m| m.current_node) {
                        let delay = self.db.write_latency_estimate(now);
                        actions.push(CoordAction::Send {
                            to: node,
                            msg: Message::Kill {
                                job,
                                reason: KillReason::SchedulerPreempt,
                            },
                            // The preempt order queues behind the current
                            // write backlog like any other transaction.
                            delay,
                        });
                    }
                }
            }
            Message::DepartureNotice { node, mode } if self.dir.get(node).is_some() => {
                self.dir.record_interruption(node, now);
                match mode {
                    gpunion_protocol::DepartureMode::Graceful { .. } => {
                        self.dir.set_liveness(node, NodeLiveness::Departing);
                        self.db
                            .submit(now, WriteIntent::SetNodeState(node, NodeState::Departed));
                        // Jobs will checkpoint; displacement happens when
                        // the node goes offline (or per CheckpointDone).
                    }
                    gpunion_protocol::DepartureMode::Emergency => {
                        self.node_lost(now, node, &mut actions);
                    }
                }
            }
            Message::PauseScheduling { node, paused } => {
                let liveness = self.dir.get(node).map(|e| e.liveness());
                if liveness.is_some() && liveness != Some(NodeLiveness::Offline) {
                    self.dir.set_liveness(
                        node,
                        if paused {
                            NodeLiveness::Paused
                        } else {
                            NodeLiveness::Active
                        },
                    );
                }
                self.db.submit(
                    now,
                    WriteIntent::SetNodeState(
                        node,
                        if paused {
                            NodeState::Paused
                        } else {
                            NodeState::Active
                        },
                    ),
                );
                if !paused {
                    self.arm_pass(now);
                }
            }
            Message::Error { .. } => {}
            _ => {}
        }
        actions
    }

    // ---- failure handling ----------------------------------------------

    fn heartbeat_sweep(&mut self, now: SimTime, actions: &mut Vec<CoordAction>) {
        let timeout = self.config.heartbeat_period * self.config.missed_beats as u64;
        for uid in self.dir.stale_nodes(now, timeout) {
            self.node_lost(now, uid, actions);
        }
        // Expire migrate-back holds whose window has passed: the held
        // capacity goes back to the pool and the preference lapses.
        let window = self.config.migrate_back_window;
        self.abandon_holds_where(now, |_, since| now.since(since) > window);
    }

    /// A node is gone (heartbeat loss or emergency departure): displace
    /// everything it was running.
    pub fn node_lost(&mut self, now: SimTime, node: NodeUid, actions: &mut Vec<CoordAction>) {
        match self.dir.get(node) {
            None => return,
            Some(e) if e.liveness() == NodeLiveness::Offline => return,
            Some(_) => {}
        }
        self.dir.set_liveness(node, NodeLiveness::Offline);
        self.dir.record_interruption(node, now);
        self.db
            .submit(now, WriteIntent::SetNodeState(node, NodeState::Unavailable));
        let displaced: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, m)| m.current_node == Some(node) || m.offered_to == Some(node))
            .map(|(j, _)| *j)
            .collect();
        for job in displaced {
            self.displace_job(now, job, actions);
        }
        // Migrate-back holds on the dead node are gone with it.
        self.abandon_holds_where(now, |n, _| n == node);
        if let Some(c) = &self.nodes_lost {
            c.inc();
        }
    }

    /// Requeue a displaced job for migration, restoring from its latest
    /// durable checkpoint when one exists.
    fn displace_job(&mut self, now: SimTime, job: JobId, actions: &mut Vec<CoordAction>) {
        let Some(meta) = self.jobs.get_mut(&job) else {
            return;
        };
        let from = meta.current_node.take().or(meta.offered_to.take());
        if let Some(n) = from {
            self.dir.release(n, job);
        }
        let meta = self.jobs.get_mut(&job).expect("still present");
        if let Some(n) = from {
            meta.displaced_from = Some((n, now));
        }
        let restore_seq = meta.latest_checkpoint.as_ref().map(|(s, _)| *s);
        meta.spec.restore_from_seq = restore_seq;
        meta.migrating_back = false;
        // New placement epoch: rejections collected while the job was last
        // being placed say nothing about the post-displacement world. In
        // particular the original node must be offerable again, or
        // migrate-back could never land (the fig3 gap).
        meta.excluded.clear();
        self.db.submit(now, WriteIntent::RequeueJob(job));
        actions.push(CoordAction::JobEvent {
            job,
            event: JobEvent::Requeued { restore_seq },
        });
        self.arm_pass(now);
        if let Some(c) = &self.jobs_displaced {
            c.inc();
        }
    }

    fn finish_job(&mut self, now: SimTime, job: JobId, actions: &mut Vec<CoordAction>) {
        self.drop_hold(job);
        if let Some(meta) = self.jobs.remove(&job) {
            if let Some(node) = meta.current_node {
                self.dir.release(node, job);
            }
            self.db
                .submit(now, WriteIntent::SetJobState(job, JobState::Completed));
            self.db.submit(now, WriteIntent::Deallocate(job));
            actions.push(CoordAction::JobEvent {
                job,
                event: JobEvent::Completed,
            });
            self.arm_pass(now);
        }
    }

    fn fail_job(&mut self, now: SimTime, job: JobId, actions: &mut Vec<CoordAction>) {
        self.drop_hold(job);
        if let Some(meta) = self.jobs.remove(&job) {
            if let Some(node) = meta.current_node.or(meta.offered_to) {
                self.dir.release(node, job);
            }
            self.db.submit(now, WriteIntent::TakePending(job));
            self.db
                .submit(now, WriteIntent::SetJobState(job, JobState::Failed));
            actions.push(CoordAction::JobEvent {
                job,
                event: JobEvent::Failed,
            });
        }
    }

    fn offer_timed_out(&mut self, now: SimTime, job: JobId, actions: &mut Vec<CoordAction>) {
        let Some(meta) = self.jobs.get_mut(&job) else {
            return;
        };
        let Some(node) = meta.offered_to.take() else {
            return;
        };
        self.offer_failed(now, job, node, actions);
    }

    /// Shared tail of "the offer to `node` did not work out" — explicit
    /// rejection and silent timeout take the same path: release the offer
    /// reservation, exclude the node for this placement epoch, burn a
    /// retry, give up on migrate-back if the refusing node was the home,
    /// then requeue or fail.
    fn offer_failed(
        &mut self,
        now: SimTime,
        job: JobId,
        node: NodeUid,
        actions: &mut Vec<CoordAction>,
    ) {
        self.dir.release(node, job);
        let Some(meta) = self.jobs.get_mut(&job) else {
            return;
        };
        meta.excluded.push(node);
        meta.retries += 1;
        if meta.preferred == Some(node) {
            // The home node itself refused: give up migrating back rather
            // than spinning on a rejecting host.
            self.abandon_migrate_back(now, job);
        }
        let meta = self.jobs.get_mut(&job).expect("present");
        if meta.retries > self.config.max_retries {
            self.fail_job(now, job, actions);
        } else {
            self.db.submit(now, WriteIntent::RequeueJob(job));
            self.arm_pass(now);
        }
    }

    /// A displaced provider came back: try to move its jobs home.
    fn provider_returned(&mut self, now: SimTime, node: NodeUid, actions: &mut Vec<CoordAction>) {
        let window = self.config.migrate_back_window;
        let candidates: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, m)| {
                m.displaced_from
                    .map(|(n, at)| n == node && now.since(at) <= window)
                    .unwrap_or(false)
            })
            .map(|(j, _)| *j)
            .collect();
        for job in candidates {
            let meta = self.jobs.get_mut(&job).expect("just listed");
            meta.preferred = Some(node);
            // A rejection from a past epoch must not veto the return home.
            meta.excluded.retain(|u| *u != node);
            match meta.current_node {
                None => {
                    // Still queued: the preferred-node fast path in the next
                    // pass places it home before the general drain runs.
                    self.arm_pass(now);
                }
                Some(current) if current != node => {
                    // Running elsewhere: checkpoint there, then preempt and
                    // restore on the original node — but only after securing
                    // the home slot with a hold, so the pass can't give it
                    // away mid-round-trip. If the home can't cover the job
                    // right now (a sibling displaced job may have taken the
                    // capacity first), leave the healthy run alone; the
                    // preference stays set for any future displacement.
                    let spec = meta.spec.clone();
                    if self.dir.is_candidate(node, &spec)
                        && self
                            .dir
                            .reserve(node, job, spec.gpus, spec.gpu_mem_bytes, spec.min_cc)
                    {
                        let meta = self.jobs.get_mut(&job).expect("just listed");
                        meta.home_hold = Some((node, now));
                        meta.migrating_back = true;
                        self.held_jobs.insert(job);
                        let delay = self.db.write_latency_estimate(now);
                        actions.push(CoordAction::Send {
                            to: current,
                            msg: Message::CheckpointRequest { job },
                            delay,
                        });
                    }
                }
                _ => {}
            }
        }
    }

    // ---- the scheduling pass -------------------------------------------

    /// One batched pass over the pending queue (priority order, per §3.5),
    /// placing against the capacity index with incremental reservation
    /// updates — each placement is visible to the next decision without
    /// re-ranking anything.
    ///
    /// Runs in two phases: migrate-back candidates claim their preferred
    /// (returning) node first, then the general drain picks per strategy.
    ///
    /// Each placement submits its dequeue transaction to the write-queue
    /// actor and pays that write's *emergent* sojourn time as its decision
    /// latency — later decisions in the same pass queue behind earlier
    /// ones, which is exactly the §5.2 contention the M/M/1 formula used
    /// to simulate.
    pub fn scheduling_pass(&mut self, now: SimTime, actions: &mut Vec<CoordAction>) {
        self.db.advance(now);
        let pending = self.db.state().pending_in_order();

        // Phase 1: the preferred-node (migrate-back) fast path.
        for &job in &pending {
            let Some(meta) = self.jobs.get(&job) else {
                continue;
            };
            if meta.offered_to.is_some() {
                continue;
            }
            let Some(pref) = meta.preferred else {
                continue;
            };
            if meta.excluded.contains(&pref) {
                continue;
            }
            if meta.home_hold.is_some_and(|(n, _)| n != pref) {
                // The preference re-pointed to a different returner since
                // this hold was taken: the old hold is obsolete — release
                // it so it can't pin capacity on the stale home or keep
                // phase 2 from placing the job.
                self.drop_hold(job);
            }
            let meta = self.jobs.get(&job).expect("present");
            // The job's own held home slot counts as free for its check
            // (read-only; a transient miss leaves the hold untouched).
            if self.dir.is_candidate_for_holder(pref, &meta.spec, job) {
                // Swap the hold (if any) for the offer reservation, taken
                // atomically within this pass by dispatch_offer.
                self.drop_hold(job);
                self.dispatch_offer(now, job, pref, actions);
            }
        }

        // Phase 2: drain the rest of the queue against the live index.
        for &job in &pending {
            let Some(meta) = self.jobs.get(&job) else {
                // Job no longer tracked (cancelled/failed elsewhere):
                // scrub the orphan queue entry.
                self.db.submit(now, WriteIntent::TakePending(job));
                continue;
            };
            if meta.offered_to.is_some() {
                continue;
            }
            if meta.home_hold.is_some() {
                // A live home hold means this job was deliberately
                // preempted to move it home; don't scatter it to another
                // node while the hold stands. The heartbeat sweep expires
                // stale holds and re-opens general placement.
                continue;
            }
            let Some(target) = self.selector.pick(&self.dir, &meta.spec, &meta.excluded) else {
                continue; // nothing eligible; stays queued
            };
            self.dispatch_offer(now, job, target, actions);
        }

        // Writes that add pending jobs may still be in flight (submitted
        // after this pass was armed): they were invisible to the drain
        // above, so run another pass once the queue has drained them.
        if self.db.pending_enqueues() > 0 {
            self.arm_pass(now);
        }
    }

    /// Reserve, dequeue, and send one offer. Bails out (leaving the job
    /// pending, no offer) if the reservation cannot be fully covered —
    /// callers verify candidacy first, so this is a consistency backstop,
    /// not a placement strategy.
    fn dispatch_offer(
        &mut self,
        now: SimTime,
        job: JobId,
        target: NodeUid,
        actions: &mut Vec<CoordAction>,
    ) {
        let spec = self.jobs.get(&job).expect("present").spec.clone();
        if !self
            .dir
            .reserve(target, job, spec.gpus, spec.gpu_mem_bytes, spec.min_cc)
        {
            self.dir.release(target, job);
            return;
        }
        self.jobs.get_mut(&job).expect("present").offered_to = Some(target);
        // The decision's latency is its dequeue transaction's emergent
        // sojourn: queue wait behind every earlier write (including this
        // pass's previous decisions) plus service.
        let latency = self.db.submit(now, WriteIntent::TakePending(job));
        self.decision_latency.record(latency.as_secs_f64());
        self.arm(
            now + latency + self.config.offer_timeout,
            CoordTimer::OfferTimeout(job),
        );
        actions.push(CoordAction::Send {
            to: target,
            msg: Message::Dispatch { spec },
            delay: latency,
        });
        actions.push(CoordAction::JobEvent {
            job,
            event: JobEvent::Dispatched { node: target },
        });
        if let Some(h) = &self.sched_latency {
            h.observe(latency.as_secs_f64());
        }
    }

    /// Time a job has been waiting (diagnostics).
    pub fn job_wait(&self, job: JobId, now: SimTime) -> Option<SimDuration> {
        self.jobs.get(&job).map(|m| now.since(m.submitted_at))
    }

    /// The node currently hosting a job.
    pub fn job_node(&self, job: JobId) -> Option<NodeUid> {
        self.jobs.get(&job).and_then(|m| m.current_node)
    }

    /// Latest durable checkpoint of a job.
    pub fn job_checkpoint(&self, job: JobId) -> Option<(u64, Vec<NodeUid>)> {
        self.jobs
            .get(&job)
            .and_then(|m| m.latest_checkpoint.clone())
    }
}

/// Which node a message claims to come from (for token validation).
fn message_source(msg: &Message) -> Option<NodeUid> {
    match msg {
        Message::Heartbeat { node, .. }
        | Message::DepartureNotice { node, .. }
        | Message::PauseScheduling { node, .. } => Some(*node),
        _ => None,
    }
}

/// Expose the token check for embedding loops that skip full envelopes.
impl Coordinator {
    /// Validate a token for a node (live-mode helper).
    pub fn validate_token(&self, node: NodeUid, token: &AuthToken) -> bool {
        self.tokens.validate(node, token)
    }
}
