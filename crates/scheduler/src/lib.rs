//! # gpunion-scheduler — the central coordinator
//!
//! The coordination hub of §3.2: node [`directory::Directory`] fed by
//! registrations and heartbeats, allocation [`strategy::Strategy`]s over the
//! database-resident pending queue, heartbeat-loss failure detection (three
//! missed beats), displacement + checkpoint-restore migration, and
//! migrate-back when providers return — with every decision paying the
//! emergent sojourn time of its own write through the database actor's
//! bounded queue, the contention that bounds scalability (§5.2).

pub mod coordinator;
pub mod directory;
pub mod strategy;

pub use coordinator::{CoordAction, Coordinator, CoordinatorConfig, JobEvent};
pub use directory::{Directory, NodeEntry, NodeLiveness, Reliability};
pub use strategy::{Selector, Strategy};

#[cfg(test)]
mod tests {
    use super::*;
    use gpunion_des::SimTime;
    use gpunion_gpu::GpuModel;
    use gpunion_protocol::{
        DispatchSpec, ExecMode, GpuStat, JobId, Message, NodeUid, WorkloadState, WorkloadStatus,
    };

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn spec() -> DispatchSpec {
        DispatchSpec {
            job: JobId(0),
            image_repo: "pytorch/pytorch".into(),
            image_tag: "2.3".into(),
            image_digest: [1; 32],
            gpus: 1,
            gpu_mem_bytes: 8 << 30,
            min_cc: None,
            mode: ExecMode::Batch {
                entrypoint: vec!["python".into()],
            },
            checkpoint_interval_secs: 600,
            storage_nodes: vec![],
            state_bytes_hint: 1 << 30,
            restore_from_seq: None,
            priority: 1,
        }
    }

    fn register(coord: &mut Coordinator, now: SimTime, machine: &str) -> NodeUid {
        let actions = coord.handle_message(
            now,
            Message::Register {
                machine_id: machine.into(),
                hostname: machine.into(),
                gpus: vec![GpuModel::Rtx3090.into()],
                agent_version: 1,
            },
        );
        actions
            .iter()
            .find_map(|a| match a {
                CoordAction::Send {
                    msg: Message::RegisterAck { node, .. },
                    ..
                } => Some(*node),
                _ => None,
            })
            .expect("ack")
    }

    fn heartbeat(coord: &mut Coordinator, now: SimTime, node: NodeUid, seq: u64) {
        let stats = vec![GpuStat {
            memory_used: 0,
            memory_total: 24 << 30,
            utilization: 0.0,
            temperature_c: 30.0,
            power_w: 25.0,
        }];
        coord.handle_message(
            now,
            Message::Heartbeat {
                node,
                seq,
                accepting: true,
                gpu_stats: stats,
                workloads: vec![],
            },
        );
    }

    /// Drain all coordinator timers up to `until`.
    fn drive(coord: &mut Coordinator, until: SimTime) -> Vec<CoordAction> {
        let mut out = Vec::new();
        while let Some(at) = coord.next_wake() {
            if at > until {
                break;
            }
            out.extend(coord.on_wake(at));
        }
        out
    }

    fn find_dispatch(actions: &[CoordAction]) -> Option<(NodeUid, JobId)> {
        actions.iter().find_map(|a| match a {
            CoordAction::Send {
                to,
                msg: Message::Dispatch { spec },
                ..
            } => Some((*to, spec.job)),
            _ => None,
        })
    }

    #[test]
    fn submit_dispatch_accept_cycle() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        coord.start(t(0));
        let node = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), node, 1);
        let (job, actions) = coord.submit_job(t(3), spec());
        assert!(actions.iter().any(|a| matches!(
            a,
            CoordAction::JobEvent {
                event: JobEvent::Queued,
                ..
            }
        )));
        // The pass fires shortly after.
        let actions = drive(&mut coord, t(4));
        let (to, j) = find_dispatch(&actions).expect("dispatch");
        assert_eq!(to, node);
        assert_eq!(j, job);
        // Accept.
        coord.handle_message(
            t(5),
            Message::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            },
        );
        assert_eq!(coord.job_node(job), Some(node));
        // The allocation row lands once its write's service completes.
        drive(&mut coord, t(6));
        assert!(coord.db().allocation(job).is_some());
    }

    #[test]
    fn rejection_retries_on_other_node() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        coord.start(t(0));
        let n1 = register(&mut coord, t(1), "m-1");
        let n2 = register(&mut coord, t(1), "m-2");
        heartbeat(&mut coord, t(2), n1, 1);
        heartbeat(&mut coord, t(2), n2, 1);
        let (job, _) = coord.submit_job(t(3), spec());
        let actions = drive(&mut coord, t(4));
        let (first, _) = find_dispatch(&actions).expect("dispatch");
        let actions = coord.handle_message(
            t(5),
            Message::DispatchReply {
                job,
                accepted: false,
                reason: "busy".into(),
            },
        );
        assert!(
            find_dispatch(&actions).is_none(),
            "pass is re-armed, not inline"
        );
        let actions = drive(&mut coord, t(6));
        let (second, _) = find_dispatch(&actions).expect("second dispatch");
        assert_ne!(first, second, "rejected node excluded");
        let _ = (n1, n2);
    }

    #[test]
    fn heartbeat_loss_displaces_jobs() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        coord.start(t(0));
        let node = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), node, 1);
        let (job, _) = coord.submit_job(t(3), spec());
        drive(&mut coord, t(4));
        coord.handle_message(
            t(5),
            Message::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            },
        );
        // Record a checkpoint so the requeue can restore.
        coord.handle_message(
            t(400),
            Message::CheckpointDone {
                job,
                seq: 3,
                transfer_bytes: 1 << 20,
                stored_on: vec![],
            },
        );
        // No heartbeats after t=2 ⇒ sweep marks it lost (timeout = 3 × 5 s).
        let actions = drive(&mut coord, t(430));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                CoordAction::JobEvent {
                    event: JobEvent::Requeued {
                        restore_seq: Some(3)
                    },
                    ..
                }
            )),
            "job requeued with checkpoint restore"
        );
        assert_eq!(coord.job_node(job), None);
    }

    #[test]
    fn graceful_departure_then_offline_migrates() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        coord.start(t(0));
        let n1 = register(&mut coord, t(1), "m-1");
        let n2 = register(&mut coord, t(1), "m-2");
        heartbeat(&mut coord, t(2), n1, 1);
        heartbeat(&mut coord, t(2), n2, 1);
        let (job, _) = coord.submit_job(t(3), spec());
        let actions = drive(&mut coord, t(4));
        let (target, _) = find_dispatch(&actions).expect("dispatch");
        coord.handle_message(
            t(5),
            Message::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            },
        );
        // Provider announces graceful departure; checkpoint lands; node
        // goes silent.
        coord.handle_message(
            t(10),
            Message::DepartureNotice {
                node: target,
                mode: gpunion_protocol::DepartureMode::Graceful { grace_secs: 120 },
            },
        );
        coord.handle_message(
            t(15),
            Message::CheckpointDone {
                job,
                seq: 1,
                transfer_bytes: 1 << 20,
                stored_on: vec![],
            },
        );
        // Keep the survivor alive while the departed node goes stale.
        let other = if target == n1 { n2 } else { n1 };
        for (i, s) in (20..60).step_by(5).enumerate() {
            heartbeat(&mut coord, t(s), other, 2 + i as u64);
        }
        let actions = drive(&mut coord, t(60));
        // The job must have been requeued with restore and re-dispatched to
        // the other node.
        let dispatches: Vec<(NodeUid, JobId)> = actions
            .iter()
            .filter_map(|a| match a {
                CoordAction::Send {
                    to,
                    msg: Message::Dispatch { spec },
                    ..
                } => Some((*to, spec.job)),
                _ => None,
            })
            .collect();
        assert!(
            dispatches.iter().any(|(to, j)| *to == other && *j == job),
            "dispatches: {dispatches:?}"
        );
    }

    #[test]
    fn kill_switch_update_requeues() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        coord.start(t(0));
        let n1 = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), n1, 1);
        let (job, _) = coord.submit_job(t(3), spec());
        drive(&mut coord, t(4));
        coord.handle_message(
            t(5),
            Message::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            },
        );
        let actions = coord.handle_message(
            t(50),
            Message::WorkloadUpdate {
                status: WorkloadStatus {
                    job,
                    state: WorkloadState::Killed,
                    progress: 0.2,
                    checkpoint_seq: 0,
                },
                exit_code: Some(137),
            },
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            CoordAction::JobEvent {
                event: JobEvent::Requeued { restore_seq: None },
                ..
            }
        )));
    }

    #[test]
    fn completion_cleans_up() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        coord.start(t(0));
        let n1 = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), n1, 1);
        let (job, _) = coord.submit_job(t(3), spec());
        drive(&mut coord, t(4));
        coord.handle_message(
            t(5),
            Message::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            },
        );
        let actions = coord.handle_message(
            t(100),
            Message::WorkloadUpdate {
                status: WorkloadStatus {
                    job,
                    state: WorkloadState::Completed,
                    progress: 1.0,
                    checkpoint_seq: 2,
                },
                exit_code: Some(0),
            },
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            CoordAction::JobEvent {
                event: JobEvent::Completed,
                ..
            }
        )));
        assert_eq!(coord.live_jobs(), 0);
        // The completion write is fire-and-forget; let it apply.
        drive(&mut coord, t(101));
        assert_eq!(
            coord.db().job(job).unwrap().state,
            gpunion_db::JobState::Completed
        );
    }

    #[test]
    fn migrate_back_on_provider_return() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        coord.start(t(0));
        let n1 = register(&mut coord, t(1), "m-1");
        let n2 = register(&mut coord, t(1), "m-2");
        heartbeat(&mut coord, t(2), n1, 1);
        heartbeat(&mut coord, t(2), n2, 1);
        let (job, _) = coord.submit_job(t(3), spec());
        let actions = drive(&mut coord, t(4));
        let (home, _) = find_dispatch(&actions).expect("dispatch");
        coord.handle_message(
            t(5),
            Message::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            },
        );
        // Home node dies; job migrates to the other node.
        let mut actions = Vec::new();
        coord.node_lost(t(10), home, &mut actions);
        let other = if home == n1 { n2 } else { n1 };
        heartbeat(&mut coord, t(11), other, 2);
        let actions = drive(&mut coord, t(12));
        let (second, _) = find_dispatch(&actions).expect("re-dispatch");
        assert_eq!(second, other);
        coord.handle_message(
            t(13),
            Message::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            },
        );
        // Keep the surviving node heartbeating while time passes (and drive
        // the sweep timers as a real event loop would).
        let mut hb_seq = 3u64;
        for s in (15..300).step_by(5) {
            heartbeat(&mut coord, t(s), other, hb_seq);
            hb_seq += 1;
            drive(&mut coord, t(s));
        }
        // Home provider returns within the window.
        let actions = coord.handle_message(
            t(300),
            Message::Register {
                machine_id: if home == n1 {
                    "m-1".into()
                } else {
                    "m-2".into()
                },
                hostname: "back".into(),
                gpus: vec![GpuModel::Rtx3090.into()],
                agent_version: 1,
            },
        );
        // Coordinator orders a checkpoint on the current host.
        assert!(
            actions.iter().any(|a| matches!(
                a,
                CoordAction::Send {
                    to,
                    msg: Message::CheckpointRequest { job: j },
                    ..
                } if *to == other && *j == job
            )),
            "checkpoint request for migrate-back"
        );
        // Let the registration's scheduling pass fire (nothing pending yet).
        drive(&mut coord, t(305));
        // Checkpoint lands → preempt on current node.
        let actions = coord.handle_message(
            t(310),
            Message::CheckpointDone {
                job,
                seq: 5,
                transfer_bytes: 1 << 20,
                stored_on: vec![],
            },
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            CoordAction::Send {
                msg: Message::Kill { .. },
                ..
            }
        )));
        // Kill lands → requeue → dispatched home with restore.
        coord.handle_message(
            t(311),
            Message::WorkloadUpdate {
                status: WorkloadStatus {
                    job,
                    state: WorkloadState::Killed,
                    progress: 0.4,
                    checkpoint_seq: 5,
                },
                exit_code: Some(137),
            },
        );
        heartbeat(&mut coord, t(312), home, 1);
        heartbeat(&mut coord, t(312), other, hb_seq);
        let actions = drive(&mut coord, t(315));
        let dispatch_spec = actions.iter().find_map(|a| match a {
            CoordAction::Send {
                to,
                msg: Message::Dispatch { spec },
                ..
            } if *to == home => Some(spec.clone()),
            _ => None,
        });
        let s = dispatch_spec.expect("dispatched back home");
        assert_eq!(s.restore_from_seq, Some(5));
        // Accepting yields the MigratedBack event.
        let actions = coord.handle_message(
            t(316),
            Message::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            },
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            CoordAction::JobEvent {
                event: JobEvent::MigratedBack { .. },
                ..
            }
        )));
    }

    #[test]
    fn invalid_token_rejected() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        coord.start(t(0));
        let node = register(&mut coord, t(1), "m-1");
        let env = gpunion_protocol::Envelope::new(
            gpunion_protocol::AuthToken([0xBB; 16]),
            Message::Heartbeat {
                node,
                seq: 1,
                accepting: true,
                gpu_stats: vec![],
                workloads: vec![],
            },
        );
        let actions = coord.handle_envelope(t(2), env);
        assert!(actions.iter().any(|a| matches!(
            a,
            CoordAction::Send {
                msg: Message::Error { code: 401, .. },
                ..
            }
        )));
    }

    #[test]
    fn offer_timeout_excludes_silent_node() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        coord.start(t(0));
        let n1 = register(&mut coord, t(1), "m-1");
        let n2 = register(&mut coord, t(1), "m-2");
        // Both heartbeat continuously so neither is marked lost.
        let (job, _) = coord.submit_job(t(3), spec());
        let mut first = None;
        let mut second = None;
        for s in 2..40u64 {
            let hb = s - 1;
            heartbeat(&mut coord, t(s), n1, hb);
            heartbeat(&mut coord, t(s), n2, hb);
            for a in coord.on_wake(t(s)) {
                if let CoordAction::Send {
                    to,
                    msg: Message::Dispatch { .. },
                    ..
                } = a
                {
                    if first.is_none() {
                        first = Some(to);
                    } else if second.is_none() {
                        second = Some(to);
                    }
                }
            }
        }
        // First offer never answered → timeout (10 s) → second offer to the
        // other node.
        let (f, s) = (first.expect("first"), second.expect("second after timeout"));
        assert_ne!(f, s);
        let _ = job;
    }

    /// Write latency is emergent from queue depth: a registration storm
    /// of 400 nodes leaves a far deeper write backlog than 10 nodes, so
    /// the next transaction waits proportionally longer.
    #[test]
    fn decision_latency_grows_with_node_count() {
        let mut small = Coordinator::new(CoordinatorConfig::default(), 1);
        small.start(t(0));
        for i in 0..10 {
            register(&mut small, t(1), &format!("s-{i}"));
        }
        let mut big = Coordinator::new(CoordinatorConfig::default(), 1);
        big.start(t(0));
        for i in 0..400 {
            register(&mut big, t(1), &format!("b-{i}"));
        }
        assert!(big.db_write_latency(t(1)) > small.db_write_latency(t(1)) * 4);
        assert!(big.db_actor().depth() > small.db_actor().depth());
    }

    #[test]
    fn cancel_pending_and_running_jobs() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        coord.start(t(0));
        let n1 = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), n1, 1);
        // Pending cancel.
        let (j1, _) = coord.submit_job(t(3), spec());
        let actions = coord.cancel_job(t(4), j1);
        assert!(actions.is_empty(), "pending job cancels without messages");
        // Running cancel.
        let (j2, _) = coord.submit_job(t(5), spec());
        drive(&mut coord, t(6));
        coord.handle_message(
            t(7),
            Message::DispatchReply {
                job: j2,
                accepted: true,
                reason: String::new(),
            },
        );
        let actions = coord.cancel_job(t(8), j2);
        assert!(actions.iter().any(|a| matches!(
            a,
            CoordAction::Send {
                msg: Message::Kill {
                    reason: gpunion_protocol::KillReason::UserCancel,
                    ..
                },
                ..
            }
        )));
    }

    /// The migrate-back fast path must claim the returning node before the
    /// general drain hands its slot to an earlier queue position.
    #[test]
    fn migrate_back_fast_path_beats_queue_order() {
        // 16 GB jobs: one per 24 GB node, so the home slot is contended.
        let big_spec = || DispatchSpec {
            gpu_mem_bytes: 16 << 30,
            ..spec()
        };
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        coord.start(t(0));
        let n1 = register(&mut coord, t(1), "m-1");
        let n2 = register(&mut coord, t(1), "m-2");
        heartbeat(&mut coord, t(2), n1, 1);
        heartbeat(&mut coord, t(2), n2, 1);
        // Fill both nodes.
        let (job_a, _) = coord.submit_job(t(3), big_spec());
        drive(&mut coord, t(4));
        let home = coord
            .directory()
            .iter()
            .find(|e| e.has_reservation(job_a))
            .map(|e| e.uid)
            .expect("offered somewhere");
        coord.handle_message(
            t(5),
            Message::DispatchReply {
                job: job_a,
                accepted: true,
                reason: String::new(),
            },
        );
        let other = if home == n1 { n2 } else { n1 };
        let (job_b, _) = coord.submit_job(t(6), big_spec());
        drive(&mut coord, t(7));
        coord.handle_message(
            t(8),
            Message::DispatchReply {
                job: job_b,
                accepted: true,
                reason: String::new(),
            },
        );
        // Heartbeats report both nodes fully used; a backlog job queues
        // ahead of everything.
        let full = GpuStat {
            memory_used: 24 << 30,
            memory_total: 24 << 30,
            utilization: 1.0,
            temperature_c: 70.0,
            power_w: 300.0,
        };
        coord.handle_message(
            t(9),
            Message::Heartbeat {
                node: home,
                seq: 2,
                accepting: true,
                gpu_stats: vec![full],
                workloads: vec![],
            },
        );
        coord.handle_message(
            t(9),
            Message::Heartbeat {
                node: other,
                seq: 2,
                accepting: true,
                gpu_stats: vec![full],
                workloads: vec![],
            },
        );
        let (backlog, _) = coord.submit_job(t(10), big_spec());
        drive(&mut coord, t(11));
        // Home dies: job_a displaced, queued BEHIND the backlog job.
        let mut actions = Vec::new();
        coord.node_lost(t(12), home, &mut actions);
        // Let the requeue write apply (both nodes are full, so the armed
        // pass places nothing).
        drive(&mut coord, t(13));
        assert_eq!(
            coord.db().pending_in_order(),
            vec![backlog, job_a],
            "displaced job re-queues behind the backlog"
        );
        // Home returns fresh: the fast path must place job_a there even
        // though the backlog job is first in dispatch order.
        let machine = if home == n1 { "m-1" } else { "m-2" };
        coord.handle_message(
            t(20),
            Message::Register {
                machine_id: machine.into(),
                hostname: "back".into(),
                gpus: vec![GpuModel::Rtx3090.into()],
                agent_version: 1,
            },
        );
        heartbeat(&mut coord, t(21), home, 1);
        let actions = drive(&mut coord, t(22));
        let dispatches: Vec<(NodeUid, JobId)> = actions
            .iter()
            .filter_map(|a| match a {
                CoordAction::Send {
                    to,
                    msg: Message::Dispatch { spec },
                    ..
                } => Some((*to, spec.job)),
                _ => None,
            })
            .collect();
        assert_eq!(
            dispatches,
            vec![(home, job_a)],
            "displaced job goes home; backlog job must not steal the slot"
        );
    }

    /// Rejections accumulated before a displacement are a stale epoch: the
    /// node that once refused the job (e.g. while full) must be offerable
    /// again after the job is displaced.
    #[test]
    fn displacement_resets_rejection_exclusions() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        coord.start(t(0));
        let n1 = register(&mut coord, t(1), "m-1");
        let n2 = register(&mut coord, t(1), "m-2");
        heartbeat(&mut coord, t(2), n1, 1);
        heartbeat(&mut coord, t(2), n2, 1);
        let (job, _) = coord.submit_job(t(3), spec());
        let actions = drive(&mut coord, t(4));
        let (first, _) = find_dispatch(&actions).expect("dispatch");
        // First target rejects; retry lands on the second node.
        coord.handle_message(
            t(5),
            Message::DispatchReply {
                job,
                accepted: false,
                reason: "busy".into(),
            },
        );
        let actions = drive(&mut coord, t(6));
        let (second, _) = find_dispatch(&actions).expect("second dispatch");
        assert_ne!(first, second);
        coord.handle_message(
            t(7),
            Message::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            },
        );
        // The hosting node dies; the once-rejecting node is the only one
        // left and must be offered the displaced job.
        let mut actions = Vec::new();
        coord.node_lost(t(10), second, &mut actions);
        heartbeat(&mut coord, t(11), first, 2);
        let actions = drive(&mut coord, t(12));
        let (target, j) = find_dispatch(&actions).expect("re-dispatch after displacement");
        assert_eq!((target, j), (first, job), "stale exclusion was cleared");
    }
}
