//! # gpunion-scheduler — the central coordinator
//!
//! The coordination hub of §3.2 as a single-owner actor: node
//! [`directory::Directory`] fed by registrations and heartbeats, allocation
//! [`strategy::Strategy`]s over the database-resident pending queue,
//! heartbeat-loss failure detection (three missed beats), displacement +
//! checkpoint-restore migration, and migrate-back when providers return.
//! All mutating traffic enters through the coordinator's bounded inbox of
//! typed [`coordinator::CoordEnvelope`]s and is processed one actor turn at
//! a time inside [`coordinator::Coordinator::advance`] — with every
//! decision paying the emergent sojourn time of its own write through the
//! database actor's bounded queue, the contention that bounds scalability
//! (§5.2). When that queue is at bound, the coordinator defers its own
//! turns instead of over-filling it: critical writes are delayed, never
//! dropped.

pub mod coordinator;
pub mod directory;
pub mod strategy;

pub use coordinator::{
    AdmissionConfig, CoordAction, CoordEnvelope, Coordinator, CoordinatorConfig, CoordinatorStats,
    JobEvent, PlacementMode, SendOutcome,
};
pub use directory::{Directory, NodeEntry, NodeLiveness, Reliability, ShardedDirectory};
pub use strategy::{Selector, Strategy};

#[cfg(test)]
mod tests {
    use super::*;
    use gpunion_des::{SimDuration, SimTime};
    use gpunion_gpu::GpuModel;
    use gpunion_protocol::{
        Control, DispatchSpec, ExecMode, GpuStat, JobId, Message, NodeUid, UserId, Work,
        WorkloadState, WorkloadStatus,
    };

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn spec() -> DispatchSpec {
        DispatchSpec {
            job: JobId(0),
            image_repo: "pytorch/pytorch".into(),
            image_tag: "2.3".into(),
            image_digest: [1; 32],
            gpus: 1,
            gpu_mem_bytes: 8 << 30,
            min_cc: None,
            mode: ExecMode::Batch {
                entrypoint: vec!["python".into()],
            },
            checkpoint_interval_secs: 600,
            storage_nodes: vec![],
            state_bytes_hint: 1 << 30,
            restore_from_seq: None,
            priority: 1,
            user: UserId::SYSTEM,
        }
    }

    /// Enqueue a pre-authenticated message and run the actor's turn at
    /// `now`. Due timers at or before `now` fire in the same call — the
    /// actor merges envelopes and timer wakes in time order.
    fn msg(coord: &mut Coordinator, now: SimTime, m: Message) -> Vec<CoordAction> {
        coord.send(now, CoordEnvelope::Msg(Box::new(m)));
        coord.advance(now)
    }

    /// Enqueue a job submission and run its turn; returns the assigned id
    /// (handed out at admission) and the turn's actions.
    fn submit(
        coord: &mut Coordinator,
        now: SimTime,
        spec: DispatchSpec,
    ) -> (JobId, Vec<CoordAction>) {
        let outcome = coord.send(now, CoordEnvelope::SubmitJob(Box::new(spec)));
        let SendOutcome::Enqueued { job: Some(job) } = outcome else {
            panic!("job submissions are never shed: {outcome:?}");
        };
        (job, coord.advance(now))
    }

    fn register(coord: &mut Coordinator, now: SimTime, machine: &str) -> NodeUid {
        let actions = msg(
            coord,
            now,
            Control::Register {
                machine_id: machine.into(),
                hostname: machine.into(),
                gpus: vec![GpuModel::Rtx3090.into()],
                agent_version: 1,
            }
            .into(),
        );
        actions
            .iter()
            .find_map(|a| match a {
                CoordAction::Send {
                    msg: Message::Control(Control::RegisterAck { node, .. }),
                    ..
                } => Some(*node),
                _ => None,
            })
            .expect("ack")
    }

    fn heartbeat(
        coord: &mut Coordinator,
        now: SimTime,
        node: NodeUid,
        seq: u64,
    ) -> Vec<CoordAction> {
        let stats = vec![GpuStat {
            memory_used: 0,
            memory_total: 24 << 30,
            utilization: 0.0,
            temperature_c: 30.0,
            power_w: 25.0,
        }];
        msg(
            coord,
            now,
            Control::Heartbeat {
                node,
                seq,
                accepting: true,
                gpu_stats: stats,
                workloads: vec![],
            }
            .into(),
        )
    }

    /// Drain all coordinator wakes up to `until`.
    fn drive(coord: &mut Coordinator, until: SimTime) -> Vec<CoordAction> {
        let mut out = Vec::new();
        while let Some(at) = coord.next_wake() {
            if at > until {
                break;
            }
            out.extend(coord.advance(at));
        }
        out
    }

    fn find_dispatch(actions: &[CoordAction]) -> Option<(NodeUid, JobId)> {
        actions.iter().find_map(|a| match a {
            CoordAction::Send {
                to,
                msg: Message::Work(Work::Dispatch { spec }),
                ..
            } => Some((*to, spec.job)),
            _ => None,
        })
    }

    fn all_dispatches(actions: &[CoordAction]) -> Vec<(NodeUid, JobId)> {
        actions
            .iter()
            .filter_map(|a| match a {
                CoordAction::Send {
                    to,
                    msg: Message::Work(Work::Dispatch { spec }),
                    ..
                } => Some((*to, spec.job)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn submit_dispatch_accept_cycle() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        let node = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), node, 1);
        let (job, actions) = submit(&mut coord, t(3), spec());
        assert!(actions.iter().any(|a| matches!(
            a,
            CoordAction::JobEvent {
                event: JobEvent::Queued,
                ..
            }
        )));
        // The pass fires shortly after.
        let actions = drive(&mut coord, t(4));
        let (to, j) = find_dispatch(&actions).expect("dispatch");
        assert_eq!(to, node);
        assert_eq!(j, job);
        // Accept.
        msg(
            &mut coord,
            t(5),
            Work::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        );
        assert_eq!(coord.job_node(job), Some(node));
        // The allocation row lands once its write's service completes.
        drive(&mut coord, t(6));
        assert!(coord.db().allocation(job).is_some());
    }

    #[test]
    fn rejection_retries_on_other_node() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        let n1 = register(&mut coord, t(1), "m-1");
        let n2 = register(&mut coord, t(1), "m-2");
        heartbeat(&mut coord, t(2), n1, 1);
        heartbeat(&mut coord, t(2), n2, 1);
        let (job, _) = submit(&mut coord, t(3), spec());
        let actions = drive(&mut coord, t(4));
        let (first, _) = find_dispatch(&actions).expect("dispatch");
        let actions = msg(
            &mut coord,
            t(5),
            Work::DispatchReply {
                job,
                accepted: false,
                reason: "busy".into(),
            }
            .into(),
        );
        assert!(
            find_dispatch(&actions).is_none(),
            "pass is re-armed, not inline"
        );
        let actions = drive(&mut coord, t(6));
        let (second, _) = find_dispatch(&actions).expect("second dispatch");
        assert_ne!(first, second, "rejected node excluded");
        let _ = (n1, n2);
    }

    #[test]
    fn heartbeat_loss_displaces_jobs() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        let node = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), node, 1);
        let (job, _) = submit(&mut coord, t(3), spec());
        drive(&mut coord, t(4));
        msg(
            &mut coord,
            t(5),
            Work::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        );
        // Stay alive until t=400 (the actor fires sweeps in time order, so
        // the checkpoint must land before the node goes stale).
        for (i, s) in (7..=400).step_by(5).enumerate() {
            heartbeat(&mut coord, t(s), node, 2 + i as u64);
        }
        // Record a checkpoint so the requeue can restore.
        msg(
            &mut coord,
            t(400),
            Work::CheckpointDone {
                job,
                seq: 3,
                transfer_bytes: 1 << 20,
                stored_on: vec![],
            }
            .into(),
        );
        // No heartbeats after t=397 ⇒ sweep marks it lost (timeout = 3 × 5 s).
        let actions = drive(&mut coord, t(430));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                CoordAction::JobEvent {
                    event: JobEvent::Requeued {
                        restore_seq: Some(3)
                    },
                    ..
                }
            )),
            "job requeued with checkpoint restore"
        );
        assert_eq!(coord.job_node(job), None);
    }

    #[test]
    fn graceful_departure_then_offline_migrates() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        let n1 = register(&mut coord, t(1), "m-1");
        let n2 = register(&mut coord, t(1), "m-2");
        heartbeat(&mut coord, t(2), n1, 1);
        heartbeat(&mut coord, t(2), n2, 1);
        let (job, _) = submit(&mut coord, t(3), spec());
        let actions = drive(&mut coord, t(4));
        let (target, _) = find_dispatch(&actions).expect("dispatch");
        msg(
            &mut coord,
            t(5),
            Work::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        );
        // Provider announces graceful departure; checkpoint lands; node
        // goes silent.
        msg(
            &mut coord,
            t(10),
            Control::DepartureNotice {
                node: target,
                mode: gpunion_protocol::DepartureMode::Graceful { grace_secs: 120 },
            }
            .into(),
        );
        msg(
            &mut coord,
            t(15),
            Work::CheckpointDone {
                job,
                seq: 1,
                transfer_bytes: 1 << 20,
                stored_on: vec![],
            }
            .into(),
        );
        // Keep the survivor alive while the departed node goes stale; the
        // sweeps (and the re-dispatch they trigger) fire during these
        // turns, so collect everything.
        let other = if target == n1 { n2 } else { n1 };
        let mut actions = Vec::new();
        for (i, s) in (20..60).step_by(5).enumerate() {
            actions.extend(heartbeat(&mut coord, t(s), other, 2 + i as u64));
        }
        actions.extend(drive(&mut coord, t(60)));
        // The job must have been requeued with restore and re-dispatched to
        // the other node.
        let dispatches = all_dispatches(&actions);
        assert!(
            dispatches.iter().any(|(to, j)| *to == other && *j == job),
            "dispatches: {dispatches:?}"
        );
    }

    #[test]
    fn kill_switch_update_requeues() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        let n1 = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), n1, 1);
        let (job, _) = submit(&mut coord, t(3), spec());
        drive(&mut coord, t(4));
        msg(
            &mut coord,
            t(5),
            Work::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        );
        let actions = msg(
            &mut coord,
            t(50),
            Work::WorkloadUpdate {
                status: WorkloadStatus {
                    job,
                    state: WorkloadState::Killed,
                    progress: 0.2,
                    checkpoint_seq: 0,
                },
                exit_code: Some(137),
            }
            .into(),
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            CoordAction::JobEvent {
                event: JobEvent::Requeued { restore_seq: None },
                ..
            }
        )));
    }

    #[test]
    fn completion_cleans_up() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        let n1 = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), n1, 1);
        let (job, _) = submit(&mut coord, t(3), spec());
        drive(&mut coord, t(4));
        msg(
            &mut coord,
            t(5),
            Work::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        );
        let actions = msg(
            &mut coord,
            t(100),
            Work::WorkloadUpdate {
                status: WorkloadStatus {
                    job,
                    state: WorkloadState::Completed,
                    progress: 1.0,
                    checkpoint_seq: 2,
                },
                exit_code: Some(0),
            }
            .into(),
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            CoordAction::JobEvent {
                event: JobEvent::Completed,
                ..
            }
        )));
        assert_eq!(coord.stats().live_jobs, 0);
        // The completion write is fire-and-forget; let it apply.
        drive(&mut coord, t(101));
        assert_eq!(
            coord.db().job(job).unwrap().state,
            gpunion_db::JobState::Completed
        );
    }

    #[test]
    fn migrate_back_on_provider_return() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        let n1 = register(&mut coord, t(1), "m-1");
        let n2 = register(&mut coord, t(1), "m-2");
        heartbeat(&mut coord, t(2), n1, 1);
        heartbeat(&mut coord, t(2), n2, 1);
        let (job, _) = submit(&mut coord, t(3), spec());
        let actions = drive(&mut coord, t(4));
        let (home, _) = find_dispatch(&actions).expect("dispatch");
        msg(
            &mut coord,
            t(5),
            Work::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        );
        // Home node dies; job migrates to the other node.
        coord.send(t(10), CoordEnvelope::NodeDeparture(home));
        let mut actions = coord.advance(t(10));
        let other = if home == n1 { n2 } else { n1 };
        actions.extend(heartbeat(&mut coord, t(11), other, 2));
        actions.extend(drive(&mut coord, t(12)));
        let (second, _) = find_dispatch(&actions).expect("re-dispatch");
        assert_eq!(second, other);
        msg(
            &mut coord,
            t(13),
            Work::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        );
        // Keep the surviving node heartbeating while time passes (sweep
        // timers fire inside these turns, as in a real event loop).
        let mut hb_seq = 3u64;
        for s in (15..300).step_by(5) {
            heartbeat(&mut coord, t(s), other, hb_seq);
            hb_seq += 1;
        }
        // Home provider returns within the window.
        let actions = msg(
            &mut coord,
            t(300),
            Control::Register {
                machine_id: if home == n1 {
                    "m-1".into()
                } else {
                    "m-2".into()
                },
                hostname: "back".into(),
                gpus: vec![GpuModel::Rtx3090.into()],
                agent_version: 1,
            }
            .into(),
        );
        // Coordinator orders a checkpoint on the current host.
        assert!(
            actions.iter().any(|a| matches!(
                a,
                CoordAction::Send {
                    to,
                    msg: Message::Work(Work::CheckpointRequest { job: j }),
                    ..
                } if *to == other && *j == job
            )),
            "checkpoint request for migrate-back"
        );
        // Let the registration's scheduling pass fire (nothing pending yet).
        drive(&mut coord, t(305));
        // Checkpoint lands → preempt on current node.
        let actions = msg(
            &mut coord,
            t(310),
            Work::CheckpointDone {
                job,
                seq: 5,
                transfer_bytes: 1 << 20,
                stored_on: vec![],
            }
            .into(),
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            CoordAction::Send {
                msg: Message::Work(Work::Kill { .. }),
                ..
            }
        )));
        // Kill lands → requeue → dispatched home with restore.
        msg(
            &mut coord,
            t(311),
            Work::WorkloadUpdate {
                status: WorkloadStatus {
                    job,
                    state: WorkloadState::Killed,
                    progress: 0.4,
                    checkpoint_seq: 5,
                },
                exit_code: Some(137),
            }
            .into(),
        );
        let mut actions = heartbeat(&mut coord, t(312), home, 1);
        actions.extend(heartbeat(&mut coord, t(312), other, hb_seq));
        actions.extend(drive(&mut coord, t(315)));
        let dispatch_spec = actions.iter().find_map(|a| match a {
            CoordAction::Send {
                to,
                msg: Message::Work(Work::Dispatch { spec }),
                ..
            } if *to == home => Some(spec.clone()),
            _ => None,
        });
        let s = dispatch_spec.expect("dispatched back home");
        assert_eq!(s.restore_from_seq, Some(5));
        // Accepting yields the MigratedBack event.
        let actions = msg(
            &mut coord,
            t(316),
            Work::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            CoordAction::JobEvent {
                event: JobEvent::MigratedBack { .. },
                ..
            }
        )));
    }

    #[test]
    fn invalid_token_rejected() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        let node = register(&mut coord, t(1), "m-1");
        let env = gpunion_protocol::Envelope::new(
            gpunion_protocol::AuthToken([0xBB; 16]),
            Control::Heartbeat {
                node,
                seq: 1,
                accepting: true,
                gpu_stats: vec![],
                workloads: vec![],
            }
            .into(),
        );
        coord.send(t(2), CoordEnvelope::Net(Box::new(env)));
        let actions = coord.advance(t(2));
        assert!(actions.iter().any(|a| matches!(
            a,
            CoordAction::Send {
                msg: Message::Control(Control::Error { code: 401, .. }),
                ..
            }
        )));
    }

    #[test]
    fn offer_timeout_excludes_silent_node() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        let n1 = register(&mut coord, t(1), "m-1");
        let n2 = register(&mut coord, t(1), "m-2");
        // Both heartbeat continuously so neither is marked lost.
        let (job, _) = submit(&mut coord, t(3), spec());
        let mut first = None;
        let mut second = None;
        for s in 2..40u64 {
            let hb = s - 1;
            let mut actions = heartbeat(&mut coord, t(s), n1, hb);
            actions.extend(heartbeat(&mut coord, t(s), n2, hb));
            for a in actions {
                if let CoordAction::Send {
                    to,
                    msg: Message::Work(Work::Dispatch { .. }),
                    ..
                } = a
                {
                    if first.is_none() {
                        first = Some(to);
                    } else if second.is_none() {
                        second = Some(to);
                    }
                }
            }
        }
        // First offer never answered → timeout (10 s) → second offer to the
        // other node.
        let (f, s) = (first.expect("first"), second.expect("second after timeout"));
        assert_ne!(f, s);
        let _ = job;
    }

    /// Write latency is emergent from queue depth: a registration storm
    /// of 400 nodes leaves a far deeper write backlog than 10 nodes, so
    /// the next transaction waits proportionally longer.
    #[test]
    fn decision_latency_grows_with_node_count() {
        let mut small = Coordinator::new(CoordinatorConfig::default(), 1);
        for i in 0..10 {
            register(&mut small, t(1), &format!("s-{i}"));
        }
        let mut big = Coordinator::new(CoordinatorConfig::default(), 1);
        for i in 0..400 {
            register(&mut big, t(1), &format!("b-{i}"));
        }
        assert!(big.db_write_latency(t(1)) > small.db_write_latency(t(1)) * 4);
        assert!(big.db_actor().depth() > small.db_actor().depth());
    }

    #[test]
    fn cancel_pending_and_running_jobs() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        let n1 = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), n1, 1);
        // Pending cancel (same instant: the pass a submission arms fires a
        // write-latency later, so the job is still queued).
        let (j1, _) = submit(&mut coord, t(3), spec());
        coord.send(t(3), CoordEnvelope::CancelJob(j1));
        let actions = coord.advance(t(3));
        assert!(actions.is_empty(), "pending job cancels without messages");
        // Running cancel.
        let (j2, _) = submit(&mut coord, t(5), spec());
        drive(&mut coord, t(6));
        msg(
            &mut coord,
            t(7),
            Work::DispatchReply {
                job: j2,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        );
        coord.send(t(8), CoordEnvelope::CancelJob(j2));
        let actions = coord.advance(t(8));
        assert!(actions.iter().any(|a| matches!(
            a,
            CoordAction::Send {
                msg: Message::Work(Work::Kill {
                    reason: gpunion_protocol::KillReason::UserCancel,
                    ..
                }),
                ..
            }
        )));
    }

    /// The migrate-back fast path must claim the returning node before the
    /// general drain hands its slot to an earlier queue position.
    #[test]
    fn migrate_back_fast_path_beats_queue_order() {
        // 16 GB jobs: one per 24 GB node, so the home slot is contended.
        let big_spec = || DispatchSpec {
            gpu_mem_bytes: 16 << 30,
            ..spec()
        };
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        let n1 = register(&mut coord, t(1), "m-1");
        let n2 = register(&mut coord, t(1), "m-2");
        heartbeat(&mut coord, t(2), n1, 1);
        heartbeat(&mut coord, t(2), n2, 1);
        // Fill both nodes.
        let (job_a, _) = submit(&mut coord, t(3), big_spec());
        drive(&mut coord, t(4));
        let home = coord
            .directory()
            .iter()
            .find(|e| e.has_reservation(job_a))
            .map(|e| e.uid)
            .expect("offered somewhere");
        msg(
            &mut coord,
            t(5),
            Work::DispatchReply {
                job: job_a,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        );
        let other = if home == n1 { n2 } else { n1 };
        let (job_b, _) = submit(&mut coord, t(6), big_spec());
        drive(&mut coord, t(7));
        msg(
            &mut coord,
            t(8),
            Work::DispatchReply {
                job: job_b,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        );
        // Heartbeats report both nodes fully used; a backlog job queues
        // ahead of everything.
        let full = GpuStat {
            memory_used: 24 << 30,
            memory_total: 24 << 30,
            utilization: 1.0,
            temperature_c: 70.0,
            power_w: 300.0,
        };
        msg(
            &mut coord,
            t(9),
            Control::Heartbeat {
                node: home,
                seq: 2,
                accepting: true,
                gpu_stats: vec![full],
                workloads: vec![],
            }
            .into(),
        );
        msg(
            &mut coord,
            t(9),
            Control::Heartbeat {
                node: other,
                seq: 2,
                accepting: true,
                gpu_stats: vec![full],
                workloads: vec![],
            }
            .into(),
        );
        let (backlog, _) = submit(&mut coord, t(10), big_spec());
        drive(&mut coord, t(11));
        // Home dies: job_a displaced, queued BEHIND the backlog job.
        coord.send(t(12), CoordEnvelope::NodeDeparture(home));
        coord.advance(t(12));
        // Let the requeue write apply (both nodes are full, so the armed
        // pass places nothing).
        drive(&mut coord, t(13));
        assert_eq!(
            coord.db().pending_in_order(),
            vec![backlog, job_a],
            "displaced job re-queues behind the backlog"
        );
        // Home returns fresh: the fast path must place job_a there even
        // though the backlog job is first in dispatch order.
        let machine = if home == n1 { "m-1" } else { "m-2" };
        let mut actions = msg(
            &mut coord,
            t(20),
            Control::Register {
                machine_id: machine.into(),
                hostname: "back".into(),
                gpus: vec![GpuModel::Rtx3090.into()],
                agent_version: 1,
            }
            .into(),
        );
        actions.extend(heartbeat(&mut coord, t(21), home, 1));
        actions.extend(drive(&mut coord, t(22)));
        let dispatches = all_dispatches(&actions);
        assert_eq!(
            dispatches,
            vec![(home, job_a)],
            "displaced job goes home; backlog job must not steal the slot"
        );
    }

    /// Rejections accumulated before a displacement are a stale epoch: the
    /// node that once refused the job (e.g. while full) must be offerable
    /// again after the job is displaced.
    #[test]
    fn displacement_resets_rejection_exclusions() {
        let mut coord = Coordinator::new(CoordinatorConfig::default(), 1);
        let n1 = register(&mut coord, t(1), "m-1");
        let n2 = register(&mut coord, t(1), "m-2");
        heartbeat(&mut coord, t(2), n1, 1);
        heartbeat(&mut coord, t(2), n2, 1);
        let (job, _) = submit(&mut coord, t(3), spec());
        let actions = drive(&mut coord, t(4));
        let (first, _) = find_dispatch(&actions).expect("dispatch");
        // First target rejects; retry lands on the second node.
        msg(
            &mut coord,
            t(5),
            Work::DispatchReply {
                job,
                accepted: false,
                reason: "busy".into(),
            }
            .into(),
        );
        let actions = drive(&mut coord, t(6));
        let (second, _) = find_dispatch(&actions).expect("second dispatch");
        assert_ne!(first, second);
        msg(
            &mut coord,
            t(7),
            Work::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        );
        // The hosting node dies; the once-rejecting node is the only one
        // left and must be offered the displaced job.
        coord.send(t(10), CoordEnvelope::NodeDeparture(second));
        let mut actions = coord.advance(t(10));
        actions.extend(heartbeat(&mut coord, t(11), first, 2));
        actions.extend(drive(&mut coord, t(12)));
        let (target, j) = find_dispatch(&actions).expect("re-dispatch after displacement");
        assert_eq!((target, j), (first, job), "stale exclusion was cleared");
    }

    // ---- actor-turn invariants ------------------------------------------

    /// Heartbeats are shed at the coordinator inbox bound; critical
    /// envelopes are always admitted (and counted when over the bound).
    #[test]
    fn inbox_sheds_heartbeats_but_never_critical_envelopes() {
        let mut coord = Coordinator::new(
            CoordinatorConfig {
                inbox_capacity: 2,
                ..Default::default()
            },
            1,
        );
        let hb = |n: u64, s: u64| {
            Box::new(
                Control::Heartbeat {
                    node: NodeUid(n),
                    seq: s,
                    accepting: true,
                    gpu_stats: vec![],
                    workloads: vec![],
                }
                .into(),
            )
        };
        assert!(matches!(
            coord.send(t(1), CoordEnvelope::Msg(hb(1, 1))),
            SendOutcome::Enqueued { .. }
        ));
        assert!(matches!(
            coord.send(t(1), CoordEnvelope::Msg(hb(2, 1))),
            SendOutcome::Enqueued { .. }
        ));
        assert_eq!(
            coord.send(t(1), CoordEnvelope::Msg(hb(3, 1))),
            SendOutcome::Shed,
            "heartbeat past the bound is shed"
        );
        assert_eq!(coord.stats().shed_envelopes, 1);
        // A job submission is critical: admitted past the bound, counted.
        let outcome = coord.send(t(1), CoordEnvelope::SubmitJob(Box::new(spec())));
        assert!(matches!(outcome, SendOutcome::Enqueued { job: Some(_) }));
        assert_eq!(coord.stats().over_bound_envelopes, 1);
        assert_eq!(coord.stats().inbox_depth, 3);
        // Draining empties the inbox; the submission survived.
        coord.advance(t(1));
        assert_eq!(coord.stats().inbox_depth, 0);
        assert_eq!(coord.stats().live_jobs, 1);
    }

    /// With the database write queue at bound, the coordinator defers its
    /// turns instead of over-filling: every critical write is delayed,
    /// never dropped, and the stall is visible as inbox sojourn.
    #[test]
    fn deferred_turns_never_drop_critical_writes() {
        let mut config = CoordinatorConfig::default();
        config.db.inbox_capacity = 4; // tiny bound: stalls are immediate
        let mut coord = Coordinator::new(config, 1);
        let node = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), node, 1);
        // A burst of submissions: 4 writes fill the queue; the rest of the
        // envelopes must wait for completions.
        let mut jobs = Vec::new();
        for _ in 0..16 {
            let SendOutcome::Enqueued { job: Some(j) } =
                coord.send(t(3), CoordEnvelope::SubmitJob(Box::new(spec())))
            else {
                panic!("critical envelopes are never shed");
            };
            jobs.push(j);
        }
        coord.advance(t(3));
        assert!(
            coord.stats().inbox_depth > 0,
            "the burst cannot be admitted in one turn against a 4-deep queue"
        );
        assert!(coord.stats().deferred_turns > 0, "stalls were recorded");
        // Let the world run: completions free slots, deferred turns retry.
        drive(&mut coord, t(3600));
        assert_eq!(
            coord.stats().inbox_depth,
            0,
            "every envelope eventually ran"
        );
        // No submission was lost: every job is tracked (pending, offered,
        // or placed) and every SubmitJob write applied.
        assert_eq!(coord.stats().live_jobs, 16);
        for j in &jobs {
            assert!(coord.db().job(*j).is_some(), "job {j:?} row exists");
        }
        // The write queue never ran away past its bound by more than the
        // handful of writes one turn commits.
        assert!(
            coord.db_actor().depth_peak() <= 4 + 2,
            "depth peak {} breaches the bound + one turn's writes",
            coord.db_actor().depth_peak()
        );
        assert!(
            coord.stats().inbox_sojourn.max().unwrap_or(0.0) > 0.0,
            "backpressure must be visible as inbox sojourn"
        );
    }

    /// A heartbeat that would revive an Offline node is critical, not
    /// status traffic: at the coordinator inbox bound it must be admitted
    /// (ordinary heartbeats shed), or an overloaded coordinator could
    /// keep a returned provider dead indefinitely.
    #[test]
    fn reviving_heartbeats_are_not_shed_at_the_inbox_bound() {
        let mut coord = Coordinator::new(
            CoordinatorConfig {
                inbox_capacity: 1,
                ..Default::default()
            },
            1,
        );
        let node = register(&mut coord, t(1), "m-1");
        coord.send(t(2), CoordEnvelope::NodeDeparture(node));
        coord.advance(t(2));
        // Fill the inbox to its bound with a critical envelope.
        coord.send(t(3), CoordEnvelope::SubmitJob(Box::new(spec())));
        assert_eq!(coord.stats().inbox_depth, 1);
        let hb = |n: NodeUid, s: u64| {
            Box::new(
                Control::Heartbeat {
                    node: n,
                    seq: s,
                    accepting: true,
                    gpu_stats: vec![],
                    workloads: vec![],
                }
                .into(),
            )
        };
        // An ordinary heartbeat (node is fine... here: unknown uid 99)
        // sheds at the bound.
        assert_eq!(
            coord.send(t(3), CoordEnvelope::Msg(hb(NodeUid(99), 1))),
            SendOutcome::Shed
        );
        // The Offline node's reviving heartbeat is admitted past it.
        assert!(matches!(
            coord.send(t(3), CoordEnvelope::Msg(hb(node, 2))),
            SendOutcome::Enqueued { .. }
        ));
        drive(&mut coord, t(4));
        assert_eq!(
            coord.directory().get(node).map(|e| e.liveness()),
            Some(NodeLiveness::Active),
            "the revival landed despite the saturated inbox"
        );
    }

    /// A heartbeat that revives an Offline node submits a critical state
    /// flip, so unlike ordinary (sheddable-status) heartbeats it must
    /// defer at the database bound rather than bypass the backpressure.
    #[test]
    fn reviving_heartbeats_defer_like_critical_envelopes() {
        let mut config = CoordinatorConfig::default();
        config.db.inbox_capacity = 1;
        let mut coord = Coordinator::new(config, 1);
        let node = register(&mut coord, t(1), "m-1");
        drive(&mut coord, t(2)); // settle the registration write
                                 // Node loss marks it Offline; the SetNodeState(Unavailable) write
                                 // fills the 1-deep queue.
        coord.send(t(3), CoordEnvelope::NodeDeparture(node));
        coord.advance(t(3));
        assert!(coord.db_actor().would_block());
        let over_before = coord.db_actor().over_bound_writes();
        coord.send(
            t(3),
            CoordEnvelope::Msg(Box::new(
                Control::Heartbeat {
                    node,
                    seq: 9,
                    accepting: true,
                    gpu_stats: vec![],
                    workloads: vec![],
                }
                .into(),
            )),
        );
        let actions = coord.advance(t(3));
        assert!(actions.is_empty(), "reviving turn deferred, no ack yet");
        assert_eq!(coord.stats().inbox_depth, 1, "heartbeat waits at the head");
        assert!(coord.stats().deferred_turns > 0);
        // Once the queue drains, the turn runs and the node revives. The
        // turn was admitted against a free slot; its own status write may
        // fill that slot before the critical flip (the documented
        // one-turn slack on a 1-deep queue), but the turn itself never
        // started against a full queue.
        drive(&mut coord, t(4));
        assert_eq!(coord.stats().inbox_depth, 0);
        assert!(coord.db_actor().over_bound_writes() <= over_before + 1);
        assert_eq!(
            coord.directory().get(node).map(|e| e.liveness()),
            Some(NodeLiveness::Active)
        );
    }

    /// Placements (push `Dispatch` or pull `WorkGrant`) in an action
    /// stream, normalized to `(node, job)` so the two modes compare.
    fn all_placements(actions: &[CoordAction]) -> Vec<(NodeUid, JobId)> {
        actions
            .iter()
            .filter_map(|a| match a {
                CoordAction::Send {
                    to,
                    msg: Message::Work(Work::Dispatch { spec } | Work::WorkGrant { spec, .. }),
                    ..
                } => Some((*to, spec.job)),
                _ => None,
            })
            .collect()
    }

    /// Put a standing, generously-shaped offer on the book for `node`.
    fn offer_all(coord: &mut Coordinator, now: SimTime, node: NodeUid) {
        msg(
            coord,
            now,
            Work::WorkRequest {
                node,
                free_slices: vec![gpunion_protocol::FreeSlice {
                    count: 8,
                    mem_bytes: 24 << 30,
                    cc_major: 8,
                    cc_minor: 6,
                }],
                deadline_ms: 1_000_000_000,
            }
            .into(),
        );
    }

    #[test]
    fn pull_mode_grants_offered_capacity_and_falls_back() {
        let cfg = CoordinatorConfig {
            placement_mode: PlacementMode::Pull,
            ..CoordinatorConfig::default()
        };
        let mut coord = Coordinator::new(cfg, 1);
        let node = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), node, 1);
        // No offer on the book: pull mode falls back to the capacity
        // index and sends a plain push-style Dispatch.
        let (job_a, _) = submit(&mut coord, t(3), spec());
        let actions = drive(&mut coord, t(4));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                CoordAction::Send {
                    msg: Message::Work(Work::Dispatch { .. }),
                    ..
                }
            )),
            "no live offer: fallback is a plain Dispatch"
        );
        msg(
            &mut coord,
            t(5),
            Work::DispatchReply {
                job: job_a,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        );
        // With a live offer, the next placement is a WorkGrant lease.
        offer_all(&mut coord, t(6), node);
        let (job_b, _) = submit(&mut coord, t(7), spec());
        let actions = drive(&mut coord, t(8));
        let grant = actions.iter().find_map(|a| match a {
            CoordAction::Send {
                to,
                msg: Message::Work(Work::WorkGrant { spec, lease_ms }),
                ..
            } => Some((*to, spec.job, *lease_ms)),
            _ => None,
        });
        let (to, granted, lease_ms) = grant.expect("offer answered with a grant");
        assert_eq!(to, node);
        assert_eq!(granted, job_b);
        assert!(lease_ms > 0, "lease carries a validity window");
        assert_eq!(coord.stats().grants_sent, 1);
        assert_eq!(coord.stats().live_offers, 1, "offers are standing");
    }

    #[test]
    fn stale_offer_expires_with_a_nack() {
        let cfg = CoordinatorConfig {
            placement_mode: PlacementMode::Pull,
            ..CoordinatorConfig::default()
        };
        let mut coord = Coordinator::new(cfg, 1);
        let node = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), node, 1);
        // A short-deadline offer, then silence past its validity window.
        let actions = msg(
            &mut coord,
            t(3),
            Work::WorkRequest {
                node,
                free_slices: vec![gpunion_protocol::FreeSlice {
                    count: 1,
                    mem_bytes: 24 << 30,
                    cc_major: 8,
                    cc_minor: 6,
                }],
                deadline_ms: 500,
            }
            .into(),
        );
        assert!(all_placements(&actions).is_empty());
        assert_eq!(coord.stats().live_offers, 1);
        let mut actions = heartbeat(&mut coord, t(6), node, 2); // keep the node alive
        actions.extend(drive(&mut coord, t(12)));
        let nack = actions.iter().find_map(|a| match a {
            CoordAction::Send {
                msg:
                    Message::Work(Work::GrantNack {
                        node,
                        retry_after_ms,
                    }),
                ..
            } => Some((*node, *retry_after_ms)),
            _ => None,
        });
        let (nacked, retry_after_ms) = nack.expect("expired offer is nacked");
        assert_eq!(nacked, node);
        assert!(retry_after_ms > 0, "nack carries a retry hint");
        assert_eq!(coord.stats().live_offers, 0);
        assert_eq!(coord.stats().nacks_sent, 1);
    }

    /// A heartbeat whose workload report includes `job` running on `node`
    /// — the renewal signal for a pull-mode grant lease.
    fn heartbeat_with_workload(
        coord: &mut Coordinator,
        now: SimTime,
        node: NodeUid,
        seq: u64,
        job: JobId,
    ) -> Vec<CoordAction> {
        let stats = vec![GpuStat {
            memory_used: 8 << 30,
            memory_total: 24 << 30,
            utilization: 0.9,
            temperature_c: 60.0,
            power_w: 250.0,
        }];
        msg(
            coord,
            now,
            Control::Heartbeat {
                node,
                seq,
                accepting: true,
                gpu_stats: stats,
                workloads: vec![WorkloadStatus {
                    job,
                    state: WorkloadState::Running,
                    progress: 0.1,
                    checkpoint_seq: 0,
                }],
            }
            .into(),
        )
    }

    #[test]
    fn grant_lease_expires_when_heartbeats_omit_the_workload() {
        let cfg = CoordinatorConfig {
            placement_mode: PlacementMode::Pull,
            ..CoordinatorConfig::default()
        };
        let mut coord = Coordinator::new(cfg, 1);
        let node = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), node, 1);
        offer_all(&mut coord, t(2), node);
        let (job, _) = submit(&mut coord, t(3), spec());
        let actions = drive(&mut coord, t(4));
        assert_eq!(all_placements(&actions), vec![(node, job)]);
        msg(
            &mut coord,
            t(4),
            Work::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        );
        // The node stays alive but its heartbeats never report the
        // workload (the run died silently): the lease lapses unrenewed
        // and the first sweep past expiry revokes the grant.
        let mut actions = heartbeat(&mut coord, t(6), node, 2);
        actions.extend(heartbeat(&mut coord, t(11), node, 3));
        actions.extend(drive(&mut coord, t(16)));
        assert_eq!(coord.stats().lease_revocations, 1);
        assert!(
            actions.iter().any(|a| matches!(a,
                CoordAction::Send {
                    to,
                    msg: Message::Work(Work::Kill {
                        job: j,
                        reason: gpunion_protocol::KillReason::SchedulerPreempt,
                    }),
                    ..
                } if *to == node && *j == job)),
            "revocation tells the node to kill the zombie run"
        );
        assert!(
            actions.iter().any(|a| matches!(a,
                CoordAction::JobEvent {
                    job: j,
                    event: JobEvent::Requeued { .. },
                } if *j == job)),
            "the revoked job requeues for another placement"
        );
    }

    #[test]
    fn workload_heartbeats_renew_the_grant_lease() {
        let cfg = CoordinatorConfig {
            placement_mode: PlacementMode::Pull,
            ..CoordinatorConfig::default()
        };
        let mut coord = Coordinator::new(cfg, 1);
        let node = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), node, 1);
        offer_all(&mut coord, t(2), node);
        let (job, _) = submit(&mut coord, t(3), spec());
        let actions = drive(&mut coord, t(4));
        assert_eq!(all_placements(&actions), vec![(node, job)]);
        msg(
            &mut coord,
            t(4),
            Work::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        );
        // Heartbeats keep reporting the workload: every beat pushes the
        // lease out past the next sweep, so the grant is never revoked.
        heartbeat_with_workload(&mut coord, t(6), node, 2, job);
        heartbeat_with_workload(&mut coord, t(11), node, 3, job);
        heartbeat_with_workload(&mut coord, t(16), node, 4, job);
        drive(&mut coord, t(18));
        assert_eq!(coord.stats().lease_revocations, 0);
        assert_eq!(coord.stats().live_jobs, 1, "the run is still placed");
    }

    #[test]
    fn admission_sheds_non_critical_but_never_critical() {
        let cfg = CoordinatorConfig {
            admission: Some(AdmissionConfig {
                burst: 2,
                rate_per_sec: 1,
                critical_priority: 3,
            }),
            ..CoordinatorConfig::default()
        };
        let mut coord = Coordinator::new(cfg, 1);
        let node = register(&mut coord, t(1), "m-1");
        heartbeat(&mut coord, t(2), node, 1);
        // ρ > 1: five batch submissions in one instant against a bucket
        // that holds two.
        let mut admitted = 0;
        let mut shed = 0;
        for _ in 0..5 {
            match coord.send(t(3), CoordEnvelope::SubmitJob(Box::new(spec()))) {
                SendOutcome::Enqueued { job: Some(_) } => admitted += 1,
                SendOutcome::Shed => shed += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(admitted, 2, "burst capacity admits exactly two");
        assert_eq!(shed, 3, "the overload past the burst is shed");
        // Critical (interactive-priority) submissions bypass the bucket
        // even though it is empty: criticals are never dropped.
        for _ in 0..4 {
            let outcome = coord.send(
                t(3),
                CoordEnvelope::SubmitJob(Box::new(DispatchSpec {
                    priority: 3,
                    ..spec()
                })),
            );
            assert!(
                matches!(outcome, SendOutcome::Enqueued { job: Some(_) }),
                "critical submissions are never shed: {outcome:?}"
            );
        }
        assert_eq!(coord.stats().admission_shed_jobs, 3);
        // A second later one token has refilled: one more batch job fits.
        assert!(matches!(
            coord.send(t(4), CoordEnvelope::SubmitJob(Box::new(spec()))),
            SendOutcome::Enqueued { job: Some(_) }
        ));
        assert!(matches!(
            coord.send(t(4), CoordEnvelope::SubmitJob(Box::new(spec()))),
            SendOutcome::Shed
        ));
    }

    /// Build the op stream for the drive-equivalence proptest: a mixed
    /// sequence of registrations, heartbeats, submissions, replies, kills,
    /// cancels, and departures at non-decreasing integer times — including
    /// same-instant batches, and including instants where a (drifted)
    /// sweep timer is due, so the timer-first tie rule is exercised.
    fn turn_events(ops: &[(u8, u64, u64)]) -> Vec<(SimTime, CoordEnvelope)> {
        let mut now = 1u64;
        let mut out = Vec::new();
        for &(op, a, b) in ops {
            // 0–3 s steps; same-instant batches when the step is 0.
            now += b % 4;
            if now % 5 == 0 {
                now += 1;
            }
            let at = t(now);
            let env = match op % 7 {
                0 => CoordEnvelope::Msg(Box::new(
                    Control::Register {
                        machine_id: format!("m-{}", a % 8),
                        hostname: format!("h-{}", a % 8),
                        gpus: vec![GpuModel::Rtx3090.into()],
                        agent_version: 1,
                    }
                    .into(),
                )),
                1 => CoordEnvelope::Msg(Box::new(
                    Control::Heartbeat {
                        node: NodeUid(a % 10),
                        seq: b,
                        accepting: b % 5 != 0,
                        gpu_stats: vec![GpuStat {
                            memory_used: (b % 24) << 30,
                            memory_total: 24 << 30,
                            utilization: 0.5,
                            temperature_c: 50.0,
                            power_w: 200.0,
                        }],
                        workloads: vec![],
                    }
                    .into(),
                )),
                2 => CoordEnvelope::SubmitJob(Box::new(DispatchSpec {
                    gpu_mem_bytes: (1 + b % 20) << 30,
                    ..spec()
                })),
                3 => CoordEnvelope::Msg(Box::new(
                    Work::DispatchReply {
                        job: JobId(1 + b % 24),
                        accepted: a % 2 == 0,
                        reason: String::new(),
                    }
                    .into(),
                )),
                4 => CoordEnvelope::Msg(Box::new(
                    Work::WorkloadUpdate {
                        status: WorkloadStatus {
                            job: JobId(1 + b % 24),
                            state: if a % 3 == 0 {
                                WorkloadState::Killed
                            } else {
                                WorkloadState::Completed
                            },
                            progress: 0.5,
                            checkpoint_seq: b % 3,
                        },
                        exit_code: None,
                    }
                    .into(),
                )),
                5 => CoordEnvelope::CancelJob(JobId(1 + b % 24)),
                _ => CoordEnvelope::NodeDeparture(NodeUid(a % 10)),
            };
            out.push((at, env));
        }
        out
    }

    proptest::proptest! {
        /// Driving the actor one envelope per `advance` (the pre-refactor
        /// call-sequence cadence: handle a message, then run due wakes)
        /// and batching all same-instant envelopes into a single `advance`
        /// must produce IDENTICAL decisions — the action stream, job
        /// bookkeeping, and database state cannot depend on how senders
        /// group their sends. This is the actor-turn invariant the §3b
        /// refactor relies on.
        #[test]
        fn prop_envelope_batching_is_turn_equivalent(
            ops in proptest::collection::vec((0u8..7, 0u64..16, 0u64..32), 1..60),
        ) {
            let mut one_by_one = Coordinator::new(CoordinatorConfig::default(), 9);
            let mut batched = Coordinator::new(CoordinatorConfig::default(), 9);
            let mut log_a = Vec::new();
            let mut log_b = Vec::new();

            // Style A: send + advance per envelope.
            let mut horizon = SimTime::ZERO;
            for (at, env) in turn_events(&ops) {
                one_by_one.send(at, env);
                log_a.extend(one_by_one.advance(at));
                horizon = at;
            }
            // Style B: batch every same-instant group, one advance each.
            let mut it = turn_events(&ops).into_iter().peekable();
            while let Some((at, env)) = it.next() {
                batched.send(at, env);
                while it.peek().map(|(bt, _)| *bt == at).unwrap_or(false) {
                    let (bt, env) = it.next().expect("just peeked");
                    batched.send(bt, env);
                }
                log_b.extend(batched.advance(at));
            }
            // Settle both worlds identically (in-flight writes, passes,
            // offer timeouts) before comparing.
            let end = horizon + SimDuration::from_secs(60);
            log_a.extend(drive(&mut one_by_one, end));
            log_b.extend(drive(&mut batched, end));

            proptest::prop_assert_eq!(format!("{log_a:?}"), format!("{log_b:?}"));
            proptest::prop_assert_eq!(
                one_by_one.db().pending_in_order(),
                batched.db().pending_in_order()
            );
            proptest::prop_assert_eq!(one_by_one.stats().live_jobs, batched.stats().live_jobs);
        }

        /// Directory sharding is pure mechanism: a coordinator with a
        /// sharded directory must make IDENTICAL decisions to the
        /// single-shard one on any envelope stream — action log, pending
        /// queue, and job bookkeeping all bit-equal. (The directory-level
        /// proptest proves the merged views match; this proves nothing at
        /// the coordinator layer — timers, passes, migrate-back affinity
        /// routing — leaks the shard count either.)
        #[test]
        fn prop_shard_count_never_changes_decisions(
            ops in proptest::collection::vec((0u8..7, 0u64..16, 0u64..32), 1..60),
            shards in 2usize..9,
        ) {
            let unsharded = CoordinatorConfig::default();
            let sharded_cfg = CoordinatorConfig {
                shard_count: shards,
                ..CoordinatorConfig::default()
            };
            let mut reference = Coordinator::new(unsharded, 9);
            let mut sharded = Coordinator::new(sharded_cfg, 9);
            let mut log_a = Vec::new();
            let mut log_b = Vec::new();
            let mut horizon = SimTime::ZERO;
            for (at, env) in turn_events(&ops) {
                reference.send(at, env);
                log_a.extend(reference.advance(at));
                horizon = at;
            }
            for (at, env) in turn_events(&ops) {
                sharded.send(at, env);
                log_b.extend(sharded.advance(at));
            }
            let end = horizon + SimDuration::from_secs(60);
            log_a.extend(drive(&mut reference, end));
            log_b.extend(drive(&mut sharded, end));

            proptest::prop_assert_eq!(format!("{log_a:?}"), format!("{log_b:?}"));
            proptest::prop_assert_eq!(
                reference.db().pending_in_order(),
                sharded.db().pending_in_order()
            );
            proptest::prop_assert_eq!(reference.stats().live_jobs, sharded.stats().live_jobs);
            let uids = |c: &Coordinator| -> Vec<NodeUid> {
                c.directory().iter().map(|e| e.uid).collect()
            };
            proptest::prop_assert_eq!(uids(&reference), uids(&sharded));
        }

        /// Worker threads are pure mechanism too: running the directory's
        /// shard actors inline (`worker_threads = 0`), on one worker, or
        /// on four must produce bit-equal action logs, pending queues,
        /// job bookkeeping, and directory membership on any envelope
        /// stream. Every read quiesces at the join point before merging,
        /// so thread scheduling can change *when* a shard applies its
        /// inbox, never *what* the coordinator observes.
        #[test]
        fn prop_worker_threads_never_change_decisions(
            ops in proptest::collection::vec((0u8..7, 0u64..16, 0u64..32), 1..60),
        ) {
            let worlds = [0usize, 1, 4].map(|workers| {
                let cfg = CoordinatorConfig {
                    shard_count: 5,
                    worker_threads: workers,
                    ..CoordinatorConfig::default()
                };
                let mut coord = Coordinator::new(cfg, 9);
                let mut log = Vec::new();
                let mut horizon = SimTime::ZERO;
                for (at, env) in turn_events(&ops) {
                    coord.send(at, env);
                    log.extend(coord.advance(at));
                    horizon = at;
                }
                log.extend(drive(&mut coord, horizon + SimDuration::from_secs(60)));
                (coord, log)
            });
            let [(inline, log_0), (one, log_1), (four, log_4)] = worlds;
            proptest::prop_assert_eq!(format!("{log_0:?}"), format!("{log_1:?}"));
            proptest::prop_assert_eq!(format!("{log_0:?}"), format!("{log_4:?}"));
            proptest::prop_assert_eq!(
                inline.db().pending_in_order(),
                one.db().pending_in_order()
            );
            proptest::prop_assert_eq!(
                inline.db().pending_in_order(),
                four.db().pending_in_order()
            );
            proptest::prop_assert_eq!(inline.stats().live_jobs, one.stats().live_jobs);
            proptest::prop_assert_eq!(inline.stats().live_jobs, four.stats().live_jobs);
            let uids = |c: &Coordinator| -> Vec<NodeUid> {
                c.directory().iter().map(|e| e.uid).collect()
            };
            proptest::prop_assert_eq!(uids(&inline), uids(&one));
            proptest::prop_assert_eq!(uids(&inline), uids(&four));
        }

        /// On a quiescent trace where EVERY live node holds a standing,
        /// generously-shaped offer, pull mode must reach the exact push
        /// fixpoint: the same `(node, job)` placement stream (grants in
        /// place of dispatches), the same job→node map, and the same
        /// pending queue. This is the marketplace's safety argument
        /// (DESIGN.md §3c): offers only mask nodes out of the selector,
        /// so a fully-offered fleet degenerates to push.
        #[test]
        fn prop_pull_reaches_push_fixpoint_when_all_nodes_offer(
            nodes in 1usize..6,
            jobs in proptest::collection::vec(1u64..20, 1..25),
        ) {
            let mk = |mode: PlacementMode| {
                let cfg = CoordinatorConfig {
                    placement_mode: mode,
                    // Long heartbeat period: nothing dies mid-trace.
                    heartbeat_period: SimDuration::from_secs(10_000),
                    ..CoordinatorConfig::default()
                };
                Coordinator::new(cfg, 1)
            };
            let mut push = mk(PlacementMode::Push);
            let mut pull = mk(PlacementMode::Pull);
            let mut uids = Vec::new();
            for i in 0..nodes {
                let a = register(&mut push, t(1), &format!("m-{i}"));
                let b = register(&mut pull, t(1), &format!("m-{i}"));
                proptest::prop_assert_eq!(a, b);
                uids.push(a);
            }
            for &n in &uids {
                heartbeat(&mut push, t(2), n, 1);
                heartbeat(&mut pull, t(2), n, 1);
                offer_all(&mut pull, t(2), n);
            }
            let mut ids = Vec::new();
            for (i, &mem_gb) in jobs.iter().enumerate() {
                let d = DispatchSpec { gpu_mem_bytes: mem_gb << 30, ..spec() };
                let at = t(3 + i as u64 % 2);
                let (ja, _) = submit(&mut push, at, d.clone());
                let (jb, _) = submit(&mut pull, at, d);
                proptest::prop_assert_eq!(ja, jb);
                ids.push(ja);
            }
            // Settle both worlds in lockstep rounds: drain wakes, compare
            // the normalized placement streams, accept every offer.
            let mut now = 6u64;
            for _round in 0..200 {
                let pa = all_placements(&drive(&mut push, t(now)));
                let pb = all_placements(&drive(&mut pull, t(now)));
                proptest::prop_assert_eq!(&pa, &pb, "placement streams diverged");
                if pa.is_empty() {
                    break;
                }
                now += 1;
                for &(_, job) in &pa {
                    let reply = || Work::DispatchReply {
                        job,
                        accepted: true,
                        reason: String::new(),
                    };
                    msg(&mut push, t(now), reply().into());
                    msg(&mut pull, t(now), reply().into());
                }
                now += 1;
            }
            proptest::prop_assert_eq!(push.stats().live_jobs, pull.stats().live_jobs);
            for &job in &ids {
                proptest::prop_assert_eq!(push.job_node(job), pull.job_node(job));
            }
            proptest::prop_assert_eq!(
                push.db().pending_in_order(),
                pull.db().pending_in_order()
            );
        }
    }
}
