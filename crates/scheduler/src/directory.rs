//! The coordinator's view of every registered node.
//!
//! Built from registration inventories and refreshed by heartbeats, the
//! directory answers the placement questions ("which nodes could run this
//! job right now?") and tracks per-provider reliability — the paper's
//! "provider reliability predictions and degradation mechanisms".

use gpunion_des::{SimDuration, SimTime};
use gpunion_protocol::{GpuInfo, GpuStat, JobId, NodeUid};
use std::collections::HashMap;

/// Liveness as seen from the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeLiveness {
    /// Heartbeating, accepting new work.
    Active,
    /// Heartbeating but the provider paused allocations.
    Paused,
    /// Graceful departure announced; draining.
    Departing,
    /// Heartbeats lost or departure completed.
    Offline,
}

/// Per-provider reliability statistics (EWMA of interruption rate).
#[derive(Debug, Clone)]
pub struct Reliability {
    /// Exponentially-weighted interruptions per day.
    pub ewma_per_day: f64,
    /// Total interruptions observed.
    pub interruptions: u64,
    /// When the node first registered (for rate normalization).
    pub first_seen: SimTime,
}

impl Reliability {
    const ALPHA: f64 = 0.3;

    fn new(now: SimTime) -> Self {
        Reliability {
            ewma_per_day: 0.0,
            interruptions: 0,
            first_seen: now,
        }
    }

    /// Record one interruption at `now`.
    pub fn record_interruption(&mut self, now: SimTime) {
        self.interruptions += 1;
        let days = now.since(self.first_seen).as_secs_f64() / 86_400.0;
        let observed_rate = if days > 0.01 {
            self.interruptions as f64 / days
        } else {
            1.0
        };
        self.ewma_per_day = Self::ALPHA * observed_rate + (1.0 - Self::ALPHA) * self.ewma_per_day;
    }

    /// Score in (0, 1]: 1 = never interrupts.
    pub fn score(&self) -> f64 {
        1.0 / (1.0 + self.ewma_per_day)
    }
}

/// One GPU slot as the directory models it: capacity plus reservations.
#[derive(Debug, Clone)]
struct GpuSlot {
    info: GpuInfo,
    /// Free bytes according to the last heartbeat.
    reported_free: u64,
    /// Bytes reserved by in-flight offers/allocations not yet visible in
    /// heartbeats.
    reserved: u64,
}

impl GpuSlot {
    fn effective_free(&self) -> u64 {
        self.reported_free.saturating_sub(self.reserved)
    }
}

/// Directory entry for one node.
#[derive(Debug, Clone)]
pub struct NodeEntry {
    /// Node uid.
    pub uid: NodeUid,
    /// The machine identifier (stable across re-registrations).
    pub machine_id: String,
    /// Hostname.
    pub hostname: String,
    /// Liveness.
    pub liveness: NodeLiveness,
    /// Last heartbeat receive time.
    pub last_heartbeat: SimTime,
    /// Last heartbeat sequence.
    pub last_seq: u64,
    /// Reliability statistics.
    pub reliability: Reliability,
    slots: Vec<GpuSlot>,
    /// Reservations per job: (gpu count, bytes per gpu).
    reservations: HashMap<JobId, (u8, u64)>,
}

impl NodeEntry {
    /// New entry at registration time.
    pub fn new(
        uid: NodeUid,
        machine_id: String,
        hostname: String,
        gpus: Vec<GpuInfo>,
        now: SimTime,
    ) -> Self {
        let slots = gpus
            .into_iter()
            .map(|info| GpuSlot {
                reported_free: info.vram_bytes,
                reserved: 0,
                info,
            })
            .collect();
        NodeEntry {
            uid,
            machine_id,
            hostname,
            liveness: NodeLiveness::Active,
            last_heartbeat: now,
            last_seq: 0,
            reliability: Reliability::new(now),
            slots,
            reservations: HashMap::new(),
        }
    }

    /// GPU count.
    pub fn gpu_count(&self) -> usize {
        self.slots.len()
    }

    /// Apply a heartbeat's telemetry.
    pub fn apply_heartbeat(&mut self, now: SimTime, seq: u64, accepting: bool, stats: &[GpuStat]) {
        self.last_heartbeat = now;
        self.last_seq = seq;
        if self.liveness != NodeLiveness::Departing {
            self.liveness = if accepting {
                NodeLiveness::Active
            } else {
                NodeLiveness::Paused
            };
        }
        for (slot, stat) in self.slots.iter_mut().zip(stats) {
            slot.reported_free = stat.memory_total.saturating_sub(stat.memory_used);
        }
    }

    /// How many GPUs could take a job needing `mem` bytes and `min_cc`?
    pub fn eligible_gpus(&self, mem: u64, min_cc: Option<(u8, u8)>) -> usize {
        self.slots
            .iter()
            .filter(|s| {
                s.effective_free() >= mem
                    && min_cc
                        .is_none_or(|(maj, min)| (s.info.cc_major, s.info.cc_minor) >= (maj, min))
            })
            .count()
    }

    /// Total effective free VRAM (for load-based ranking).
    pub fn total_free(&self) -> u64 {
        self.slots.iter().map(|s| s.effective_free()).sum()
    }

    /// Fastest eligible device's TFLOPS (speed-aware ranking).
    pub fn best_tflops(&self) -> f64 {
        self.slots
            .iter()
            .map(|s| s.info.fp32_tflops)
            .fold(0.0, f64::max)
    }

    /// Reserve capacity for an in-flight offer.
    pub fn reserve(&mut self, job: JobId, gpus: u8, mem: u64) {
        self.reservations.insert(job, (gpus, mem));
        let mut left = gpus;
        for slot in &mut self.slots {
            if left == 0 {
                break;
            }
            if slot.effective_free() >= mem {
                slot.reserved += mem;
                left -= 1;
            }
        }
    }

    /// Release a reservation (offer rejected, job finished, node lost).
    pub fn release(&mut self, job: JobId) {
        if let Some((gpus, mem)) = self.reservations.remove(&job) {
            let mut left = gpus;
            for slot in &mut self.slots {
                if left == 0 {
                    break;
                }
                if slot.reserved >= mem {
                    slot.reserved -= mem;
                    left -= 1;
                }
            }
        }
    }

    /// Jobs with live reservations on this node.
    pub fn reserved_jobs(&self) -> Vec<JobId> {
        self.reservations.keys().copied().collect()
    }
}

/// The whole directory.
#[derive(Debug, Default)]
pub struct Directory {
    nodes: HashMap<NodeUid, NodeEntry>,
    by_machine: HashMap<String, NodeUid>,
    next_uid: u64,
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or re-register) a machine. A known machine id keeps its
    /// uid — the paper's migrate-back depends on recognizing returners.
    /// Returns `(uid, is_returning)`.
    pub fn register(
        &mut self,
        machine_id: &str,
        hostname: &str,
        gpus: Vec<GpuInfo>,
        now: SimTime,
    ) -> (NodeUid, bool) {
        if let Some(&uid) = self.by_machine.get(machine_id) {
            // Returning provider: refresh inventory, preserve reliability.
            let reliability = self
                .nodes
                .get(&uid)
                .map(|e| e.reliability.clone())
                .unwrap_or(Reliability::new(now));
            let mut entry =
                NodeEntry::new(uid, machine_id.to_string(), hostname.to_string(), gpus, now);
            entry.reliability = reliability;
            self.nodes.insert(uid, entry);
            return (uid, true);
        }
        let uid = NodeUid(self.next_uid);
        self.next_uid += 1;
        self.by_machine.insert(machine_id.to_string(), uid);
        self.nodes.insert(
            uid,
            NodeEntry::new(uid, machine_id.to_string(), hostname.to_string(), gpus, now),
        );
        (uid, false)
    }

    /// Entry by uid.
    pub fn get(&self, uid: NodeUid) -> Option<&NodeEntry> {
        self.nodes.get(&uid)
    }

    /// Mutable entry by uid.
    pub fn get_mut(&mut self, uid: NodeUid) -> Option<&mut NodeEntry> {
        self.nodes.get_mut(&uid)
    }

    /// All entries.
    pub fn iter(&self) -> impl Iterator<Item = &NodeEntry> {
        self.nodes.values()
    }

    /// Mutable iteration.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut NodeEntry> {
        self.nodes.values_mut()
    }

    /// Registered node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the directory empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nodes whose last heartbeat is older than `timeout`, among live ones.
    pub fn stale_nodes(&self, now: SimTime, timeout: SimDuration) -> Vec<NodeUid> {
        self.nodes
            .values()
            .filter(|e| {
                !matches!(e.liveness, NodeLiveness::Offline)
                    && now.since(e.last_heartbeat) > timeout
            })
            .map(|e| e.uid)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpunion_gpu::GpuModel;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn gpus(n: usize, model: GpuModel) -> Vec<GpuInfo> {
        (0..n).map(|_| model.into()).collect()
    }

    #[test]
    fn register_assigns_and_reuses_uids() {
        let mut d = Directory::new();
        let (a, ret) = d.register("m-1", "ws-1", gpus(1, GpuModel::Rtx3090), t(0));
        assert!(!ret);
        let (b, _) = d.register("m-2", "ws-2", gpus(1, GpuModel::Rtx3090), t(0));
        assert_ne!(a, b);
        // Same machine returns: same uid, flagged as returning.
        let (a2, ret) = d.register("m-1", "ws-1", gpus(1, GpuModel::Rtx3090), t(100));
        assert_eq!(a, a2);
        assert!(ret);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn returning_node_keeps_reliability_history() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "ws-1", gpus(1, GpuModel::Rtx3090), t(0));
        d.get_mut(uid)
            .unwrap()
            .reliability
            .record_interruption(t(3600));
        let before = d.get(uid).unwrap().reliability.interruptions;
        let (_, ret) = d.register("m-1", "ws-1", gpus(1, GpuModel::Rtx3090), t(7200));
        assert!(ret);
        assert_eq!(d.get(uid).unwrap().reliability.interruptions, before);
    }

    #[test]
    fn heartbeat_updates_free_memory() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "x", gpus(2, GpuModel::Rtx3090), t(0));
        let stats = vec![
            GpuStat {
                memory_used: 20 << 30,
                memory_total: 24 << 30,
                utilization: 0.9,
                temperature_c: 70.0,
                power_w: 300.0,
            },
            GpuStat {
                memory_used: 0,
                memory_total: 24 << 30,
                utilization: 0.0,
                temperature_c: 30.0,
                power_w: 25.0,
            },
        ];
        d.get_mut(uid)
            .unwrap()
            .apply_heartbeat(t(5), 1, true, &stats);
        let e = d.get(uid).unwrap();
        assert_eq!(e.eligible_gpus(8 << 30, None), 1);
        assert_eq!(e.eligible_gpus(1 << 30, None), 2);
    }

    #[test]
    fn cc_constraint_filters() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "x", gpus(1, GpuModel::A100_40), t(0));
        let e = d.get(uid).unwrap();
        assert_eq!(e.eligible_gpus(1, Some((8, 0))), 1);
        assert_eq!(e.eligible_gpus(1, Some((8, 6))), 0, "A100 is CC 8.0");
    }

    #[test]
    fn reservations_reduce_capacity_and_release() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "x", gpus(1, GpuModel::Rtx3090), t(0));
        let e = d.get_mut(uid).unwrap();
        e.reserve(JobId(1), 1, 20 << 30);
        assert_eq!(e.eligible_gpus(10 << 30, None), 0);
        e.release(JobId(1));
        assert_eq!(e.eligible_gpus(10 << 30, None), 1);
        // Double release is harmless.
        e.release(JobId(1));
        assert_eq!(e.eligible_gpus(10 << 30, None), 1);
    }

    #[test]
    fn stale_detection() {
        let mut d = Directory::new();
        let (a, _) = d.register("m-1", "x", gpus(1, GpuModel::Rtx3090), t(0));
        let (b, _) = d.register("m-2", "y", gpus(1, GpuModel::Rtx3090), t(0));
        d.get_mut(a).unwrap().apply_heartbeat(t(100), 1, true, &[]);
        // b never heartbeats after registration at t=0; a is 12 s fresh.
        let stale = d.stale_nodes(t(112), SimDuration::from_secs(15));
        assert_eq!(stale, vec![b]);
    }

    #[test]
    fn reliability_score_decays_with_interruptions() {
        let mut r = Reliability::new(t(0));
        assert_eq!(r.score(), 1.0);
        r.record_interruption(t(86_400)); // 1/day
        let s1 = r.score();
        r.record_interruption(t(86_400 + 3_600));
        let s2 = r.score();
        assert!(s1 < 1.0);
        assert!(s2 < s1);
    }
}
