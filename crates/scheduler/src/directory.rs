//! The coordinator's view of every registered node, behind an incrementally
//! maintained capacity index.
//!
//! Built from registration inventories and refreshed by heartbeats, the
//! directory answers the placement questions ("which nodes could run this
//! job right now?") and tracks per-provider reliability — the paper's
//! "provider reliability predictions and degradation mechanisms".
//!
//! Placement never rescans the world: every mutation (registration,
//! heartbeat, reservation, release, liveness change) updates a
//! [`CapacityIndex`] in place, and [`Directory::candidates`] answers
//! eligibility queries from that index. The index prunes by free-VRAM
//! bucket / compute capability / GPU speed tier and verifies each surviving
//! node exactly, so its answers are identical to a brute-force scan
//! (property-tested below) at a fraction of the cost.

use gpunion_des::{SimDuration, SimTime};
use gpunion_protocol::{DispatchSpec, GpuInfo, GpuStat, JobId, NodeUid};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Liveness as seen from the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeLiveness {
    /// Heartbeating, accepting new work.
    Active,
    /// Heartbeating but the provider paused allocations.
    Paused,
    /// Graceful departure announced; draining.
    Departing,
    /// Heartbeats lost or departure completed.
    Offline,
}

/// Per-provider reliability statistics (EWMA of interruption rate).
#[derive(Debug, Clone)]
pub struct Reliability {
    /// Exponentially-weighted interruptions per day.
    pub ewma_per_day: f64,
    /// Total interruptions observed.
    pub interruptions: u64,
    /// When the node first registered (for rate normalization).
    pub first_seen: SimTime,
}

impl Reliability {
    const ALPHA: f64 = 0.3;

    fn new(now: SimTime) -> Self {
        Reliability {
            ewma_per_day: 0.0,
            interruptions: 0,
            first_seen: now,
        }
    }

    /// Record one interruption at `now`.
    pub fn record_interruption(&mut self, now: SimTime) {
        self.interruptions += 1;
        let days = now.since(self.first_seen).as_secs_f64() / 86_400.0;
        let observed_rate = if days > 0.01 {
            self.interruptions as f64 / days
        } else {
            1.0
        };
        self.ewma_per_day = Self::ALPHA * observed_rate + (1.0 - Self::ALPHA) * self.ewma_per_day;
    }

    /// Score in (0, 1]: 1 = never interrupts.
    pub fn score(&self) -> f64 {
        1.0 / (1.0 + self.ewma_per_day)
    }
}

/// One GPU slot as the directory models it: capacity plus reservations.
#[derive(Debug, Clone)]
struct GpuSlot {
    info: GpuInfo,
    /// Free bytes according to the last heartbeat.
    reported_free: u64,
    /// Bytes reserved by in-flight offers/allocations not yet visible in
    /// heartbeats.
    reserved: u64,
}

impl GpuSlot {
    fn effective_free(&self) -> u64 {
        self.reported_free.saturating_sub(self.reserved)
    }
}

/// Directory entry for one node.
#[derive(Debug, Clone)]
pub struct NodeEntry {
    /// Node uid.
    pub uid: NodeUid,
    /// The machine identifier (stable across re-registrations).
    pub machine_id: String,
    /// Hostname.
    pub hostname: String,
    /// Liveness. Mutations go through [`Directory::set_liveness`] so the
    /// capacity index stays consistent.
    liveness: NodeLiveness,
    /// Last heartbeat receive time.
    pub last_heartbeat: SimTime,
    /// Last heartbeat sequence.
    pub last_seq: u64,
    /// Reliability statistics.
    pub reliability: Reliability,
    slots: Vec<GpuSlot>,
    /// Reservations per job: bytes per GPU plus the exact slot indices
    /// debited, so release undoes precisely what reserve did even when a
    /// reservation could only be partially satisfied.
    reservations: HashMap<JobId, (u64, Vec<usize>)>,
}

impl NodeEntry {
    /// New entry at registration time.
    fn new(
        uid: NodeUid,
        machine_id: String,
        hostname: String,
        gpus: Vec<GpuInfo>,
        now: SimTime,
    ) -> Self {
        let slots = gpus
            .into_iter()
            .map(|info| GpuSlot {
                reported_free: info.vram_bytes,
                reserved: 0,
                info,
            })
            .collect();
        NodeEntry {
            uid,
            machine_id,
            hostname,
            liveness: NodeLiveness::Active,
            last_heartbeat: now,
            last_seq: 0,
            reliability: Reliability::new(now),
            slots,
            reservations: HashMap::new(),
        }
    }

    /// Current liveness.
    pub fn liveness(&self) -> NodeLiveness {
        self.liveness
    }

    /// GPU count.
    pub fn gpu_count(&self) -> usize {
        self.slots.len()
    }

    fn apply_heartbeat(&mut self, now: SimTime, seq: u64, accepting: bool, stats: &[GpuStat]) {
        self.last_heartbeat = now;
        self.last_seq = seq;
        if self.liveness != NodeLiveness::Departing {
            self.liveness = if accepting {
                NodeLiveness::Active
            } else {
                NodeLiveness::Paused
            };
        }
        for (slot, stat) in self.slots.iter_mut().zip(stats) {
            slot.reported_free = stat.memory_total.saturating_sub(stat.memory_used);
        }
    }

    /// How many GPUs could take a job needing `mem` bytes and `min_cc`?
    pub fn eligible_gpus(&self, mem: u64, min_cc: Option<(u8, u8)>) -> usize {
        self.slots
            .iter()
            .filter(|s| {
                s.effective_free() >= mem
                    && min_cc
                        .is_none_or(|(maj, min)| (s.info.cc_major, s.info.cc_minor) >= (maj, min))
            })
            .count()
    }

    /// Can this node host `spec` right now (liveness aside)?
    pub fn eligible_for(&self, spec: &DispatchSpec) -> bool {
        self.eligible_gpus(spec.gpu_mem_bytes, spec.min_cc) >= spec.gpus as usize
    }

    /// Like [`Self::eligible_for`], but counting capacity reserved by
    /// `holder` itself as free — a job's own held home slot must satisfy
    /// that job's eligibility check without mutating any state. The credit
    /// is applied to the slot's *reserved* bytes (what releasing the hold
    /// would actually restore), so a slot whose reported free VRAM shrank
    /// underneath the hold is not over-counted.
    pub fn eligible_for_holder(&self, spec: &DispatchSpec, holder: JobId) -> bool {
        let own = self.reservations.get(&holder);
        let eligible = self
            .slots
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                let credit = match own {
                    Some((mem, taken)) if taken.contains(i) => *mem,
                    _ => 0,
                };
                let avail = s.reported_free.saturating_sub(s.reserved - credit);
                avail >= spec.gpu_mem_bytes
                    && spec
                        .min_cc
                        .is_none_or(|(maj, min)| (s.info.cc_major, s.info.cc_minor) >= (maj, min))
            })
            .count();
        eligible >= spec.gpus as usize
    }

    /// Total effective free VRAM (for load-based ranking).
    pub fn total_free(&self) -> u64 {
        self.slots.iter().map(|s| s.effective_free()).sum()
    }

    /// Largest single-slot effective free VRAM (the index bucket input).
    pub fn max_slot_free(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.effective_free())
            .max()
            .unwrap_or(0)
    }

    /// Fastest eligible device's TFLOPS (speed-aware ranking).
    pub fn best_tflops(&self) -> f64 {
        self.slots
            .iter()
            .map(|s| s.info.fp32_tflops)
            .fold(0.0, f64::max)
    }

    /// Highest compute capability present on the node.
    fn max_cc(&self) -> (u8, u8) {
        self.slots
            .iter()
            .map(|s| (s.info.cc_major, s.info.cc_minor))
            .max()
            .unwrap_or((0, 0))
    }

    /// Reserve `gpus` slots of `mem` bytes on slots meeting `min_cc` (the
    /// same per-slot criterion `eligible_gpus` counts, so a reservation
    /// paired with an eligibility check debits slots the job can actually
    /// use). Idempotent per job (a stale reservation is dropped first, so
    /// repeated migrate-back holds can't double-count). Records exactly
    /// which slots were debited; returns false when fewer than `gpus`
    /// qualifying slots had room — the partial debit is still tracked, so
    /// release stays exact.
    fn reserve(&mut self, job: JobId, gpus: u8, mem: u64, min_cc: Option<(u8, u8)>) -> bool {
        self.release(job);
        let mut taken = Vec::with_capacity(gpus as usize);
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if taken.len() == gpus as usize {
                break;
            }
            let cc_ok = min_cc
                .is_none_or(|(maj, min)| (slot.info.cc_major, slot.info.cc_minor) >= (maj, min));
            if cc_ok && slot.effective_free() >= mem {
                slot.reserved += mem;
                taken.push(i);
            }
        }
        let complete = taken.len() == gpus as usize;
        self.reservations.insert(job, (mem, taken));
        complete
    }

    /// Undo a reservation: credits back exactly the slots reserve debited,
    /// so one job's release can never strip bytes from another's.
    fn release(&mut self, job: JobId) {
        if let Some((mem, taken)) = self.reservations.remove(&job) {
            for i in taken {
                if let Some(slot) = self.slots.get_mut(i) {
                    slot.reserved = slot.reserved.saturating_sub(mem);
                }
            }
        }
    }

    /// Jobs with live reservations on this node.
    pub fn reserved_jobs(&self) -> Vec<JobId> {
        self.reservations.keys().copied().collect()
    }

    /// Does `job` hold a reservation here?
    pub fn has_reservation(&self, job: JobId) -> bool {
        self.reservations.contains_key(&job)
    }
}

/// Free-VRAM bucket: floor(log2(bytes)), so bucket `b` holds nodes whose
/// largest free slot is in `[2^b, 2^(b+1))`. A job needing `mem` bytes can
/// only be served from buckets `>= bucket_of(mem)`.
fn vram_bucket(bytes: u64) -> u8 {
    if bytes == 0 {
        0
    } else {
        (63 - bytes.leading_zeros()) as u8
    }
}

/// GPU speed tier from peak FP32 TFLOPS. Monotone in TFLOPS, so tier order
/// agrees with speed order across tiers; ties inside a tier are resolved by
/// the exact value at ranking time.
fn speed_tier(tflops: f64) -> u8 {
    if tflops < 25.0 {
        0
    } else if tflops < 50.0 {
        1
    } else if tflops < 100.0 {
        2
    } else {
        3
    }
}

/// Index class of a node: (free-VRAM bucket, compute capability, speed tier).
///
/// Ordered by bucket first so `candidates` can range-scan "every class with
/// at least this much free per-slot VRAM". The tier keeps same-speed-class
/// nodes co-located for tier-constrained queries; it is static per node
/// (TFLOPS come from the registration inventory), so it never causes
/// reclassification churn — only `bucket` moves as capacity changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ClassKey {
    bucket: u8,
    cc: (u8, u8),
    tier: u8,
}

/// Where one node currently sits in the index (for in-place updates).
#[derive(Debug, Clone, Copy)]
struct IndexedAt {
    class: ClassKey,
    total_free: u64,
    speed_bits: u64,
    heartbeat: SimTime,
}

/// The incremental capacity index.
///
/// Maintains four ordered views over the *schedulable* (Active) nodes —
/// by capacity class for eligibility pruning, by total free VRAM for
/// least-loaded picks, by device speed for fastest-device picks, and by uid
/// for round-robin — plus a heartbeat-recency view over all non-offline
/// nodes for staleness sweeps. Every [`Directory`] mutation repositions the
/// affected node in O(log n).
#[derive(Debug, Default)]
pub struct CapacityIndex {
    /// (bucket, cc, tier) → members.
    by_class: BTreeMap<ClassKey, BTreeSet<NodeUid>>,
    /// (total effective free, uid): iterate in reverse for least-loaded.
    /// `Reverse<NodeUid>` makes the reverse iteration tie-break on low uid.
    by_free: BTreeSet<(u64, Reverse<NodeUid>)>,
    /// (tflops bits, uid): iterate in reverse for fastest-device.
    by_speed: BTreeSet<(u64, Reverse<NodeUid>)>,
    /// Active nodes by uid (round-robin cursor scans).
    by_uid: BTreeSet<NodeUid>,
    /// (last heartbeat, uid) over non-offline nodes (staleness sweeps).
    by_heartbeat: BTreeSet<(SimTime, NodeUid)>,
    /// Current position of every tracked node.
    entries: HashMap<NodeUid, IndexedAt>,
    /// Nodes tracked only for heartbeat staleness (Paused/Departing).
    unscheduled: HashMap<NodeUid, SimTime>,
}

impl CapacityIndex {
    fn summarize(entry: &NodeEntry) -> IndexedAt {
        IndexedAt {
            class: ClassKey {
                bucket: vram_bucket(entry.max_slot_free()),
                cc: entry.max_cc(),
                tier: speed_tier(entry.best_tflops()),
            },
            total_free: entry.total_free(),
            speed_bits: entry.best_tflops().to_bits(),
            heartbeat: entry.last_heartbeat,
        }
    }

    fn remove_scheduled(&mut self, uid: NodeUid) {
        if let Some(at) = self.entries.remove(&uid) {
            if let Some(set) = self.by_class.get_mut(&at.class) {
                set.remove(&uid);
                if set.is_empty() {
                    self.by_class.remove(&at.class);
                }
            }
            self.by_free.remove(&(at.total_free, Reverse(uid)));
            self.by_speed.remove(&(at.speed_bits, Reverse(uid)));
            self.by_uid.remove(&uid);
            self.by_heartbeat.remove(&(at.heartbeat, uid));
        }
    }

    fn remove_unscheduled(&mut self, uid: NodeUid) {
        if let Some(hb) = self.unscheduled.remove(&uid) {
            self.by_heartbeat.remove(&(hb, uid));
        }
    }

    /// Reposition only the capacity-derived views (class bucket, total
    /// free) after a reservation change. Heartbeat recency, speed, and uid
    /// views are untouched — this is the scheduling pass's per-placement
    /// index update.
    fn update_capacity(&mut self, entry: &NodeEntry) {
        let uid = entry.uid;
        let Some(at) = self.entries.get(&uid).copied() else {
            // Not schedulable (non-Active): capacity views don't track it.
            return;
        };
        let class = ClassKey {
            bucket: vram_bucket(entry.max_slot_free()),
            ..at.class
        };
        let total_free = entry.total_free();
        if class != at.class {
            if let Some(set) = self.by_class.get_mut(&at.class) {
                set.remove(&uid);
                if set.is_empty() {
                    self.by_class.remove(&at.class);
                }
            }
            self.by_class.entry(class).or_default().insert(uid);
        }
        if total_free != at.total_free {
            self.by_free.remove(&(at.total_free, Reverse(uid)));
            self.by_free.insert((total_free, Reverse(uid)));
        }
        let at = self.entries.get_mut(&uid).expect("present above");
        at.class = class;
        at.total_free = total_free;
    }

    /// Re-derive a node's index position from its current entry state.
    fn refresh(&mut self, entry: &NodeEntry) {
        let uid = entry.uid;
        self.remove_scheduled(uid);
        self.remove_unscheduled(uid);
        match entry.liveness {
            NodeLiveness::Active => {
                let at = Self::summarize(entry);
                self.by_class.entry(at.class).or_default().insert(uid);
                self.by_free.insert((at.total_free, Reverse(uid)));
                self.by_speed.insert((at.speed_bits, Reverse(uid)));
                self.by_uid.insert(uid);
                self.by_heartbeat.insert((at.heartbeat, uid));
                self.entries.insert(uid, at);
            }
            NodeLiveness::Paused | NodeLiveness::Departing => {
                self.by_heartbeat.insert((entry.last_heartbeat, uid));
                self.unscheduled.insert(uid, entry.last_heartbeat);
            }
            NodeLiveness::Offline => {}
        }
    }

    /// Schedulable (Active) node count.
    pub fn schedulable(&self) -> usize {
        self.by_uid.len()
    }

    /// Uids of classes that could serve a slot of `mem` bytes at `min_cc`,
    /// largest-free classes first. Superset of the exact answer; callers
    /// verify per node.
    fn class_candidates<'a>(
        &'a self,
        mem: u64,
        min_cc: Option<(u8, u8)>,
    ) -> impl Iterator<Item = NodeUid> + 'a {
        let floor = ClassKey {
            bucket: vram_bucket(mem),
            cc: (0, 0),
            tier: 0,
        };
        self.by_class
            .range(floor..)
            .rev()
            .filter(move |(k, _)| min_cc.is_none_or(|cc| k.cc >= cc))
            .flat_map(|(_, set)| set.iter().copied())
    }

    pub(crate) fn by_free_desc(&self) -> impl Iterator<Item = NodeUid> + '_ {
        self.by_free.iter().rev().map(|(_, Reverse(uid))| *uid)
    }

    pub(crate) fn by_speed_desc(&self) -> impl Iterator<Item = NodeUid> + '_ {
        self.by_speed.iter().rev().map(|(_, Reverse(uid))| *uid)
    }

    /// Active uids starting at `cursor`, wrapping around once.
    pub(crate) fn round_robin_from(&self, cursor: NodeUid) -> impl Iterator<Item = NodeUid> + '_ {
        self.by_uid
            .range(cursor..)
            .chain(self.by_uid.range(..cursor))
            .copied()
    }
}

/// The whole directory.
#[derive(Debug, Default)]
pub struct Directory {
    /// Ordered by uid so full iteration is deterministic.
    nodes: BTreeMap<NodeUid, NodeEntry>,
    by_machine: HashMap<String, NodeUid>,
    next_uid: u64,
    index: CapacityIndex,
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or re-register) a machine. A known machine id keeps its
    /// uid — the paper's migrate-back depends on recognizing returners.
    /// Returns `(uid, is_returning)`.
    pub fn register(
        &mut self,
        machine_id: &str,
        hostname: &str,
        gpus: Vec<GpuInfo>,
        now: SimTime,
    ) -> (NodeUid, bool) {
        if let Some(&uid) = self.by_machine.get(machine_id) {
            // Returning provider: refresh inventory, preserve reliability.
            let reliability = self
                .nodes
                .get(&uid)
                .map(|e| e.reliability.clone())
                .unwrap_or(Reliability::new(now));
            let mut entry =
                NodeEntry::new(uid, machine_id.to_string(), hostname.to_string(), gpus, now);
            entry.reliability = reliability;
            self.index.refresh(&entry);
            self.nodes.insert(uid, entry);
            return (uid, true);
        }
        let uid = NodeUid(self.next_uid);
        self.next_uid += 1;
        self.by_machine.insert(machine_id.to_string(), uid);
        let entry = NodeEntry::new(uid, machine_id.to_string(), hostname.to_string(), gpus, now);
        self.index.refresh(&entry);
        self.nodes.insert(uid, entry);
        (uid, false)
    }

    /// Entry by uid.
    pub fn get(&self, uid: NodeUid) -> Option<&NodeEntry> {
        self.nodes.get(&uid)
    }

    /// Apply a heartbeat's telemetry. Returns false for unknown nodes.
    pub fn apply_heartbeat(
        &mut self,
        uid: NodeUid,
        now: SimTime,
        seq: u64,
        accepting: bool,
        stats: &[GpuStat],
    ) -> bool {
        let Some(e) = self.nodes.get_mut(&uid) else {
            return false;
        };
        e.apply_heartbeat(now, seq, accepting, stats);
        self.index.refresh(e);
        true
    }

    /// Reserve capacity on a node for an in-flight offer (idempotent per
    /// job — re-reserving replaces the old reservation). Returns false if
    /// the node is unknown or could not cover all `gpus` slots (callers
    /// should release or avoid relying on a partial hold).
    pub fn reserve(
        &mut self,
        uid: NodeUid,
        job: JobId,
        gpus: u8,
        mem: u64,
        min_cc: Option<(u8, u8)>,
    ) -> bool {
        if let Some(e) = self.nodes.get_mut(&uid) {
            let complete = e.reserve(job, gpus, mem, min_cc);
            self.index.update_capacity(e);
            complete
        } else {
            false
        }
    }

    /// Release a job's reservation (offer rejected, job finished, node
    /// lost). No-op when none exists.
    pub fn release(&mut self, uid: NodeUid, job: JobId) {
        if let Some(e) = self.nodes.get_mut(&uid) {
            e.release(job);
            self.index.update_capacity(e);
        }
    }

    /// Transition a node's liveness. Returns the previous liveness.
    pub fn set_liveness(&mut self, uid: NodeUid, liveness: NodeLiveness) -> Option<NodeLiveness> {
        let e = self.nodes.get_mut(&uid)?;
        let prev = e.liveness;
        e.liveness = liveness;
        self.index.refresh(e);
        Some(prev)
    }

    /// Record a provider interruption against a node's reliability stats.
    pub fn record_interruption(&mut self, uid: NodeUid, now: SimTime) {
        if let Some(e) = self.nodes.get_mut(&uid) {
            e.reliability.record_interruption(now);
        }
    }

    /// All entries, uid order.
    pub fn iter(&self) -> impl Iterator<Item = &NodeEntry> {
        self.nodes.values()
    }

    /// Registered node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the directory empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Schedulable (Active) node count, from the index.
    pub fn schedulable(&self) -> usize {
        self.index.schedulable()
    }

    /// The capacity index (strategy-internal fast paths).
    pub(crate) fn index(&self) -> &CapacityIndex {
        &self.index
    }

    /// Nodes eligible to host `spec` right now, from the index: pruned by
    /// (free-VRAM bucket, compute capability) class, then verified exactly.
    /// Agrees with a brute-force scan over all Active entries.
    pub fn candidates<'a>(
        &'a self,
        spec: &'a DispatchSpec,
    ) -> impl Iterator<Item = &'a NodeEntry> + 'a {
        self.index
            .class_candidates(spec.gpu_mem_bytes, spec.min_cc)
            .filter_map(move |uid| self.nodes.get(&uid))
            .filter(move |e| e.eligible_for(spec))
    }

    /// Is `uid` Active and able to host `spec`? (Preferred-node fast path.)
    pub fn is_candidate(&self, uid: NodeUid, spec: &DispatchSpec) -> bool {
        self.nodes
            .get(&uid)
            .map(|e| e.liveness == NodeLiveness::Active && e.eligible_for(spec))
            .unwrap_or(false)
    }

    /// [`Self::is_candidate`] for a job that may itself hold a reservation
    /// on `uid` (migrate-back home hold): the job's own held capacity
    /// counts as free, without mutating the directory.
    pub fn is_candidate_for_holder(&self, uid: NodeUid, spec: &DispatchSpec, job: JobId) -> bool {
        self.nodes
            .get(&uid)
            .map(|e| e.liveness == NodeLiveness::Active && e.eligible_for_holder(spec, job))
            .unwrap_or(false)
    }

    /// Nodes whose last heartbeat is older than `timeout`, among live ones.
    /// Range scan over the heartbeat-recency view — O(log n + stale).
    pub fn stale_nodes(&self, now: SimTime, timeout: SimDuration) -> Vec<NodeUid> {
        let Some(cutoff) = now.checked_sub(timeout) else {
            return Vec::new();
        };
        self.index
            .by_heartbeat
            .range(..(cutoff, NodeUid(u64::MAX)))
            .filter(|(at, _)| now.since(*at) > timeout)
            .map(|(_, uid)| *uid)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpunion_gpu::GpuModel;
    use gpunion_protocol::ExecMode;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn gpus(n: usize, model: GpuModel) -> Vec<GpuInfo> {
        (0..n).map(|_| model.into()).collect()
    }

    fn spec(mem: u64, gpus: u8, min_cc: Option<(u8, u8)>) -> DispatchSpec {
        DispatchSpec {
            job: JobId(1),
            image_repo: "r".into(),
            image_tag: "t".into(),
            image_digest: [0; 32],
            gpus,
            gpu_mem_bytes: mem,
            min_cc,
            mode: ExecMode::Batch {
                entrypoint: vec!["x".into()],
            },
            checkpoint_interval_secs: 600,
            storage_nodes: vec![],
            state_bytes_hint: 0,
            restore_from_seq: None,
            priority: 1,
        }
    }

    /// The ground truth `candidates` must match.
    fn brute_force(d: &Directory, s: &DispatchSpec) -> Vec<NodeUid> {
        let mut v: Vec<NodeUid> = d
            .iter()
            .filter(|e| e.liveness() == NodeLiveness::Active)
            .filter(|e| e.eligible_for(s))
            .map(|e| e.uid)
            .collect();
        v.sort();
        v
    }

    fn indexed(d: &Directory, s: &DispatchSpec) -> Vec<NodeUid> {
        let mut v: Vec<NodeUid> = d.candidates(s).map(|e| e.uid).collect();
        v.sort();
        v
    }

    #[test]
    fn register_assigns_and_reuses_uids() {
        let mut d = Directory::new();
        let (a, ret) = d.register("m-1", "ws-1", gpus(1, GpuModel::Rtx3090), t(0));
        assert!(!ret);
        let (b, _) = d.register("m-2", "ws-2", gpus(1, GpuModel::Rtx3090), t(0));
        assert_ne!(a, b);
        // Same machine returns: same uid, flagged as returning.
        let (a2, ret) = d.register("m-1", "ws-1", gpus(1, GpuModel::Rtx3090), t(100));
        assert_eq!(a, a2);
        assert!(ret);
        assert_eq!(d.len(), 2);
        assert_eq!(d.schedulable(), 2);
    }

    #[test]
    fn returning_node_keeps_reliability_history() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "ws-1", gpus(1, GpuModel::Rtx3090), t(0));
        d.record_interruption(uid, t(3600));
        let before = d.get(uid).unwrap().reliability.interruptions;
        let (_, ret) = d.register("m-1", "ws-1", gpus(1, GpuModel::Rtx3090), t(7200));
        assert!(ret);
        assert_eq!(d.get(uid).unwrap().reliability.interruptions, before);
    }

    #[test]
    fn heartbeat_updates_free_memory() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "x", gpus(2, GpuModel::Rtx3090), t(0));
        let stats = vec![
            GpuStat {
                memory_used: 20 << 30,
                memory_total: 24 << 30,
                utilization: 0.9,
                temperature_c: 70.0,
                power_w: 300.0,
            },
            GpuStat {
                memory_used: 0,
                memory_total: 24 << 30,
                utilization: 0.0,
                temperature_c: 30.0,
                power_w: 25.0,
            },
        ];
        assert!(d.apply_heartbeat(uid, t(5), 1, true, &stats));
        let e = d.get(uid).unwrap();
        assert_eq!(e.eligible_gpus(8 << 30, None), 1);
        assert_eq!(e.eligible_gpus(1 << 30, None), 2);
        assert!(!d.apply_heartbeat(NodeUid(99), t(5), 1, true, &stats));
    }

    #[test]
    fn cc_constraint_filters() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "x", gpus(1, GpuModel::A100_40), t(0));
        let e = d.get(uid).unwrap();
        assert_eq!(e.eligible_gpus(1, Some((8, 0))), 1);
        assert_eq!(e.eligible_gpus(1, Some((8, 6))), 0, "A100 is CC 8.0");
        // The index agrees on both queries.
        assert_eq!(indexed(&d, &spec(1, 1, Some((8, 0)))), vec![uid]);
        assert!(indexed(&d, &spec(1, 1, Some((8, 6)))).is_empty());
    }

    #[test]
    fn reservations_reduce_capacity_and_release() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "x", gpus(1, GpuModel::Rtx3090), t(0));
        d.reserve(uid, JobId(1), 1, 20 << 30, None);
        assert_eq!(d.get(uid).unwrap().eligible_gpus(10 << 30, None), 0);
        assert!(indexed(&d, &spec(10 << 30, 1, None)).is_empty());
        d.release(uid, JobId(1));
        assert_eq!(d.get(uid).unwrap().eligible_gpus(10 << 30, None), 1);
        assert_eq!(indexed(&d, &spec(10 << 30, 1, None)), vec![uid]);
        // Double release is harmless.
        d.release(uid, JobId(1));
        assert_eq!(d.get(uid).unwrap().eligible_gpus(10 << 30, None), 1);
    }

    #[test]
    fn partial_reservation_release_cannot_strip_a_sibling_hold() {
        // One 24 GB GPU; two 16 GB holds. The second can't be satisfied —
        // its release must not dismantle the first hold's reservation.
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "x", gpus(1, GpuModel::Rtx3090), t(0));
        assert!(
            d.reserve(uid, JobId(1), 1, 16 << 30, None),
            "first hold fits"
        );
        assert!(
            !d.reserve(uid, JobId(2), 1, 16 << 30, None),
            "second cannot"
        );
        d.release(uid, JobId(2));
        // Job 1's hold still stands: only 8 GB effectively free.
        assert_eq!(d.get(uid).unwrap().total_free(), 8 << 30);
        assert!(indexed(&d, &spec(16 << 30, 1, None)).is_empty());
        d.release(uid, JobId(1));
        assert_eq!(d.get(uid).unwrap().total_free(), 24 << 30);
    }

    #[test]
    fn re_reserving_a_job_is_idempotent() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "x", gpus(1, GpuModel::Rtx3090), t(0));
        d.reserve(uid, JobId(1), 1, 8 << 30, None);
        d.reserve(uid, JobId(1), 1, 8 << 30, None);
        // One release restores everything: no double-counted slot bytes.
        d.release(uid, JobId(1));
        assert_eq!(d.get(uid).unwrap().total_free(), 24 << 30);
    }

    #[test]
    fn stale_detection() {
        let mut d = Directory::new();
        let (a, _) = d.register("m-1", "x", gpus(1, GpuModel::Rtx3090), t(0));
        let (b, _) = d.register("m-2", "y", gpus(1, GpuModel::Rtx3090), t(0));
        d.apply_heartbeat(a, t(100), 1, true, &[]);
        // b never heartbeats after registration at t=0; a is 12 s fresh.
        let stale = d.stale_nodes(t(112), SimDuration::from_secs(15));
        assert_eq!(stale, vec![b]);
        // Early in the run nothing can be stale (no underflow).
        assert!(d.stale_nodes(t(5), SimDuration::from_secs(15)).is_empty());
        // Offline nodes leave the staleness view.
        d.set_liveness(b, NodeLiveness::Offline);
        assert!(d.stale_nodes(t(112), SimDuration::from_secs(15)).is_empty());
    }

    #[test]
    fn liveness_gates_candidacy() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "x", gpus(1, GpuModel::Rtx3090), t(0));
        let s = spec(1 << 30, 1, None);
        assert!(d.is_candidate(uid, &s));
        assert_eq!(
            d.set_liveness(uid, NodeLiveness::Paused),
            Some(NodeLiveness::Active)
        );
        assert!(!d.is_candidate(uid, &s));
        assert!(indexed(&d, &s).is_empty());
        assert_eq!(d.schedulable(), 0);
        d.set_liveness(uid, NodeLiveness::Active);
        assert_eq!(indexed(&d, &s), vec![uid]);
    }

    #[test]
    fn reliability_score_decays_with_interruptions() {
        let mut r = Reliability::new(t(0));
        assert_eq!(r.score(), 1.0);
        r.record_interruption(t(86_400)); // 1/day
        let s1 = r.score();
        r.record_interruption(t(86_400 + 3_600));
        let s2 = r.score();
        assert!(s1 < 1.0);
        assert!(s2 < s1);
    }

    #[test]
    fn candidates_match_brute_force_on_heterogeneous_fleet() {
        let mut d = Directory::new();
        let models = [
            GpuModel::Rtx3090,
            GpuModel::Rtx4090,
            GpuModel::A100_40,
            GpuModel::A100_80,
            GpuModel::A6000,
        ];
        for (i, m) in models.iter().cycle().take(25).enumerate() {
            d.register(
                &format!("m-{i}"),
                &format!("h-{i}"),
                gpus(1 + i % 3, *m),
                t(0),
            );
        }
        for mem_gb in [1u64, 8, 20, 30, 47, 60, 100] {
            for n_gpus in [1u8, 2, 3] {
                for cc in [None, Some((8, 0)), Some((8, 6)), Some((8, 9)), Some((9, 0))] {
                    let s = spec(mem_gb << 30, n_gpus, cc);
                    assert_eq!(
                        indexed(&d, &s),
                        brute_force(&d, &s),
                        "{mem_gb}GB×{n_gpus} {cc:?}"
                    );
                }
            }
        }
    }

    proptest::proptest! {
        /// `candidates` must agree with the brute-force full scan after any
        /// interleaving of registrations, heartbeats, reservations,
        /// releases, and liveness flips.
        #[test]
        fn prop_candidates_agree_with_full_scan(
            ops in proptest::collection::vec((0u8..6, 0u64..12, 0u64..48), 1..120),
            mem_gb in 0u64..80,
            want_gpus in 1u8..4,
            cc_minor in proptest::option::of(0u8..10),
        ) {
            let models = GpuModel::ALL;
            let mut d = Directory::new();
            for (op, a, b) in ops {
                match op {
                    0 => {
                        let m = models[(a % 5) as usize];
                        let n = 1 + (b % 4) as usize;
                        d.register(&format!("m-{}", a), "h", gpus(n, m), t(b));
                    }
                    1 => {
                        let stats: Vec<GpuStat> = (0..4)
                            .map(|i| GpuStat {
                                memory_used: (b.wrapping_mul(i + 1) % 48) << 30,
                                memory_total: 48 << 30,
                                utilization: 0.5,
                                temperature_c: 50.0,
                                power_w: 200.0,
                            })
                            .collect();
                        d.apply_heartbeat(NodeUid(a), t(b), b, b % 3 != 0, &stats);
                    }
                    2 => {
                        d.reserve(NodeUid(a), JobId(b), 1 + (b % 2) as u8, (b % 24) << 30, None);
                    }
                    3 => d.release(NodeUid(a), JobId(b)),
                    4 => {
                        let l = match b % 4 {
                            0 => NodeLiveness::Active,
                            1 => NodeLiveness::Paused,
                            2 => NodeLiveness::Departing,
                            _ => NodeLiveness::Offline,
                        };
                        d.set_liveness(NodeUid(a), l);
                    }
                    _ => d.record_interruption(NodeUid(a), t(b)),
                }
            }
            let s = spec(mem_gb << 30, want_gpus, cc_minor.map(|m| (8, m)));
            proptest::prop_assert_eq!(indexed(&d, &s), brute_force(&d, &s));
        }
    }
}
