//! One directory shard: an independent `{node map + CapacityIndex}` pair.
//!
//! A shard owns every node whose uid hashes to it and nothing else; all
//! of a node's state — entry, reservations, index position — lives in
//! exactly one shard, so a mutation touches one shard's structures and a
//! read of one node routes to one shard. Shards know nothing about each
//! other; composition (k-way-merged views, global counts) happens in
//! [`super::ShardedDirectory`].

use super::entry::{NodeEntry, NodeLiveness};
use super::index::CapacityIndex;
use gpunion_des::SimTime;
use gpunion_protocol::{GpuStat, JobId, NodeUid};
use std::collections::BTreeMap;

/// One shard: the nodes it owns plus their capacity index.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    /// Ordered by uid so per-shard iteration is deterministic (and
    /// merge-ready: the uid-keyed streams come straight off this map).
    pub(crate) nodes: BTreeMap<NodeUid, NodeEntry>,
    /// The shard's incremental index over those nodes.
    pub(crate) index: CapacityIndex,
}

impl Shard {
    /// Insert (or replace) an entry and index it.
    pub(crate) fn insert(&mut self, entry: NodeEntry) {
        self.index.refresh(&entry);
        self.nodes.insert(entry.uid, entry);
    }

    /// Apply a heartbeat's telemetry. Returns false for unknown nodes.
    pub(crate) fn apply_heartbeat(
        &mut self,
        uid: NodeUid,
        now: SimTime,
        seq: u64,
        accepting: bool,
        stats: &[GpuStat],
    ) -> bool {
        let Some(e) = self.nodes.get_mut(&uid) else {
            return false;
        };
        e.apply_heartbeat(now, seq, accepting, stats);
        self.index.refresh(e);
        true
    }

    /// Reserve capacity on a node (see
    /// [`super::ShardedDirectory::reserve`]).
    pub(crate) fn reserve(
        &mut self,
        uid: NodeUid,
        job: JobId,
        gpus: u8,
        mem: u64,
        min_cc: Option<(u8, u8)>,
    ) -> bool {
        if let Some(e) = self.nodes.get_mut(&uid) {
            let complete = e.reserve(job, gpus, mem, min_cc);
            self.index.update_capacity(e);
            complete
        } else {
            false
        }
    }

    /// Release a job's reservation. No-op when none exists.
    pub(crate) fn release(&mut self, uid: NodeUid, job: JobId) {
        if let Some(e) = self.nodes.get_mut(&uid) {
            e.release(job);
            self.index.update_capacity(e);
        }
    }

    /// Transition a node's liveness. Returns the previous liveness.
    pub(crate) fn set_liveness(
        &mut self,
        uid: NodeUid,
        liveness: NodeLiveness,
    ) -> Option<NodeLiveness> {
        let e = self.nodes.get_mut(&uid)?;
        let prev = e.liveness;
        e.liveness = liveness;
        self.index.refresh(e);
        Some(prev)
    }

    /// Record a provider interruption against a node's reliability stats.
    pub(crate) fn record_interruption(&mut self, uid: NodeUid, now: SimTime) {
        if let Some(e) = self.nodes.get_mut(&uid) {
            e.reliability.record_interruption(now);
        }
    }
}
