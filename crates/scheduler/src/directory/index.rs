//! The incremental capacity index over one shard's nodes.
//!
//! Every mutation of a shard repositions the affected node here in
//! O(log n). The index keeps *ordered* views so a sharded directory can
//! compose shards by k-way merge (see [`super::merge`]): each accessor
//! that feeds a merge yields `(key, value)` pairs in ascending key order,
//! with the key chosen so that merging per-shard streams reproduces the
//! unsharded iteration order bit-for-bit.

use super::entry::{NodeEntry, NodeLiveness};
use gpunion_des::SimTime;
use gpunion_protocol::NodeUid;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Free-VRAM bucket: floor(log2(bytes)), so bucket `b` holds nodes whose
/// largest free slot is in `[2^b, 2^(b+1))`. A job needing `mem` bytes can
/// only be served from buckets `>= bucket_of(mem)`.
pub(crate) fn vram_bucket(bytes: u64) -> u8 {
    if bytes == 0 {
        0
    } else {
        (63 - bytes.leading_zeros()) as u8
    }
}

/// GPU speed tier from peak FP32 TFLOPS. Monotone in TFLOPS, so tier order
/// agrees with speed order across tiers; ties inside a tier are resolved by
/// the exact value at ranking time.
pub(crate) fn speed_tier(tflops: f64) -> u8 {
    if tflops < 25.0 {
        0
    } else if tflops < 50.0 {
        1
    } else if tflops < 100.0 {
        2
    } else {
        3
    }
}

/// Index class of a node: (free-VRAM bucket, compute capability, speed tier).
///
/// Ordered by bucket first so `candidates` can range-scan "every class with
/// at least this much free per-slot VRAM". The tier keeps same-speed-class
/// nodes co-located for tier-constrained queries; it is static per node
/// (TFLOPS come from the registration inventory), so it never causes
/// reclassification churn — only `bucket` moves as capacity changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct ClassKey {
    bucket: u8,
    cc: (u8, u8),
    tier: u8,
}

/// Where one node currently sits in the index (for in-place updates).
#[derive(Debug, Clone, Copy)]
struct IndexedAt {
    class: ClassKey,
    total_free: u64,
    speed_bits: u64,
    heartbeat: SimTime,
}

/// The incremental capacity index of one shard.
///
/// Maintains four ordered views over the *schedulable* (Active) nodes —
/// by capacity class for eligibility pruning, by total free VRAM for
/// least-loaded picks, by device speed for fastest-device picks, and by uid
/// for round-robin — plus a heartbeat-recency view over all non-offline
/// nodes for staleness sweeps.
#[derive(Debug, Default)]
pub(crate) struct CapacityIndex {
    /// (bucket, cc, tier) → members.
    by_class: BTreeMap<ClassKey, BTreeSet<NodeUid>>,
    /// (total effective free, uid): iterate in reverse for least-loaded.
    /// `Reverse<NodeUid>` makes the reverse iteration tie-break on low uid.
    by_free: BTreeSet<(u64, Reverse<NodeUid>)>,
    /// (tflops bits, uid): iterate in reverse for fastest-device.
    by_speed: BTreeSet<(u64, Reverse<NodeUid>)>,
    /// Active nodes by uid (round-robin cursor scans).
    by_uid: BTreeSet<NodeUid>,
    /// (last heartbeat, uid) over non-offline nodes (staleness sweeps).
    by_heartbeat: BTreeSet<(SimTime, NodeUid)>,
    /// Current position of every tracked node.
    entries: HashMap<NodeUid, IndexedAt>,
    /// Nodes tracked only for heartbeat staleness (Paused/Departing).
    unscheduled: HashMap<NodeUid, SimTime>,
}

impl CapacityIndex {
    fn summarize(entry: &NodeEntry) -> IndexedAt {
        IndexedAt {
            class: ClassKey {
                bucket: vram_bucket(entry.max_slot_free()),
                cc: entry.max_cc(),
                tier: speed_tier(entry.best_tflops()),
            },
            total_free: entry.total_free(),
            speed_bits: entry.best_tflops().to_bits(),
            heartbeat: entry.last_heartbeat,
        }
    }

    fn remove_scheduled(&mut self, uid: NodeUid) {
        if let Some(at) = self.entries.remove(&uid) {
            if let Some(set) = self.by_class.get_mut(&at.class) {
                set.remove(&uid);
                if set.is_empty() {
                    self.by_class.remove(&at.class);
                }
            }
            self.by_free.remove(&(at.total_free, Reverse(uid)));
            self.by_speed.remove(&(at.speed_bits, Reverse(uid)));
            self.by_uid.remove(&uid);
            self.by_heartbeat.remove(&(at.heartbeat, uid));
        }
    }

    fn remove_unscheduled(&mut self, uid: NodeUid) {
        if let Some(hb) = self.unscheduled.remove(&uid) {
            self.by_heartbeat.remove(&(hb, uid));
        }
    }

    /// Reposition only the capacity-derived views (class bucket, total
    /// free) after a reservation change. Heartbeat recency, speed, and uid
    /// views are untouched — this is the scheduling pass's per-placement
    /// index update.
    pub(crate) fn update_capacity(&mut self, entry: &NodeEntry) {
        let uid = entry.uid;
        let Some(at) = self.entries.get(&uid).copied() else {
            // Not schedulable (non-Active): capacity views don't track it.
            return;
        };
        let class = ClassKey {
            bucket: vram_bucket(entry.max_slot_free()),
            ..at.class
        };
        let total_free = entry.total_free();
        if class != at.class {
            if let Some(set) = self.by_class.get_mut(&at.class) {
                set.remove(&uid);
                if set.is_empty() {
                    self.by_class.remove(&at.class);
                }
            }
            self.by_class.entry(class).or_default().insert(uid);
        }
        if total_free != at.total_free {
            self.by_free.remove(&(at.total_free, Reverse(uid)));
            self.by_free.insert((total_free, Reverse(uid)));
        }
        let at = self.entries.get_mut(&uid).expect("present above");
        at.class = class;
        at.total_free = total_free;
    }

    /// Re-derive a node's index position from its current entry state.
    pub(crate) fn refresh(&mut self, entry: &NodeEntry) {
        let uid = entry.uid;
        self.remove_scheduled(uid);
        self.remove_unscheduled(uid);
        match entry.liveness() {
            NodeLiveness::Active => {
                let at = Self::summarize(entry);
                self.by_class.entry(at.class).or_default().insert(uid);
                self.by_free.insert((at.total_free, Reverse(uid)));
                self.by_speed.insert((at.speed_bits, Reverse(uid)));
                self.by_uid.insert(uid);
                self.by_heartbeat.insert((at.heartbeat, uid));
                self.entries.insert(uid, at);
            }
            NodeLiveness::Paused | NodeLiveness::Departing => {
                self.by_heartbeat.insert((entry.last_heartbeat, uid));
                self.unscheduled.insert(uid, entry.last_heartbeat);
            }
            NodeLiveness::Offline => {}
        }
    }

    /// Schedulable (Active) node count.
    pub(crate) fn schedulable(&self) -> usize {
        self.by_uid.len()
    }

    // ---- merge-ready ordered streams ---------------------------------
    //
    // Every stream yields `(key, ())` (or `(key, value)`) pairs in
    // ascending key order, and every key EMBEDS the node uid: keys are
    // therefore unique across shards, a k-way merge of per-shard streams
    // has no ties to break, and ties *within* a sort dimension (equal
    // free VRAM, equal TFLOPS) break on uid exactly like the unsharded
    // reverse iteration did.

    /// Members of classes that could serve a slot of `mem` bytes at
    /// `min_cc`, keyed `(Reverse(class), uid)` in ascending key order —
    /// i.e. largest-free classes first, uid ascending within a class,
    /// exactly the unsharded candidate order. Superset of the exact
    /// answer; callers verify per node.
    pub(crate) fn class_stream(
        &self,
        mem: u64,
        min_cc: Option<(u8, u8)>,
    ) -> impl Iterator<Item = ((Reverse<ClassKey>, NodeUid), ())> + '_ {
        let floor = ClassKey {
            bucket: vram_bucket(mem),
            cc: (0, 0),
            tier: 0,
        };
        self.by_class
            .range(floor..)
            .rev()
            .filter(move |(k, _)| min_cc.is_none_or(|cc| k.cc >= cc))
            .flat_map(|(k, set)| set.iter().map(move |&uid| ((Reverse(*k), uid), ())))
    }

    /// Keyed `(Reverse(total free), uid)` ascending — most-free first,
    /// uid ascending on ties (the unsharded least-loaded order).
    pub(crate) fn free_stream(&self) -> impl Iterator<Item = ((Reverse<u64>, NodeUid), ())> + '_ {
        self.by_free
            .iter()
            .rev()
            .map(|&(free, Reverse(uid))| ((Reverse(free), uid), ()))
    }

    /// Keyed `(Reverse(tflops bits), uid)` ascending — fastest first,
    /// uid ascending on ties (the unsharded fastest-device order).
    pub(crate) fn speed_stream(&self) -> impl Iterator<Item = ((Reverse<u64>, NodeUid), ())> + '_ {
        self.by_speed
            .iter()
            .rev()
            .map(|&(bits, Reverse(uid))| ((Reverse(bits), uid), ()))
    }

    /// Active uids in `range`, ascending (round-robin segments of the
    /// reference enumeration — see `ShardedDirectory::round_robin_from`).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn uid_stream<R>(&self, range: R) -> impl Iterator<Item = (NodeUid, ())> + '_
    where
        R: std::ops::RangeBounds<NodeUid>,
    {
        self.by_uid.range(range).map(|&uid| (uid, ()))
    }

    /// Smallest Active uid in `range` — one tree descent, no iterator
    /// state. The round-robin gather's per-shard reply: each refill asks
    /// every shard for its next uid and merges the answers, re-asking
    /// only the shard whose uid won (see `directory::merge::RrGather`).
    pub(crate) fn first_uid_in(
        &self,
        range: (std::ops::Bound<NodeUid>, std::ops::Bound<NodeUid>),
    ) -> Option<NodeUid> {
        self.by_uid.range(range).next().copied()
    }

    /// Non-offline `(last heartbeat, uid)` strictly before `cutoff`,
    /// ascending (staleness sweeps).
    pub(crate) fn heartbeat_stream(
        &self,
        cutoff: SimTime,
    ) -> impl Iterator<Item = ((SimTime, NodeUid), ())> + '_ {
        self.by_heartbeat
            .range(..(cutoff, NodeUid(u64::MAX)))
            .map(|&key| (key, ()))
    }
}
