//! Per-node directory state: liveness, reliability, GPU slots, and the
//! reservation ledger — everything the directory knows about one node,
//! independent of which shard owns it.

use gpunion_des::SimTime;
use gpunion_protocol::{DispatchSpec, GpuInfo, GpuStat, JobId, NodeUid};
use std::collections::HashMap;

/// Liveness as seen from the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeLiveness {
    /// Heartbeating, accepting new work.
    Active,
    /// Heartbeating but the provider paused allocations.
    Paused,
    /// Graceful departure announced; draining.
    Departing,
    /// Heartbeats lost or departure completed.
    Offline,
}

/// Per-provider reliability statistics (EWMA of interruption rate).
#[derive(Debug, Clone)]
pub struct Reliability {
    /// Exponentially-weighted interruptions per day.
    pub ewma_per_day: f64,
    /// Total interruptions observed.
    pub interruptions: u64,
    /// When the node first registered (for rate normalization).
    pub first_seen: SimTime,
}

impl Reliability {
    const ALPHA: f64 = 0.3;

    pub(crate) fn new(now: SimTime) -> Self {
        Reliability {
            ewma_per_day: 0.0,
            interruptions: 0,
            first_seen: now,
        }
    }

    /// Record one interruption at `now`.
    pub fn record_interruption(&mut self, now: SimTime) {
        self.interruptions += 1;
        let days = now.since(self.first_seen).as_secs_f64() / 86_400.0;
        let observed_rate = if days > 0.01 {
            self.interruptions as f64 / days
        } else {
            1.0
        };
        self.ewma_per_day = Self::ALPHA * observed_rate + (1.0 - Self::ALPHA) * self.ewma_per_day;
    }

    /// Score in (0, 1]: 1 = never interrupts.
    pub fn score(&self) -> f64 {
        1.0 / (1.0 + self.ewma_per_day)
    }
}

/// One GPU slot as the directory models it: capacity plus reservations.
#[derive(Debug, Clone)]
struct GpuSlot {
    info: GpuInfo,
    /// Free bytes according to the last heartbeat.
    reported_free: u64,
    /// Bytes reserved by in-flight offers/allocations not yet visible in
    /// heartbeats.
    reserved: u64,
}

impl GpuSlot {
    fn effective_free(&self) -> u64 {
        self.reported_free.saturating_sub(self.reserved)
    }
}

/// Directory entry for one node.
#[derive(Debug, Clone)]
pub struct NodeEntry {
    /// Node uid.
    pub uid: NodeUid,
    /// The machine identifier (stable across re-registrations).
    pub machine_id: String,
    /// Hostname.
    pub hostname: String,
    /// Liveness. Mutations go through [`super::ShardedDirectory::set_liveness`]
    /// so the owning shard's capacity index stays consistent.
    pub(crate) liveness: NodeLiveness,
    /// Last heartbeat receive time.
    pub last_heartbeat: SimTime,
    /// Last heartbeat sequence.
    pub last_seq: u64,
    /// Reliability statistics.
    pub reliability: Reliability,
    slots: Vec<GpuSlot>,
    /// Reservations per job: bytes per GPU plus the exact slot indices
    /// debited, so release undoes precisely what reserve did even when a
    /// reservation could only be partially satisfied.
    reservations: HashMap<JobId, (u64, Vec<usize>)>,
}

impl NodeEntry {
    /// New entry at registration time.
    pub(crate) fn new(
        uid: NodeUid,
        machine_id: String,
        hostname: String,
        gpus: Vec<GpuInfo>,
        now: SimTime,
    ) -> Self {
        let slots = gpus
            .into_iter()
            .map(|info| GpuSlot {
                reported_free: info.vram_bytes,
                reserved: 0,
                info,
            })
            .collect();
        NodeEntry {
            uid,
            machine_id,
            hostname,
            liveness: NodeLiveness::Active,
            last_heartbeat: now,
            last_seq: 0,
            reliability: Reliability::new(now),
            slots,
            reservations: HashMap::new(),
        }
    }

    /// Current liveness.
    pub fn liveness(&self) -> NodeLiveness {
        self.liveness
    }

    /// GPU count.
    pub fn gpu_count(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn apply_heartbeat(
        &mut self,
        now: SimTime,
        seq: u64,
        accepting: bool,
        stats: &[GpuStat],
    ) {
        self.last_heartbeat = now;
        self.last_seq = seq;
        if self.liveness != NodeLiveness::Departing {
            self.liveness = if accepting {
                NodeLiveness::Active
            } else {
                NodeLiveness::Paused
            };
        }
        for (slot, stat) in self.slots.iter_mut().zip(stats) {
            slot.reported_free = stat.memory_total.saturating_sub(stat.memory_used);
        }
    }

    /// How many GPUs could take a job needing `mem` bytes and `min_cc`?
    pub fn eligible_gpus(&self, mem: u64, min_cc: Option<(u8, u8)>) -> usize {
        self.slots
            .iter()
            .filter(|s| {
                s.effective_free() >= mem
                    && min_cc
                        .is_none_or(|(maj, min)| (s.info.cc_major, s.info.cc_minor) >= (maj, min))
            })
            .count()
    }

    /// Can this node host `spec` right now (liveness aside)?
    pub fn eligible_for(&self, spec: &DispatchSpec) -> bool {
        self.eligible_gpus(spec.gpu_mem_bytes, spec.min_cc) >= spec.gpus as usize
    }

    /// Like [`Self::eligible_for`], but counting capacity reserved by
    /// `holder` itself as free — a job's own held home slot must satisfy
    /// that job's eligibility check without mutating any state. The credit
    /// is applied to the slot's *reserved* bytes (what releasing the hold
    /// would actually restore), so a slot whose reported free VRAM shrank
    /// underneath the hold is not over-counted.
    pub fn eligible_for_holder(&self, spec: &DispatchSpec, holder: JobId) -> bool {
        let own = self.reservations.get(&holder);
        let eligible = self
            .slots
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                let credit = match own {
                    Some((mem, taken)) if taken.contains(i) => *mem,
                    _ => 0,
                };
                let avail = s.reported_free.saturating_sub(s.reserved - credit);
                avail >= spec.gpu_mem_bytes
                    && spec
                        .min_cc
                        .is_none_or(|(maj, min)| (s.info.cc_major, s.info.cc_minor) >= (maj, min))
            })
            .count();
        eligible >= spec.gpus as usize
    }

    /// Total effective free VRAM (for load-based ranking).
    pub fn total_free(&self) -> u64 {
        self.slots.iter().map(|s| s.effective_free()).sum()
    }

    /// Largest single-slot effective free VRAM (the index bucket input).
    pub fn max_slot_free(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.effective_free())
            .max()
            .unwrap_or(0)
    }

    /// Fastest eligible device's TFLOPS (speed-aware ranking).
    pub fn best_tflops(&self) -> f64 {
        self.slots
            .iter()
            .map(|s| s.info.fp32_tflops)
            .fold(0.0, f64::max)
    }

    /// Highest compute capability present on the node.
    pub(crate) fn max_cc(&self) -> (u8, u8) {
        self.slots
            .iter()
            .map(|s| (s.info.cc_major, s.info.cc_minor))
            .max()
            .unwrap_or((0, 0))
    }

    /// Reserve `gpus` slots of `mem` bytes on slots meeting `min_cc` (the
    /// same per-slot criterion `eligible_gpus` counts, so a reservation
    /// paired with an eligibility check debits slots the job can actually
    /// use). Idempotent per job (a stale reservation is dropped first, so
    /// repeated migrate-back holds can't double-count). Records exactly
    /// which slots were debited; returns false when fewer than `gpus`
    /// qualifying slots had room — the partial debit is still tracked, so
    /// release stays exact.
    pub(crate) fn reserve(
        &mut self,
        job: JobId,
        gpus: u8,
        mem: u64,
        min_cc: Option<(u8, u8)>,
    ) -> bool {
        self.release(job);
        let mut taken = Vec::with_capacity(gpus as usize);
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if taken.len() == gpus as usize {
                break;
            }
            let cc_ok = min_cc
                .is_none_or(|(maj, min)| (slot.info.cc_major, slot.info.cc_minor) >= (maj, min));
            if cc_ok && slot.effective_free() >= mem {
                slot.reserved += mem;
                taken.push(i);
            }
        }
        let complete = taken.len() == gpus as usize;
        self.reservations.insert(job, (mem, taken));
        complete
    }

    /// Undo a reservation: credits back exactly the slots reserve debited,
    /// so one job's release can never strip bytes from another's.
    pub(crate) fn release(&mut self, job: JobId) {
        if let Some((mem, taken)) = self.reservations.remove(&job) {
            for i in taken {
                if let Some(slot) = self.slots.get_mut(i) {
                    slot.reserved = slot.reserved.saturating_sub(mem);
                }
            }
        }
    }

    /// Jobs with live reservations on this node.
    pub fn reserved_jobs(&self) -> Vec<JobId> {
        self.reservations.keys().copied().collect()
    }

    /// Does `job` hold a reservation here?
    pub fn has_reservation(&self, job: JobId) -> bool {
        self.reservations.contains_key(&job)
    }
}
