//! Lazy k-way merge of per-shard ordered streams.
//!
//! The sharded directory's read surface is built on this: each shard's
//! capacity index exposes its views as `(key, value)` streams in
//! ascending key order, and [`KWayMerge`] interleaves them into one
//! stream in global key order — so a merged view is bit-identical to the
//! view a single unsharded index would produce, while staying lazy (a
//! `Selector::pick` that accepts the first candidate pulls O(shards)
//! items, not a full materialization).
//!
//! Keys embed the node uid, so they are unique across shards and the
//! merge never has ties to break; when equal keys do occur the
//! lowest-indexed stream wins, keeping the order deterministic anyway.
//! With shard counts in the tens, the per-item linear scan over stream
//! heads beats a binary heap: no allocation per item, no sift traffic,
//! and the heads vector stays in cache.

use gpunion_protocol::NodeUid;
use std::collections::VecDeque;

/// Where a round-robin gather enumeration stands inside its circle.
///
/// An enumeration of `circle(origin)` visits uids in `[origin, ∞)` (the
/// tail), then `[0, origin)` (the head). Each segment tracks the last
/// uid gathered so a refill resumes with `Excluded` bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GatherPos {
    /// In `[origin, ∞)`; `Some(u)` = resume strictly after `u`.
    Tail(Option<NodeUid>),
    /// In `[0, origin)`; `Some(u)` = resume strictly after `u`.
    Head(Option<NodeUid>),
    /// The full circle has been gathered.
    Done,
}

/// The round-robin scatter–gather reply buffer.
///
/// Each refill (`ShardedDirectory::fill_round_robin`) quiesces every
/// shard lane at the join point, gathers each lane's next Active uid,
/// and merges the replies in ascending-uid order into `buf` — the same
/// embedded-uid key order `KWayMerge` uses, so consuming the buffer is
/// bit-identical to walking `round_robin_from(origin)`. All storage
/// (`buf`, the `heads` scratch) is reused across refills: the warm pass
/// allocates nothing on this path (pinned by `tests/alloc.rs`).
///
/// The buffer may outlive the pick that filled it; `Selector::pick`
/// guards reuse with two checks — `epoch` (any membership mutation
/// invalidates) and the expected cursor (consumption must continue where
/// the previous pick stopped) — and restarts the circle whenever an
/// in-progress enumeration could not serve the current pick exactly.
#[derive(Debug, Clone)]
pub(crate) struct RrGather {
    /// Gathered uids, merged order, not yet consumed by picks.
    pub(crate) buf: VecDeque<NodeUid>,
    /// Per-shard next-uid scratch for the refill merge.
    pub(crate) heads: Vec<Option<NodeUid>>,
    /// Heads correspond to `pos`'s segment (false forces a re-prime).
    pub(crate) heads_primed: bool,
    /// Directory membership epoch the enumeration was started under.
    pub(crate) epoch: u64,
    /// The circle's start (and wrap endpoint).
    pub(crate) origin: NodeUid,
    /// Refill resume position.
    pub(crate) pos: GatherPos,
    /// The cursor the next pick must present for the buffer to still
    /// correspond to its enumeration (`None` = must restart).
    pub(crate) expected_cursor: Option<NodeUid>,
}

impl RrGather {
    pub(crate) fn new() -> Self {
        RrGather {
            buf: VecDeque::new(),
            heads: Vec::new(),
            heads_primed: false,
            epoch: 0,
            origin: NodeUid(0),
            pos: GatherPos::Done,
            expected_cursor: None,
        }
    }

    /// Start a fresh enumeration of `circle(cursor)` under `epoch`.
    pub(crate) fn reset(&mut self, epoch: u64, cursor: NodeUid) {
        self.buf.clear();
        self.heads_primed = false;
        self.epoch = epoch;
        self.origin = cursor;
        self.pos = GatherPos::Tail(None);
        self.expected_cursor = Some(cursor);
    }
}

/// Merge `k` ascending `(K, V)` streams into one ascending stream.
pub(crate) struct KWayMerge<K: Ord, V, I: Iterator<Item = (K, V)>> {
    iters: Vec<I>,
    /// Buffered head of each stream (`None` = exhausted).
    heads: Vec<Option<(K, V)>>,
}

impl<K: Ord, V, I: Iterator<Item = (K, V)>> KWayMerge<K, V, I> {
    /// Build a merge over `streams`; each must yield ascending keys.
    pub(crate) fn new(streams: impl IntoIterator<Item = I>) -> Self {
        let mut iters: Vec<I> = streams.into_iter().collect();
        let heads = iters.iter_mut().map(Iterator::next).collect();
        KWayMerge { iters, heads }
    }
}

impl<K: Ord, V, I: Iterator<Item = (K, V)>> Iterator for KWayMerge<K, V, I> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        let mut best: Option<usize> = None;
        for i in 0..self.heads.len() {
            let Some((key, _)) = self.heads[i].as_ref() else {
                continue;
            };
            let beats = match best {
                None => true,
                Some(b) => {
                    let (best_key, _) = self.heads[b].as_ref().expect("best head is live");
                    key < best_key
                }
            };
            if beats {
                best = Some(i);
            }
        }
        let b = best?;
        let item = self.heads[b].take();
        self.heads[b] = self.iters[b].next();
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(streams: Vec<Vec<u32>>) -> Vec<u32> {
        KWayMerge::new(streams.into_iter().map(|s| s.into_iter().map(|k| (k, ()))))
            .map(|(k, ())| k)
            .collect()
    }

    #[test]
    fn merges_in_global_order() {
        assert_eq!(
            keys(vec![vec![1, 4, 9], vec![2, 3, 10], vec![5]]),
            vec![1, 2, 3, 4, 5, 9, 10]
        );
    }

    #[test]
    fn handles_empty_and_single_streams() {
        assert_eq!(keys(vec![]), Vec::<u32>::new());
        assert_eq!(keys(vec![vec![], vec![]]), Vec::<u32>::new());
        assert_eq!(keys(vec![vec![7, 8]]), vec![7, 8]);
        assert_eq!(keys(vec![vec![], vec![3], vec![]]), vec![3]);
    }

    #[test]
    fn equal_keys_prefer_the_first_stream() {
        let merged: Vec<(u32, &str)> = KWayMerge::new(vec![
            vec![(1u32, "a"), (2, "a")].into_iter(),
            vec![(1u32, "b")].into_iter(),
        ])
        .collect();
        assert_eq!(merged, vec![(1, "a"), (1, "b"), (2, "a")]);
    }

    #[test]
    fn is_lazy() {
        // An infinite stream merged with a finite one: taking a prefix
        // must not exhaust anything.
        let inf = (0u64..).map(|k| (k * 2, ()));
        let fin = vec![(1u64, ()), (3, ())].into_iter();
        let got: Vec<u64> = KWayMerge::new(vec![
            Box::new(inf) as Box<dyn Iterator<Item = (u64, ())>>,
            Box::new(fin),
        ])
        .map(|(k, ())| k)
        .take(5)
        .collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
