//! The coordinator's view of every registered node — a directory sharded
//! by node uid, each shard behind its own incrementally maintained
//! capacity index.
//!
//! Built from registration inventories and refreshed by heartbeats, the
//! directory answers the placement questions ("which nodes could run this
//! job right now?") and tracks per-provider reliability — the paper's
//! "provider reliability predictions and degradation mechanisms".
//!
//! Placement never rescans the world: every mutation (registration,
//! heartbeat, reservation, release, liveness change) routes to the shard
//! owning the node's uid and updates that shard's
//! `CapacityIndex` in place. The read surface composes shards
//! lazily: each ordered per-shard view (by candidate class, by free VRAM,
//! by device speed, by uid, by heartbeat recency) feeds a k-way merge
//! (`KWayMerge`) whose keys embed the node uid, so the merged
//! stream is **bit-identical** to what a single unsharded index would
//! produce (property-tested below across shard counts). The index prunes
//! by free-VRAM bucket / compute capability / GPU speed tier and verifies
//! each surviving node exactly, so its answers are identical to a
//! brute-force scan at a fraction of the cost.
//!
//! At the default `shard_count = 1` the merge degenerates to a
//! single-stream pass-through and the directory behaves exactly like the
//! pre-sharding implementation; larger counts keep every per-shard tree
//! small (cache-resident) as fleets grow past 10⁴ nodes.
//!
//! Each shard is an **actor** (the private `actor` module): mutations
//! become typed
//! `ShardIntent`s sent down the owning shard's lane, applied inline with
//! zero worker threads (the default — the exact pre-actor code path) or
//! by a worker pool; every read first quiesces all lanes at the join
//! point and then borrows the shard state, so the merged views above —
//! and their bit-identical-order proof — are untouched by threading.

mod actor;
mod entry;
mod index;
mod merge;
mod shard;

pub use entry::{NodeEntry, NodeLiveness, Reliability};

use actor::{ShardIntent, ShardReply, ShardRuntime};
use gpunion_des::{SimDuration, SimTime};
use gpunion_protocol::{DispatchSpec, GpuInfo, GpuStat, JobId, NodeUid};
use merge::KWayMerge;
pub(crate) use merge::{GatherPos, RrGather};
use std::collections::HashMap;
use std::ops::Bound;

/// The node directory, sharded by node uid.
///
/// N independent `{node map + CapacityIndex}` shards keyed by a hash of
/// the node uid; all mutation methods route to the owning shard, and the
/// ordered read views are lazy k-way merges of the per-shard streams.
/// Registration identity (machine-id → uid) and uid allocation stay
/// global: a machine keeps its uid — and therefore its shard — across
/// re-registrations, which is what lets the coordinator cache a home
/// node's shard affinity in job metadata (DESIGN.md §3b).
#[derive(Debug)]
pub struct ShardedDirectory {
    runtime: ShardRuntime,
    by_machine: HashMap<String, NodeUid>,
    next_uid: u64,
    /// Bumped on every mutation that can change Active-uid membership
    /// (register, heartbeat, liveness) — the round-robin gather buffer's
    /// invalidation clock. Counted at *send* time, so it is identical at
    /// any worker count. Reserve/release only move capacity views and
    /// deliberately leave the epoch alone: that is what lets one gather
    /// survive a whole scheduling pass.
    views_epoch: u64,
}

/// The directory under its historical name (one shard by default; the
/// coordinator picks the count from its config).
pub type Directory = ShardedDirectory;

impl Default for ShardedDirectory {
    fn default() -> Self {
        Self::with_shards(1)
    }
}

impl ShardedDirectory {
    /// Empty single-shard directory (the pre-sharding behaviour).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty directory with `shards` independent shards (clamped to ≥ 1),
    /// applied inline (zero worker threads).
    pub fn with_shards(shards: usize) -> Self {
        Self::with_shards_workers(shards, 0)
    }

    /// Empty directory with `shards` shard actors served by up to
    /// `workers` threads. `workers = 0` applies intents inline on the
    /// caller's thread — the degenerate actor, byte-identical to the
    /// pre-actor directory; `workers ≥ 1` pins shard `i` to worker
    /// `i % workers` and every read quiesces at the join point first.
    /// Decisions are bit-identical at any worker count (property-tested).
    pub fn with_shards_workers(shards: usize, workers: usize) -> Self {
        ShardedDirectory {
            runtime: ShardRuntime::new(shards.max(1), workers),
            by_machine: HashMap::new(),
            next_uid: 0,
            views_epoch: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.runtime.len()
    }

    /// Worker threads serving the shard lanes (0 = inline).
    pub fn worker_count(&self) -> usize {
        self.runtime.worker_count()
    }

    /// Membership-mutation epoch (the gather buffer's invalidation clock).
    pub(crate) fn membership_epoch(&self) -> u64 {
        self.views_epoch
    }

    /// Test scaffolding: join shard lanes (and gather round-robin
    /// replies) in `order` instead of lane order, simulating adversarial
    /// reply arrival. Must be a permutation of `0..shard_count`.
    #[cfg(test)]
    pub(crate) fn set_drain_schedule(&mut self, order: Vec<usize>) {
        self.runtime.set_drain_schedule(order);
    }

    /// The shard owning `uid` — a Fibonacci hash of the uid, so
    /// sequentially assigned uids spread evenly. The coordinator records
    /// this next to a job's preferred home node (shard affinity), letting
    /// the migrate-back fast path read job + home-node state through the
    /// owning shard without re-hashing (see
    /// [`Self::is_candidate_for_holder_on`]).
    pub fn shard_of(&self, uid: NodeUid) -> u32 {
        self.shard_idx(uid) as u32
    }

    #[inline]
    fn shard_idx(&self, uid: NodeUid) -> usize {
        if self.runtime.len() == 1 {
            0
        } else {
            (uid.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % self.runtime.len()
        }
    }

    /// Register (or re-register) a machine. A known machine id keeps its
    /// uid — the paper's migrate-back depends on recognizing returners —
    /// and therefore its shard. Returns `(uid, is_returning)`.
    pub fn register(
        &mut self,
        machine_id: &str,
        hostname: &str,
        gpus: Vec<GpuInfo>,
        now: SimTime,
    ) -> (NodeUid, bool) {
        self.views_epoch += 1;
        if let Some(&uid) = self.by_machine.get(machine_id) {
            // Returning provider: refresh inventory, preserve reliability.
            // Reading the old entry is a lane read: join it first.
            let sh = self.shard_idx(uid);
            self.runtime.join_lane(sh);
            let reliability = self
                .runtime
                .shard(sh)
                .nodes
                .get(&uid)
                .map(|e| e.reliability.clone())
                .unwrap_or(Reliability::new(now));
            let mut entry =
                NodeEntry::new(uid, machine_id.to_string(), hostname.to_string(), gpus, now);
            entry.reliability = reliability;
            self.runtime.send(sh, ShardIntent::Insert(Box::new(entry)));
            return (uid, true);
        }
        let uid = NodeUid(self.next_uid);
        self.next_uid += 1;
        self.by_machine.insert(machine_id.to_string(), uid);
        let entry = NodeEntry::new(uid, machine_id.to_string(), hostname.to_string(), gpus, now);
        let sh = self.shard_idx(uid);
        self.runtime.send(sh, ShardIntent::Insert(Box::new(entry)));
        (uid, false)
    }

    /// Entry by uid (routed to the owning shard's lane, joined first).
    pub fn get(&self, uid: NodeUid) -> Option<&NodeEntry> {
        let sh = self.shard_idx(uid);
        self.runtime.join_lane(sh);
        self.runtime.shard(sh).nodes.get(&uid)
    }

    /// Apply a heartbeat's telemetry. Returns false for unknown nodes.
    pub fn apply_heartbeat(
        &mut self,
        uid: NodeUid,
        now: SimTime,
        seq: u64,
        accepting: bool,
        stats: &[GpuStat],
    ) -> bool {
        self.views_epoch += 1;
        let sh = self.shard_idx(uid);
        if self.runtime.is_inline() {
            // Inline fast path: apply through the borrowed stats, no copy.
            return self
                .runtime
                .apply_inline(sh, |s| s.apply_heartbeat(uid, now, seq, accepting, stats));
        }
        self.runtime.send(
            sh,
            ShardIntent::ApplyHeartbeat {
                uid,
                now,
                seq,
                accepting,
                stats: stats.to_vec(),
            },
        );
        // "Known node" without a round trip: entries are never removed,
        // and every uid below the allocator watermark has one.
        uid.0 < self.next_uid
    }

    /// Reserve capacity on a node for an in-flight offer (idempotent per
    /// job — re-reserving replaces the old reservation). Returns false if
    /// the node is unknown or could not cover all `gpus` slots (callers
    /// should release or avoid relying on a partial hold).
    pub fn reserve(
        &mut self,
        uid: NodeUid,
        job: JobId,
        gpus: u8,
        mem: u64,
        min_cc: Option<(u8, u8)>,
    ) -> bool {
        let sh = self.shard_idx(uid);
        let reply = self.runtime.send_with_reply(
            sh,
            ShardIntent::Reserve {
                uid,
                job,
                gpus,
                mem,
                min_cc,
            },
        );
        matches!(reply, ShardReply::Bool(true))
    }

    /// Release a job's reservation (offer rejected, job finished, node
    /// lost). No-op when none exists.
    pub fn release(&mut self, uid: NodeUid, job: JobId) {
        let sh = self.shard_idx(uid);
        self.runtime.send(sh, ShardIntent::Release { uid, job });
    }

    /// Transition a node's liveness. Returns the previous liveness.
    pub fn set_liveness(&mut self, uid: NodeUid, liveness: NodeLiveness) -> Option<NodeLiveness> {
        self.views_epoch += 1;
        let sh = self.shard_idx(uid);
        match self
            .runtime
            .send_with_reply(sh, ShardIntent::SetLiveness { uid, liveness })
        {
            ShardReply::Liveness(prev) => prev,
            _ => None,
        }
    }

    /// Record a provider interruption against a node's reliability stats.
    pub fn record_interruption(&mut self, uid: NodeUid, now: SimTime) {
        let sh = self.shard_idx(uid);
        self.runtime
            .send(sh, ShardIntent::RecordInterruption { uid, now });
    }

    /// All entries, uid order (k-way merge of the per-shard maps).
    pub fn iter(&self) -> impl Iterator<Item = &NodeEntry> {
        KWayMerge::new(
            self.runtime
                .joined_shards()
                .map(|s| s.nodes.iter().map(|(&uid, e)| (uid, e))),
        )
        .map(|(_, e)| e)
    }

    /// Registered node count.
    pub fn len(&self) -> usize {
        self.runtime.joined_shards().map(|s| s.nodes.len()).sum()
    }

    /// Is the directory empty?
    pub fn is_empty(&self) -> bool {
        self.runtime.joined_shards().all(|s| s.nodes.is_empty())
    }

    /// Schedulable (Active) node count, from the shard indexes.
    pub fn schedulable(&self) -> usize {
        self.runtime
            .joined_shards()
            .map(|s| s.index.schedulable())
            .sum()
    }

    /// Nodes eligible to host `spec` right now: each shard's index prunes
    /// by (free-VRAM bucket, compute capability) class, the merged stream
    /// interleaves shards in global (class desc, uid asc) order — the
    /// unsharded candidate order — and every popped node is verified
    /// exactly. Agrees with a brute-force scan over all Active entries.
    pub fn candidates<'a>(
        &'a self,
        spec: &'a DispatchSpec,
    ) -> impl Iterator<Item = &'a NodeEntry> + 'a {
        let streams = self.runtime.joined_shards().map(move |sh| {
            sh.index
                .class_stream(spec.gpu_mem_bytes, spec.min_cc)
                .filter_map(move |(key, ())| sh.nodes.get(&key.1).map(|e| (key, e)))
        });
        KWayMerge::new(streams)
            .map(|(_, e)| e)
            .filter(move |e| e.eligible_for(spec))
    }

    /// Is `uid` Active and able to host `spec`? (Preferred-node fast path.)
    pub fn is_candidate(&self, uid: NodeUid, spec: &DispatchSpec) -> bool {
        self.get(uid)
            .map(|e| e.liveness() == NodeLiveness::Active && e.eligible_for(spec))
            .unwrap_or(false)
    }

    /// [`Self::is_candidate`] for a job that may itself hold a reservation
    /// on `uid` (migrate-back home hold): the job's own held capacity
    /// counts as free, without mutating the directory.
    pub fn is_candidate_for_holder(&self, uid: NodeUid, spec: &DispatchSpec, job: JobId) -> bool {
        self.get(uid)
            .map(|e| e.liveness() == NodeLiveness::Active && e.eligible_for_holder(spec, job))
            .unwrap_or(false)
    }

    /// [`Self::is_candidate_for_holder`] routed through a cached shard
    /// affinity: §3b's invariant is that the migrate-back fast path reads
    /// job + home-node state together, so the coordinator stores the home
    /// node's shard next to the job's preference and phase-1 placements
    /// read the owning shard directly. `shard` must be the owner of `uid`
    /// (i.e. a value previously returned by [`Self::shard_of`]).
    pub fn is_candidate_for_holder_on(
        &self,
        shard: u32,
        uid: NodeUid,
        spec: &DispatchSpec,
        job: JobId,
    ) -> bool {
        debug_assert_eq!(
            shard,
            self.shard_of(uid),
            "stale shard affinity for {uid:?}"
        );
        if (shard as usize) >= self.runtime.len() {
            return false;
        }
        self.runtime.join_lane(shard as usize);
        self.runtime
            .shard(shard as usize)
            .nodes
            .get(&uid)
            .map(|e| e.liveness() == NodeLiveness::Active && e.eligible_for_holder(spec, job))
            .unwrap_or(false)
    }

    /// Nodes whose last heartbeat is older than `timeout`, among live ones.
    /// Merged range scans over the per-shard heartbeat-recency views —
    /// O(shards · log n + stale), in global (heartbeat, uid) order.
    pub fn stale_nodes(&self, now: SimTime, timeout: SimDuration) -> Vec<NodeUid> {
        let Some(cutoff) = now.checked_sub(timeout) else {
            return Vec::new();
        };
        KWayMerge::new(
            self.runtime
                .joined_shards()
                .map(move |s| s.index.heartbeat_stream(cutoff)),
        )
        .filter(|((at, _), ())| now.since(*at) > timeout)
        .map(|((_, uid), ())| uid)
        .collect()
    }

    // ---- merged ordered views (strategy-internal fast paths) ----------

    /// Active uids by total effective free VRAM, most-free first (uid
    /// ascending on ties) — the least-loaded pick order.
    pub(crate) fn by_free_desc(&self) -> impl Iterator<Item = NodeUid> + '_ {
        KWayMerge::new(self.runtime.joined_shards().map(|s| s.index.free_stream()))
            .map(|((_, uid), ())| uid)
    }

    /// Active uids by best-device TFLOPS, fastest first (uid ascending on
    /// ties) — the fastest-device pick order.
    pub(crate) fn by_speed_desc(&self) -> impl Iterator<Item = NodeUid> + '_ {
        KWayMerge::new(self.runtime.joined_shards().map(|s| s.index.speed_stream()))
            .map(|((_, uid), ())| uid)
    }

    /// Active uids starting at `cursor`, wrapping around once — the
    /// round-robin scan order. Two merges (tail segment, then head
    /// segment) chained, each in ascending uid order. This is the
    /// reference enumeration the gather-buffered pick path
    /// (`Selector::pick` + [`Self::fill_round_robin`]) is proven
    /// equivalent to; the equivalence tests walk it directly.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn round_robin_from(&self, cursor: NodeUid) -> impl Iterator<Item = NodeUid> + '_ {
        let tail = KWayMerge::new(
            self.runtime
                .joined_shards()
                .map(move |s| s.index.uid_stream(cursor..)),
        );
        let head = std::iter::once_with(move || {
            KWayMerge::new(
                self.runtime
                    .joined_shards()
                    .map(move |s| s.index.uid_stream(..cursor)),
            )
        })
        .flatten();
        tail.map(|(uid, ())| uid).chain(head.map(|(uid, ())| uid))
    }

    /// Refill a round-robin gather buffer with up to `max` more uids.
    ///
    /// The scatter–gather read: quiesce every shard lane at the join
    /// point, prime each lane's next-uid reply for the current circle
    /// segment, then repeatedly take the smallest reply — re-asking only
    /// the winning lane — until `max` uids are buffered or the circle is
    /// done. Replies are gathered in drain-schedule order, which cannot
    /// change the merged result (uids are unique; property-tested under
    /// seeded permutations). Uses only storage owned by `g`: the warm
    /// path allocates nothing (pinned by `tests/alloc.rs`).
    pub(crate) fn fill_round_robin(&self, g: &mut RrGather, max: usize) {
        self.runtime.join_all();
        let order = self.runtime.drain_order();
        if g.heads.len() != order.len() {
            g.heads.clear();
            g.heads.resize(order.len(), None);
            g.heads_primed = false;
        }
        let mut filled = 0usize;
        'segment: while filled < max {
            let (lo, hi): (Bound<NodeUid>, Bound<NodeUid>) = match g.pos {
                GatherPos::Done => return,
                GatherPos::Tail(None) => (Bound::Included(g.origin), Bound::Unbounded),
                GatherPos::Tail(Some(u)) => (Bound::Excluded(u), Bound::Unbounded),
                GatherPos::Head(None) => (Bound::Unbounded, Bound::Excluded(g.origin)),
                GatherPos::Head(Some(u)) => (Bound::Excluded(u), Bound::Excluded(g.origin)),
            };
            if !g.heads_primed {
                for &i in order {
                    g.heads[i] = self.runtime.shard(i).index.first_uid_in((lo, hi));
                }
                g.heads_primed = true;
            }
            while filled < max {
                let mut best: Option<(NodeUid, usize)> = None;
                for &i in order {
                    if let Some(u) = g.heads[i] {
                        if best.is_none_or(|(b, _)| u < b) {
                            best = Some((u, i));
                        }
                    }
                }
                let Some((u, winner)) = best else {
                    // Segment dry: move to the next one and re-prime.
                    g.pos = match g.pos {
                        GatherPos::Tail(_) => GatherPos::Head(None),
                        _ => GatherPos::Done,
                    };
                    g.heads_primed = false;
                    continue 'segment;
                };
                g.buf.push_back(u);
                filled += 1;
                g.pos = match g.pos {
                    GatherPos::Tail(_) => GatherPos::Tail(Some(u)),
                    GatherPos::Head(_) => GatherPos::Head(Some(u)),
                    GatherPos::Done => unreachable!("popped from a done gather"),
                };
                g.heads[winner] = self
                    .runtime
                    .shard(winner)
                    .index
                    .first_uid_in((Bound::Excluded(u), hi));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpunion_gpu::GpuModel;
    use gpunion_protocol::{ExecMode, UserId};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn gpus(n: usize, model: GpuModel) -> Vec<GpuInfo> {
        (0..n).map(|_| model.into()).collect()
    }

    fn spec(mem: u64, gpus: u8, min_cc: Option<(u8, u8)>) -> DispatchSpec {
        DispatchSpec {
            job: JobId(1),
            image_repo: "r".into(),
            image_tag: "t".into(),
            image_digest: [0; 32],
            gpus,
            gpu_mem_bytes: mem,
            min_cc,
            mode: ExecMode::Batch {
                entrypoint: vec!["x".into()],
            },
            checkpoint_interval_secs: 600,
            storage_nodes: vec![],
            state_bytes_hint: 0,
            restore_from_seq: None,
            priority: 1,
            user: UserId::SYSTEM,
        }
    }

    /// The ground truth `candidates` must match.
    fn brute_force(d: &Directory, s: &DispatchSpec) -> Vec<NodeUid> {
        let mut v: Vec<NodeUid> = d
            .iter()
            .filter(|e| e.liveness() == NodeLiveness::Active)
            .filter(|e| e.eligible_for(s))
            .map(|e| e.uid)
            .collect();
        v.sort();
        v
    }

    fn indexed(d: &Directory, s: &DispatchSpec) -> Vec<NodeUid> {
        let mut v: Vec<NodeUid> = d.candidates(s).map(|e| e.uid).collect();
        v.sort();
        v
    }

    #[test]
    fn register_assigns_and_reuses_uids() {
        let mut d = Directory::new();
        let (a, ret) = d.register("m-1", "ws-1", gpus(1, GpuModel::Rtx3090), t(0));
        assert!(!ret);
        let (b, _) = d.register("m-2", "ws-2", gpus(1, GpuModel::Rtx3090), t(0));
        assert_ne!(a, b);
        // Same machine returns: same uid, flagged as returning.
        let (a2, ret) = d.register("m-1", "ws-1", gpus(1, GpuModel::Rtx3090), t(100));
        assert_eq!(a, a2);
        assert!(ret);
        assert_eq!(d.len(), 2);
        assert_eq!(d.schedulable(), 2);
    }

    #[test]
    fn returning_node_keeps_reliability_history() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "ws-1", gpus(1, GpuModel::Rtx3090), t(0));
        d.record_interruption(uid, t(3600));
        let before = d.get(uid).unwrap().reliability.interruptions;
        let (_, ret) = d.register("m-1", "ws-1", gpus(1, GpuModel::Rtx3090), t(7200));
        assert!(ret);
        assert_eq!(d.get(uid).unwrap().reliability.interruptions, before);
    }

    #[test]
    fn heartbeat_updates_free_memory() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "x", gpus(2, GpuModel::Rtx3090), t(0));
        let stats = vec![
            GpuStat {
                memory_used: 20 << 30,
                memory_total: 24 << 30,
                utilization: 0.9,
                temperature_c: 70.0,
                power_w: 300.0,
            },
            GpuStat {
                memory_used: 0,
                memory_total: 24 << 30,
                utilization: 0.0,
                temperature_c: 30.0,
                power_w: 25.0,
            },
        ];
        assert!(d.apply_heartbeat(uid, t(5), 1, true, &stats));
        let e = d.get(uid).unwrap();
        assert_eq!(e.eligible_gpus(8 << 30, None), 1);
        assert_eq!(e.eligible_gpus(1 << 30, None), 2);
        assert!(!d.apply_heartbeat(NodeUid(99), t(5), 1, true, &stats));
    }

    #[test]
    fn cc_constraint_filters() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "x", gpus(1, GpuModel::A100_40), t(0));
        let e = d.get(uid).unwrap();
        assert_eq!(e.eligible_gpus(1, Some((8, 0))), 1);
        assert_eq!(e.eligible_gpus(1, Some((8, 6))), 0, "A100 is CC 8.0");
        // The index agrees on both queries.
        assert_eq!(indexed(&d, &spec(1, 1, Some((8, 0)))), vec![uid]);
        assert!(indexed(&d, &spec(1, 1, Some((8, 6)))).is_empty());
    }

    #[test]
    fn reservations_reduce_capacity_and_release() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "x", gpus(1, GpuModel::Rtx3090), t(0));
        d.reserve(uid, JobId(1), 1, 20 << 30, None);
        assert_eq!(d.get(uid).unwrap().eligible_gpus(10 << 30, None), 0);
        assert!(indexed(&d, &spec(10 << 30, 1, None)).is_empty());
        d.release(uid, JobId(1));
        assert_eq!(d.get(uid).unwrap().eligible_gpus(10 << 30, None), 1);
        assert_eq!(indexed(&d, &spec(10 << 30, 1, None)), vec![uid]);
        // Double release is harmless.
        d.release(uid, JobId(1));
        assert_eq!(d.get(uid).unwrap().eligible_gpus(10 << 30, None), 1);
    }

    #[test]
    fn partial_reservation_release_cannot_strip_a_sibling_hold() {
        // One 24 GB GPU; two 16 GB holds. The second can't be satisfied —
        // its release must not dismantle the first hold's reservation.
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "x", gpus(1, GpuModel::Rtx3090), t(0));
        assert!(
            d.reserve(uid, JobId(1), 1, 16 << 30, None),
            "first hold fits"
        );
        assert!(
            !d.reserve(uid, JobId(2), 1, 16 << 30, None),
            "second cannot"
        );
        d.release(uid, JobId(2));
        // Job 1's hold still stands: only 8 GB effectively free.
        assert_eq!(d.get(uid).unwrap().total_free(), 8 << 30);
        assert!(indexed(&d, &spec(16 << 30, 1, None)).is_empty());
        d.release(uid, JobId(1));
        assert_eq!(d.get(uid).unwrap().total_free(), 24 << 30);
    }

    #[test]
    fn re_reserving_a_job_is_idempotent() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "x", gpus(1, GpuModel::Rtx3090), t(0));
        d.reserve(uid, JobId(1), 1, 8 << 30, None);
        d.reserve(uid, JobId(1), 1, 8 << 30, None);
        // One release restores everything: no double-counted slot bytes.
        d.release(uid, JobId(1));
        assert_eq!(d.get(uid).unwrap().total_free(), 24 << 30);
    }

    #[test]
    fn stale_detection() {
        let mut d = Directory::new();
        let (a, _) = d.register("m-1", "x", gpus(1, GpuModel::Rtx3090), t(0));
        let (b, _) = d.register("m-2", "y", gpus(1, GpuModel::Rtx3090), t(0));
        d.apply_heartbeat(a, t(100), 1, true, &[]);
        // b never heartbeats after registration at t=0; a is 12 s fresh.
        let stale = d.stale_nodes(t(112), SimDuration::from_secs(15));
        assert_eq!(stale, vec![b]);
        // Early in the run nothing can be stale (no underflow).
        assert!(d.stale_nodes(t(5), SimDuration::from_secs(15)).is_empty());
        // Offline nodes leave the staleness view.
        d.set_liveness(b, NodeLiveness::Offline);
        assert!(d.stale_nodes(t(112), SimDuration::from_secs(15)).is_empty());
    }

    #[test]
    fn liveness_gates_candidacy() {
        let mut d = Directory::new();
        let (uid, _) = d.register("m-1", "x", gpus(1, GpuModel::Rtx3090), t(0));
        let s = spec(1 << 30, 1, None);
        assert!(d.is_candidate(uid, &s));
        assert_eq!(
            d.set_liveness(uid, NodeLiveness::Paused),
            Some(NodeLiveness::Active)
        );
        assert!(!d.is_candidate(uid, &s));
        assert!(indexed(&d, &s).is_empty());
        assert_eq!(d.schedulable(), 0);
        d.set_liveness(uid, NodeLiveness::Active);
        assert_eq!(indexed(&d, &s), vec![uid]);
    }

    #[test]
    fn reliability_score_decays_with_interruptions() {
        let mut r = Reliability::new(t(0));
        assert_eq!(r.score(), 1.0);
        r.record_interruption(t(86_400)); // 1/day
        let s1 = r.score();
        r.record_interruption(t(86_400 + 3_600));
        let s2 = r.score();
        assert!(s1 < 1.0);
        assert!(s2 < s1);
    }

    #[test]
    fn candidates_match_brute_force_on_heterogeneous_fleet() {
        let mut d = Directory::new();
        let models = [
            GpuModel::Rtx3090,
            GpuModel::Rtx4090,
            GpuModel::A100_40,
            GpuModel::A100_80,
            GpuModel::A6000,
        ];
        for (i, m) in models.iter().cycle().take(25).enumerate() {
            d.register(
                &format!("m-{i}"),
                &format!("h-{i}"),
                gpus(1 + i % 3, *m),
                t(0),
            );
        }
        for mem_gb in [1u64, 8, 20, 30, 47, 60, 100] {
            for n_gpus in [1u8, 2, 3] {
                for cc in [None, Some((8, 0)), Some((8, 6)), Some((8, 9)), Some((9, 0))] {
                    let s = spec(mem_gb << 30, n_gpus, cc);
                    assert_eq!(
                        indexed(&d, &s),
                        brute_force(&d, &s),
                        "{mem_gb}GB×{n_gpus} {cc:?}"
                    );
                }
            }
        }
    }

    /// Shard counts the equivalence suite exercises: the degenerate single
    /// shard, a power of two, a prime, and the bench default.
    const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 16];

    /// Apply one proptest op tuple to a directory (shared by the sharded
    /// and unsharded equivalence proptests so both see identical worlds).
    fn apply_op(d: &mut Directory, op: u8, a: u64, b: u64) {
        let models = GpuModel::ALL;
        match op {
            0 => {
                let m = models[(a % 5) as usize];
                let n = 1 + (b % 4) as usize;
                d.register(&format!("m-{}", a), "h", gpus(n, m), t(b));
            }
            1 => {
                let stats: Vec<GpuStat> = (0..4)
                    .map(|i| GpuStat {
                        memory_used: (b.wrapping_mul(i + 1) % 48) << 30,
                        memory_total: 48 << 30,
                        utilization: 0.5,
                        temperature_c: 50.0,
                        power_w: 200.0,
                    })
                    .collect();
                d.apply_heartbeat(NodeUid(a), t(b), b, b % 3 != 0, &stats);
            }
            2 => {
                d.reserve(
                    NodeUid(a),
                    JobId(b),
                    1 + (b % 2) as u8,
                    (b % 24) << 30,
                    None,
                );
            }
            3 => d.release(NodeUid(a), JobId(b)),
            4 => {
                let l = match b % 4 {
                    0 => NodeLiveness::Active,
                    1 => NodeLiveness::Paused,
                    2 => NodeLiveness::Departing,
                    _ => NodeLiveness::Offline,
                };
                d.set_liveness(NodeUid(a), l);
            }
            _ => d.record_interruption(NodeUid(a), t(b)),
        }
    }

    /// Merged ordered views must be identical across shard counts — this
    /// is the "pick order is bit-identical" guarantee the scheduling pass
    /// depends on (candidate stream, least-loaded order, fastest-device
    /// order, round-robin order, staleness sweep order).
    fn assert_views_agree(reference: &Directory, sharded: &Directory, label: &str) {
        let s = spec(8 << 30, 1, None);
        let cand = |d: &Directory| d.candidates(&s).map(|e| e.uid).collect::<Vec<_>>();
        assert_eq!(cand(reference), cand(sharded), "{label}: candidate order");
        assert_eq!(
            reference.by_free_desc().collect::<Vec<_>>(),
            sharded.by_free_desc().collect::<Vec<_>>(),
            "{label}: by-free order"
        );
        assert_eq!(
            reference.by_speed_desc().collect::<Vec<_>>(),
            sharded.by_speed_desc().collect::<Vec<_>>(),
            "{label}: by-speed order"
        );
        for cursor in [0u64, 3, 11] {
            assert_eq!(
                reference
                    .round_robin_from(NodeUid(cursor))
                    .collect::<Vec<_>>(),
                sharded
                    .round_robin_from(NodeUid(cursor))
                    .collect::<Vec<_>>(),
                "{label}: round-robin order from {cursor}"
            );
        }
        assert_eq!(
            reference.stale_nodes(t(10_000), SimDuration::from_secs(15)),
            sharded.stale_nodes(t(10_000), SimDuration::from_secs(15)),
            "{label}: staleness sweep"
        );
        assert_eq!(
            reference.iter().map(|e| e.uid).collect::<Vec<_>>(),
            sharded.iter().map(|e| e.uid).collect::<Vec<_>>(),
            "{label}: iteration order"
        );
        assert_eq!(reference.len(), sharded.len(), "{label}: len");
        assert_eq!(
            reference.schedulable(),
            sharded.schedulable(),
            "{label}: schedulable"
        );
    }

    #[test]
    fn sharded_views_match_unsharded_on_heterogeneous_fleet() {
        let models = GpuModel::ALL;
        let mut dirs: Vec<Directory> = SHARD_COUNTS
            .iter()
            .map(|&n| Directory::with_shards(n))
            .collect();
        for d in &mut dirs {
            for (i, m) in models.iter().cycle().take(40).enumerate() {
                d.register(&format!("m-{i}"), "h", gpus(1 + i % 3, *m), t(i as u64));
            }
            // Perturb capacity so by-free ties and class moves exist.
            for i in 0..40u64 {
                if i % 3 == 0 {
                    d.reserve(NodeUid(i), JobId(i), 1, 8 << 30, None);
                }
                if i % 7 == 0 {
                    d.set_liveness(NodeUid(i), NodeLiveness::Paused);
                }
            }
        }
        let (reference, rest) = dirs.split_first().expect("non-empty");
        for (d, n) in rest.iter().zip(&SHARD_COUNTS[1..]) {
            assert_views_agree(reference, d, &format!("{n} shards"));
        }
    }

    proptest::proptest! {
        /// `candidates` must agree with the brute-force full scan after any
        /// interleaving of registrations, heartbeats, reservations,
        /// releases, and liveness flips.
        #[test]
        fn prop_candidates_agree_with_full_scan(
            ops in proptest::collection::vec((0u8..6, 0u64..12, 0u64..48), 1..120),
            mem_gb in 0u64..80,
            want_gpus in 1u8..4,
            cc_minor in proptest::option::of(0u8..10),
        ) {
            let mut d = Directory::new();
            for (op, a, b) in ops {
                apply_op(&mut d, op, a, b);
            }
            let s = spec(mem_gb << 30, want_gpus, cc_minor.map(|m| (8, m)));
            proptest::prop_assert_eq!(indexed(&d, &s), brute_force(&d, &s));
        }

        /// Sharding is invisible: after any mutation interleaving, every
        /// shard count in [`SHARD_COUNTS`] produces candidate streams,
        /// ordered views, and staleness sweeps **bit-identical** to the
        /// single-shard directory, and `candidates` still equals the
        /// brute-force scan.
        #[test]
        fn prop_sharded_directory_is_equivalent(
            ops in proptest::collection::vec((0u8..6, 0u64..12, 0u64..48), 1..100),
            mem_gb in 0u64..80,
            want_gpus in 1u8..4,
            cc_minor in proptest::option::of(0u8..10),
        ) {
            let mut dirs: Vec<Directory> =
                SHARD_COUNTS.iter().map(|&n| Directory::with_shards(n)).collect();
            for (op, a, b) in ops {
                for d in &mut dirs {
                    apply_op(d, op, a, b);
                }
            }
            let s = spec(mem_gb << 30, want_gpus, cc_minor.map(|m| (8, m)));
            let (reference, rest) = dirs.split_first().expect("non-empty");
            let want = brute_force(reference, &s);
            for (d, n) in rest.iter().zip(&SHARD_COUNTS[1..]) {
                // Exact stream order matches the unsharded directory…
                let a: Vec<NodeUid> = reference.candidates(&s).map(|e| e.uid).collect();
                let b: Vec<NodeUid> = d.candidates(&s).map(|e| e.uid).collect();
                proptest::prop_assert_eq!(a, b, "candidate order at {} shards", n);
                // …and the set equals the brute-force scan.
                proptest::prop_assert_eq!(indexed(d, &s), want.clone(), "{} shards", n);
                assert_views_agree(reference, d, &format!("{n} shards"));
            }
        }
    }

    proptest::proptest! {
        /// The actor boundary is invisible too: running the shards on
        /// worker threads behind SPSC inboxes — with a *seeded drain
        /// schedule* permuting the order shard replies are joined and
        /// gathered in — produces candidate streams, ordered views, and
        /// staleness sweeps bit-identical to the inline unsharded
        /// directory, and `candidates` still equals the brute-force scan.
        /// Order independence of the merge is the asserted property: the
        /// k-way merge keys embed the node uid, so *arrival* order of
        /// shard replies cannot leak into *result* order.
        #[test]
        fn prop_actorized_shards_are_equivalent(
            ops in proptest::collection::vec((0u8..6, 0u64..12, 0u64..48), 1..60),
            mem_gb in 0u64..80,
            want_gpus in 1u8..4,
            cc_minor in proptest::option::of(0u8..10),
            drain_seed in proptest::prelude::any::<u64>(),
        ) {
            let mut reference = Directory::new();
            let mut actors: Vec<(usize, usize, Directory)> = Vec::new();
            for &n in &SHARD_COUNTS {
                for workers in [1usize, 4] {
                    let mut d = Directory::with_shards_workers(n, workers);
                    d.set_drain_schedule(gpunion_des::drain_order(drain_seed, n));
                    actors.push((n, workers, d));
                }
            }
            for (op, a, b) in ops {
                apply_op(&mut reference, op, a, b);
                for (_, _, d) in &mut actors {
                    apply_op(d, op, a, b);
                }
            }
            let s = spec(mem_gb << 30, want_gpus, cc_minor.map(|m| (8, m)));
            let want = brute_force(&reference, &s);
            for (n, w, d) in &actors {
                let label = format!("{n} shards / {w} workers / drain {drain_seed:#x}");
                proptest::prop_assert_eq!(indexed(d, &s), want.clone(), "{}", &label);
                assert_views_agree(&reference, d, &label);
            }
        }
    }
}
