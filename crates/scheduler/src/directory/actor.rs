//! Shard actors: each directory shard's state lives behind its own
//! intent lane, applied either inline (the degenerate zero-thread actor)
//! or by a pool of worker threads.
//!
//! ## Shape
//!
//! Every mutation of a shard — register, heartbeat, reserve, release,
//! liveness, interruption — is a typed [`ShardIntent`] sent down the
//! owning shard's lane by the coordinator (the single producer). With
//! `worker_threads = 0` the intent is applied synchronously on the
//! caller's thread: the exact pre-actor code path, so single-shard
//! goldens stay byte-stable. With `worker_threads = W ≥ 1`, shard `i` is
//! pinned to worker `i % W` of a [`WorkerPool`] (the machinery shared
//! with the platform's parallel agent pump); each worker drains its
//! inbox FIFO, so every shard sees its intents in send order no matter
//! how threads are scheduled.
//!
//! ## The join point
//!
//! Reads never race mutations: before the directory looks at any shard
//! it waits at the shard's [`JoinPoint`](gpunion_des::JoinPoint) until
//! the lane has applied everything sent (`applied == sent`). Because the
//! producer is single-threaded and every read path joins first, the
//! state observed at a join point is a pure function of the intent
//! streams — bit-identical at any worker count. The scatter–gather read
//! views then *borrow* the quiesced shard state directly, which is what
//! lets the k-way-merged iterators (and their bit-identical merge-order
//! proof) survive the actorization unchanged.
//!
//! ## Safety
//!
//! Shard state sits in an [`UnsafeCell`] shared with the workers. The
//! aliasing discipline is the classic single-owner handoff:
//!
//! * a worker touches `cells[i]` only while applying an intent for lane
//!   `i`, and publishes completion with a release store ([`JoinPoint::
//!   mark`]);
//! * the producer dereferences `cells[i]` only after
//!   [`JoinPoint::wait`]-ing for its own sent count (acquire), at which
//!   point the lane is idle and stays idle until the *same* thread sends
//!   again — which it cannot do while a `&Shard` borrow is live, because
//!   sending requires `&mut ShardRuntime`.
//!
//! `debug_assert!`s on the counters check the protocol at every
//! dereference.

use super::shard::Shard;
use gpunion_des::{JoinPoint, SimTime, WorkerPool};
use gpunion_protocol::{GpuStat, JobId, NodeUid};
use std::cell::UnsafeCell;
use std::fmt;
use std::sync::Arc;

use super::entry::{NodeEntry, NodeLiveness};

/// A typed shard mutation, routed to the owning shard's lane. Variants
/// mirror [`Shard`]'s mutation methods one-to-one.
pub(crate) enum ShardIntent {
    /// Insert (or replace) a node entry. Boxed: entries are large and
    /// the inbox shouldn't be.
    Insert(Box<NodeEntry>),
    /// Apply a heartbeat's telemetry.
    ApplyHeartbeat {
        uid: NodeUid,
        now: SimTime,
        seq: u64,
        accepting: bool,
        stats: Vec<GpuStat>,
    },
    /// Reserve capacity for an in-flight offer. Replies `Bool`.
    Reserve {
        uid: NodeUid,
        job: JobId,
        gpus: u8,
        mem: u64,
        min_cc: Option<(u8, u8)>,
    },
    /// Release a job's reservation.
    Release { uid: NodeUid, job: JobId },
    /// Transition liveness. Replies `Liveness` (the previous value).
    SetLiveness {
        uid: NodeUid,
        liveness: NodeLiveness,
    },
    /// Record a provider interruption.
    RecordInterruption { uid: NodeUid, now: SimTime },
}

/// The reply a lane leaves in its slot after applying an intent. Only
/// `Reserve` and `SetLiveness` carry information; the rest overwrite the
/// slot with `None` (the slot always reflects the *latest* applied
/// intent, and the producer only reads it right after quiescing on an
/// intent it knows replies).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) enum ShardReply {
    #[default]
    None,
    Bool(bool),
    Liveness(Option<NodeLiveness>),
}

/// One shard's lane: the guarded state, its join point, and the reply
/// slot. Shared with the worker that owns the lane.
pub(crate) struct ShardCell {
    state: UnsafeCell<Shard>,
    join: JoinPoint,
    reply: UnsafeCell<ShardReply>,
}

// SAFETY: aliasing is excluded by the sent/applied protocol documented
// in the module header — the worker writes only mid-application, the
// producer reads only at quiescence, and `JoinPoint`'s release/acquire
// pair orders the handoff.
unsafe impl Sync for ShardCell {}

impl ShardCell {
    fn new() -> Self {
        ShardCell {
            state: UnsafeCell::new(Shard::default()),
            join: JoinPoint::new(),
            reply: UnsafeCell::new(ShardReply::None),
        }
    }

    /// Apply one intent to the guarded shard and stash its reply.
    ///
    /// # Safety
    /// Caller must be the lane's current owner: either the worker thread
    /// the lane is pinned to (mid-drain), or the producer in inline mode.
    unsafe fn apply(&self, intent: ShardIntent) {
        let shard = &mut *self.state.get();
        let reply = match intent {
            ShardIntent::Insert(entry) => {
                shard.insert(*entry);
                ShardReply::None
            }
            ShardIntent::ApplyHeartbeat {
                uid,
                now,
                seq,
                accepting,
                stats,
            } => {
                shard.apply_heartbeat(uid, now, seq, accepting, &stats);
                ShardReply::None
            }
            ShardIntent::Reserve {
                uid,
                job,
                gpus,
                mem,
                min_cc,
            } => ShardReply::Bool(shard.reserve(uid, job, gpus, mem, min_cc)),
            ShardIntent::Release { uid, job } => {
                shard.release(uid, job);
                ShardReply::None
            }
            ShardIntent::SetLiveness { uid, liveness } => {
                ShardReply::Liveness(shard.set_liveness(uid, liveness))
            }
            ShardIntent::RecordInterruption { uid, now } => {
                shard.record_interruption(uid, now);
                ShardReply::None
            }
        };
        // Written before `mark`, so the release store publishes it.
        *self.reply.get() = reply;
    }
}

/// The shard lanes plus the worker pool (empty = inline mode). The
/// threads themselves live in a [`WorkerPool`]; each worker's body keeps
/// the per-lane applied counts (only it applies intents for its lanes)
/// and marks the lane's join point after every application.
pub(crate) struct ShardRuntime {
    cells: Arc<Vec<ShardCell>>,
    /// Producer-side cumulative sent count per lane.
    sent: Vec<u64>,
    pool: WorkerPool<(usize, ShardIntent)>,
    /// The order lanes are joined (and gathered) in. Identity in
    /// production; tests permute it (seeded) to prove merged reads are
    /// independent of reply arrival order.
    drain: Vec<usize>,
}

impl ShardRuntime {
    /// `shards` lanes served by up to `workers` threads (0 = inline).
    pub(crate) fn new(shards: usize, workers: usize) -> Self {
        let shards = shards.max(1);
        let cells: Arc<Vec<ShardCell>> = Arc::new((0..shards).map(|_| ShardCell::new()).collect());
        let pool = WorkerPool::new(workers.min(shards), "dir-shard-worker", |_| {
            let cells = Arc::clone(&cells);
            let mut applied = vec![0u64; cells.len()];
            move |(i, intent): (usize, ShardIntent)| {
                // SAFETY: this worker owns lane `i` (pinning is static)
                // and the producer does not read before quiescence.
                unsafe { cells[i].apply(intent) };
                applied[i] += 1;
                cells[i].join.mark(applied[i]);
            }
        });
        ShardRuntime {
            sent: vec![0; shards],
            drain: (0..shards).collect(),
            cells,
            pool,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.cells.len()
    }

    /// Worker threads serving the lanes (0 = inline).
    pub(crate) fn worker_count(&self) -> usize {
        self.pool.worker_count()
    }

    pub(crate) fn is_inline(&self) -> bool {
        self.pool.is_empty()
    }

    /// The lane join/gather order (a permutation of `0..len`).
    pub(crate) fn drain_order(&self) -> &[usize] {
        &self.drain
    }

    /// Test scaffolding: join (and gather) lanes in `order` instead of
    /// lane order, simulating adversarial reply arrival. Must be a
    /// permutation of `0..len`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn set_drain_schedule(&mut self, order: Vec<usize>) {
        let mut check = order.clone();
        check.sort_unstable();
        assert!(
            check.into_iter().eq(0..self.cells.len()),
            "drain schedule must permute 0..{}",
            self.cells.len()
        );
        self.drain = order;
    }

    /// Send an intent down lane `i` (fire-and-forget). Inline mode
    /// applies it on the spot — the degenerate actor.
    pub(crate) fn send(&mut self, i: usize, intent: ShardIntent) {
        self.sent[i] += 1;
        match self.pool.is_empty() {
            true => {
                // SAFETY: no workers exist; this thread owns every lane.
                unsafe { self.cells[i].apply(intent) };
                self.cells[i].join.mark(self.sent[i]);
            }
            false => self.pool.send(i % self.pool.worker_count(), (i, intent)),
        }
    }

    /// Inline-mode escape hatch: run `f` directly on lane `i`'s shard,
    /// counted as one applied intent. Lets borrowing callers (heartbeat
    /// stats) skip the owned-intent copy when no workers exist.
    pub(crate) fn apply_inline<R>(&mut self, i: usize, f: impl FnOnce(&mut Shard) -> R) -> R {
        assert!(self.pool.is_empty(), "apply_inline with live workers");
        self.sent[i] += 1;
        // SAFETY: no workers exist; this thread owns every lane.
        let r = f(unsafe { &mut *self.cells[i].state.get() });
        self.cells[i].join.mark(self.sent[i]);
        r
    }

    /// Send an intent that replies, quiesce the lane, and return the
    /// reply.
    pub(crate) fn send_with_reply(&mut self, i: usize, intent: ShardIntent) -> ShardReply {
        self.send(i, intent);
        self.join_lane(i);
        // SAFETY: lane `i` is quiescent (just joined) and stays so while
        // we hold `&mut self`.
        unsafe { *self.cells[i].reply.get() }
    }

    /// Wait until lane `i` has applied everything sent to it.
    pub(crate) fn join_lane(&self, i: usize) {
        self.cells[i].join.wait(self.sent[i]);
    }

    /// The join point: quiesce every lane (in drain-schedule order, which
    /// cannot affect the state observed — property-tested).
    pub(crate) fn join_all(&self) {
        for &i in &self.drain {
            self.join_lane(i);
        }
    }

    /// Borrow lane `i`'s shard state. Caller must have joined the lane
    /// (checked in debug builds); the borrow keeps the runtime immutable,
    /// which keeps the lane idle.
    pub(crate) fn shard(&self, i: usize) -> &Shard {
        debug_assert!(
            self.cells[i].join.is_quiescent(self.sent[i]),
            "shard {i} read before its join point"
        );
        // SAFETY: lane is quiescent and no intent can be sent while the
        // returned borrow (tied to `&self`) is live.
        unsafe { &*self.cells[i].state.get() }
    }

    /// Borrow every shard, lane order, after a full join.
    pub(crate) fn joined_shards(&self) -> impl Iterator<Item = &Shard> + Clone {
        self.join_all();
        (0..self.cells.len()).map(|i| self.shard(i))
    }
}

impl fmt::Debug for ShardRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardRuntime")
            .field("shards", &self.cells.len())
            .field("workers", &self.pool.worker_count())
            .field("sent", &self.sent)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpunion_des::drain_order;
    use gpunion_gpu::GpuModel;
    use gpunion_protocol::GpuInfo;

    fn entry(uid: u64) -> Box<NodeEntry> {
        let gpus: Vec<GpuInfo> = vec![GpuModel::Rtx3090.into()];
        Box::new(NodeEntry::new(
            NodeUid(uid),
            format!("m-{uid}"),
            format!("h-{uid}"),
            gpus,
            SimTime::from_secs(1),
        ))
    }

    fn blast(rt: &mut ShardRuntime, lanes: usize) {
        for uid in 0..64u64 {
            rt.send((uid as usize) % lanes, ShardIntent::Insert(entry(uid)));
        }
        for uid in 0..64u64 {
            let i = (uid as usize) % lanes;
            rt.send(
                i,
                ShardIntent::Reserve {
                    uid: NodeUid(uid),
                    job: JobId(uid),
                    gpus: 1,
                    mem: 8 << 30,
                    min_cc: None,
                },
            );
            if uid % 3 == 0 {
                rt.send(
                    i,
                    ShardIntent::Release {
                        uid: NodeUid(uid),
                        job: JobId(uid),
                    },
                );
            }
        }
    }

    fn snapshot(rt: &ShardRuntime) -> Vec<(usize, Vec<NodeUid>, usize)> {
        rt.join_all();
        (0..rt.len())
            .map(|i| {
                let s = rt.shard(i);
                (i, s.nodes.keys().copied().collect(), s.index.schedulable())
            })
            .collect()
    }

    /// Threaded lanes converge to the same state as the inline
    /// degenerate actor, and the state read at the join point does not
    /// depend on the (seeded, permuted) order lanes are joined in.
    #[test]
    fn threaded_lanes_match_inline_under_permuted_joins() {
        const LANES: usize = 7;
        let mut inline = ShardRuntime::new(LANES, 0);
        blast(&mut inline, LANES);
        let want = snapshot(&inline);
        for workers in [1usize, 2, 4] {
            let mut rt = ShardRuntime::new(LANES, workers);
            blast(&mut rt, LANES);
            for seed in [0u64, 7, 99] {
                rt.set_drain_schedule(drain_order(seed, LANES));
                assert_eq!(snapshot(&rt), want, "{workers} workers, drain seed {seed}");
            }
        }
    }

    /// A replying intent round-trips through a worker thread.
    #[test]
    fn reserve_reply_crosses_the_join_point() {
        let mut rt = ShardRuntime::new(2, 1);
        rt.send(0, ShardIntent::Insert(entry(0)));
        let r = rt.send_with_reply(
            0,
            ShardIntent::Reserve {
                uid: NodeUid(0),
                job: JobId(1),
                gpus: 1,
                mem: 8 << 30,
                min_cc: None,
            },
        );
        assert!(matches!(r, ShardReply::Bool(true)), "{r:?}");
        // Oversubscribe: the same slot can't be double-reserved.
        let r = rt.send_with_reply(
            0,
            ShardIntent::Reserve {
                uid: NodeUid(0),
                job: JobId(2),
                gpus: 1,
                mem: 20 << 30,
                min_cc: None,
            },
        );
        assert!(matches!(r, ShardReply::Bool(false)), "{r:?}");
    }
}
