//! # gpunion-simnet — the simulated campus LAN
//!
//! The paper deploys GPUnion on a university network: 11 GPU servers behind
//! campus switches, a CPU-only coordinator, 1 Gb/s access links and a fat
//! backbone. This crate reproduces that substrate as a flow-level network
//! model:
//!
//! * [`Topology`] — nodes, full-duplex links, BFS routing, link/node churn.
//! * [`Network::send`] — control-plane messages with propagation +
//!   store-and-forward latency and optional loss injection.
//! * [`Network::start_flow`] — bulk transfers (checkpoints, migrations,
//!   image pulls) sharing links by **max-min fairness** (progressive
//!   filling), the standard fluid approximation for long-lived TCP flows.
//! * [`Accounting`] — every byte attributed to a [`TrafficClass`] and a time
//!   bucket, so the paper's "backup traffic < 2 % of campus bandwidth"
//!   analysis can be recomputed from a run.
//!
//! The crate is deliberately passive (no event scheduling): the embedding
//! event loop polls [`Network::next_event_at`] / [`Network::poll`].

pub mod accounting;
pub mod bandwidth;
pub mod flow;
pub mod message;
pub mod network;
pub mod topology;

pub use accounting::{Accounting, TrafficClass};
pub use bandwidth::Bandwidth;
pub use flow::{FlowEnd, FlowId, FlowOutcome, FlowTable};
pub use message::{Delivery, MessageQueue};
pub use network::{NetError, NetEvent, Network};
pub use topology::{star_campus, Channel, LinkId, NodeId, Topology, TopologyBuilder};

#[cfg(test)]
mod proptests {
    use super::*;
    use gpunion_des::{SimDuration, SimTime};
    use proptest::prelude::*;

    /// Build a random star topology and a random flow set; check the
    /// max-min allocation invariants.
    fn star_with_flows(
        n_hosts: usize,
        access_mbps: Vec<f64>,
        flow_pairs: Vec<(usize, usize)>,
    ) -> (Topology, FlowTable) {
        let mut b = TopologyBuilder::new();
        let sw = b.add_node("sw");
        let mut hosts = Vec::new();
        for (i, m) in access_mbps.iter().enumerate().take(n_hosts) {
            let h = b.add_node(format!("h{i}"));
            b.add_link(h, sw, Bandwidth::mbps(*m), SimDuration::ZERO);
            hosts.push(h);
        }
        let mut topo = b.build();
        let mut ft = FlowTable::new(Bandwidth::gbps(16.0));
        for (s, d) in flow_pairs {
            let (s, d) = (s % hosts.len(), d % hosts.len());
            if s == d {
                continue;
            }
            let path = topo.route(hosts[s], hosts[d]).unwrap();
            ft.add(path, 1 << 40, TrafficClass::User);
        }
        ft.reallocate(&topo);
        (topo, ft)
    }

    proptest! {
        /// No channel is allocated beyond its capacity.
        #[test]
        fn max_min_never_oversubscribes(
            access in proptest::collection::vec(10.0f64..1000.0, 2..8),
            pairs in proptest::collection::vec((0usize..8, 0usize..8), 1..20),
        ) {
            let n = access.len();
            let (topo, ft) = star_with_flows(n, access.clone(), pairs);
            // Check every directed channel of every link.
            for l in 0..topo.link_count() {
                let link = LinkId(l as u32);
                let (a, bnode) = topo.link_endpoints(link);
                for (from, to) in [(a, bnode), (bnode, a)] {
                    let ch = Channel { link, from, to };
                    let load = ft.channel_load(ch);
                    let cap = topo.link_capacity(link).bytes_per_sec();
                    prop_assert!(load <= cap * 1.000001 + 1.0,
                        "channel load {load} exceeds cap {cap}");
                }
            }
        }

        /// Every flow gets a strictly positive rate when all links are up.
        #[test]
        fn max_min_starvation_free(
            access in proptest::collection::vec(10.0f64..1000.0, 2..8),
            pairs in proptest::collection::vec((0usize..8, 0usize..8), 1..20),
        ) {
            let n = access.len();
            let (_topo, ft) = star_with_flows(n, access, pairs);
            for (id, _) in ft.active() {
                prop_assert!(ft.rate(id).unwrap() > 0.0, "flow {id:?} starved");
            }
        }

        /// Conservation: bytes recorded in accounting equal bytes drained
        /// from flows (for network flows).
        #[test]
        fn advance_conserves_bytes(
            bytes in 1_000u64..100_000_000,
            secs in 1u64..20,
        ) {
            let (topo, hosts, coord, _) = star_campus(
                2, Bandwidth::gbps(1.0), Bandwidth::gbps(10.0), SimDuration::ZERO);
            let mut net: Network<u32> = Network::new(topo, Bandwidth::gbps(16.0), 1);
            let id = net.start_flow(SimTime::ZERO, hosts[0], coord, bytes, TrafficClass::Checkpoint, 0).unwrap();
            let _ = net.poll(SimTime::from_secs(secs));
            let acct_bytes = net.accounting().class_total(TrafficClass::Checkpoint);
            let path_len = 2.0; // host→switch→coord
            match net.flow_progress(id) {
                Some(p) => {
                    let moved = bytes as f64 * p;
                    prop_assert!((acct_bytes - moved * path_len).abs() < 16.0,
                        "acct {acct_bytes} vs moved {moved} × {path_len}");
                }
                None => {
                    // Completed: all bytes accounted on both links.
                    prop_assert!((acct_bytes - bytes as f64 * path_len).abs() < 16.0,
                        "acct {acct_bytes} vs total {bytes} × {path_len}");
                }
            }
        }

        /// Routing never returns a path through a down node/link, for random
        /// up/down patterns.
        #[test]
        fn routes_avoid_down_elements(downs in proptest::collection::vec(any::<bool>(), 6)) {
            let (mut topo, hosts, coord, _) = star_campus(
                6, Bandwidth::gbps(1.0), Bandwidth::gbps(10.0), SimDuration::ZERO);
            for (h, down) in hosts.iter().zip(&downs) {
                if *down {
                    topo.set_node_up(*h, false);
                }
            }
            for (i, h) in hosts.iter().enumerate() {
                let r = topo.route(*h, coord);
                if downs[i] {
                    prop_assert!(r.is_none());
                } else {
                    let path = r.unwrap();
                    for ch in path {
                        prop_assert!(topo.node_up(ch.from) && topo.node_up(ch.to));
                        prop_assert!(topo.link_up(ch.link));
                    }
                }
            }
        }
    }
}
