//! Control-plane message delivery queue.
//!
//! Heartbeats, dispatch orders, acknowledgements and other small messages are
//! delivered after the path's propagation + store-and-forward transmission
//! delay. Unlike flows they are not rate-shared: control traffic is tiny
//! relative to link capacity (the paper's agents exchange JSON over REST),
//! so queueing delay is negligible and modelling it would add noise, not
//! fidelity.

use crate::topology::NodeId;
use gpunion_des::SimTime;
use std::collections::BTreeMap;

/// A message awaiting delivery.
#[derive(Debug, Clone)]
pub struct Delivery<M> {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Opaque payload owned by the caller (protocol messages in GPUnion).
    pub payload: M,
    /// Wire size used for latency and accounting.
    pub size_bytes: u32,
}

/// Time-ordered pending message queue.
#[derive(Debug)]
pub struct MessageQueue<M> {
    pending: BTreeMap<(SimTime, u64), Delivery<M>>,
    seq: u64,
}

impl<M> Default for MessageQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> MessageQueue<M> {
    /// Empty queue.
    pub fn new() -> Self {
        MessageQueue {
            pending: BTreeMap::new(),
            seq: 0,
        }
    }

    /// Number of undelivered messages.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Enqueue a message for delivery at `at`. Messages enqueued for the
    /// same instant are delivered in enqueue order.
    pub fn enqueue(&mut self, at: SimTime, delivery: Delivery<M>) {
        let key = (at, self.seq);
        self.seq += 1;
        self.pending.insert(key, delivery);
    }

    /// The earliest pending delivery time.
    pub fn next_at(&self) -> Option<SimTime> {
        self.pending.keys().next().map(|(t, _)| *t)
    }

    /// Remove and return all messages due at or before `now`, in time order.
    pub fn drain_due(&mut self, now: SimTime) -> Vec<Delivery<M>> {
        let mut due = Vec::new();
        while let Some((&(t, s), _)) = self.pending.first_key_value() {
            if t > now {
                break;
            }
            let d = self.pending.remove(&(t, s)).expect("just observed");
            due.push(d);
        }
        due
    }

    /// Drop every in-flight message to or from `node` (the node went down
    /// while packets were in the air). Returns how many were lost.
    pub fn drop_involving(&mut self, node: NodeId) -> usize {
        let before = self.pending.len();
        self.pending.retain(|_, d| d.from != node && d.to != node);
        before - self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(from: u32, to: u32, tag: &'static str) -> Delivery<&'static str> {
        Delivery {
            from: NodeId(from),
            to: NodeId(to),
            payload: tag,
            size_bytes: 100,
        }
    }

    #[test]
    fn drain_respects_time_and_order() {
        let mut q = MessageQueue::new();
        q.enqueue(SimTime::from_secs(2), d(0, 1, "b"));
        q.enqueue(SimTime::from_secs(1), d(0, 1, "a"));
        q.enqueue(SimTime::from_secs(1), d(0, 1, "a2"));
        q.enqueue(SimTime::from_secs(3), d(0, 1, "c"));
        assert_eq!(q.next_at(), Some(SimTime::from_secs(1)));

        let due = q.drain_due(SimTime::from_secs(2));
        assert_eq!(
            due.iter().map(|m| m.payload).collect::<Vec<_>>(),
            vec!["a", "a2", "b"]
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_at(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn drain_when_empty() {
        let mut q: MessageQueue<()> = MessageQueue::new();
        assert!(q.drain_due(SimTime::MAX).is_empty());
        assert_eq!(q.next_at(), None);
    }

    #[test]
    fn drop_involving_node() {
        let mut q = MessageQueue::new();
        q.enqueue(SimTime::from_secs(1), d(0, 1, "keep? no, from 0"));
        q.enqueue(SimTime::from_secs(1), d(1, 2, "involves 1"));
        q.enqueue(SimTime::from_secs(1), d(2, 3, "keep"));
        let dropped = q.drop_involving(NodeId(1));
        assert_eq!(dropped, 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.drain_due(SimTime::MAX)[0].payload, "keep");
    }
}
