//! Link bandwidth as a strongly-typed quantity.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// Link capacity in bits per second.
///
/// Campus deployments in the paper use 1 Gb/s access links and a 10 Gb/s
/// backbone; constructors are provided for the common units.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero capacity (a down link).
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// From raw bits per second.
    pub fn bps(bits_per_sec: f64) -> Self {
        assert!(
            bits_per_sec.is_finite() && bits_per_sec >= 0.0,
            "bandwidth must be finite and non-negative"
        );
        Bandwidth(bits_per_sec)
    }

    /// From megabits per second.
    pub fn mbps(v: f64) -> Self {
        Bandwidth::bps(v * 1e6)
    }

    /// From gigabits per second.
    pub fn gbps(v: f64) -> Self {
        Bandwidth::bps(v * 1e9)
    }

    /// Raw bits per second.
    pub fn as_bps(self) -> f64 {
        self.0
    }

    /// Bytes per second (bits / 8).
    pub fn bytes_per_sec(self) -> f64 {
        self.0 / 8.0
    }

    /// Seconds to transmit `bytes` at this rate. Infinite for zero capacity.
    pub fn transfer_secs(self, bytes: u64) -> f64 {
        if self.0 <= 0.0 {
            f64::INFINITY
        } else {
            bytes as f64 / self.bytes_per_sec()
        }
    }

    /// True when no capacity remains (≤ ~1 bit/s guard band against float dust).
    pub fn is_exhausted(self) -> bool {
        self.0 <= 1.0
    }

    /// Clamp to non-negative (protects subtraction chains from float error).
    pub fn clamp_non_negative(self) -> Bandwidth {
        Bandwidth(self.0.max(0.0))
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth((self.0 * rhs).max(0.0))
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 / rhs)
    }
}

impl Div for Bandwidth {
    type Output = f64;
    fn div(self, rhs: Bandwidth) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2} Gb/s", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.1} Mb/s", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.1} kb/s", self.0 / 1e3)
        } else {
            write!(f, "{:.0} b/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors() {
        assert_eq!(Bandwidth::gbps(1.0).as_bps(), 1e9);
        assert_eq!(Bandwidth::mbps(100.0).as_bps(), 1e8);
        assert_eq!(Bandwidth::gbps(1.0).bytes_per_sec(), 1.25e8);
    }

    #[test]
    fn transfer_time() {
        // 1 GiB over 1 Gb/s ≈ 8.59 s
        let t = Bandwidth::gbps(1.0).transfer_secs(1 << 30);
        assert!((t - 8.589934592).abs() < 1e-6, "{t}");
        assert!(Bandwidth::ZERO.transfer_secs(1).is_infinite());
    }

    #[test]
    fn subtraction_saturates() {
        let a = Bandwidth::mbps(10.0);
        let b = Bandwidth::mbps(30.0);
        assert_eq!(a - b, Bandwidth::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(Bandwidth::gbps(10.0).to_string(), "10.00 Gb/s");
        assert_eq!(Bandwidth::mbps(2.5).to_string(), "2.5 Mb/s");
        assert_eq!(Bandwidth::bps(500.0).to_string(), "500 b/s");
    }

    #[test]
    #[should_panic]
    fn negative_bandwidth_rejected() {
        Bandwidth::bps(-1.0);
    }
}
