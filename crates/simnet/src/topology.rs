//! Campus network topology: nodes, links, and shortest-path routing.
//!
//! A topology is an undirected multigraph of nodes (servers, workstations,
//! switches) and links. Internally each undirected link is a pair of directed
//! channels so that full-duplex capacity is modelled correctly: a checkpoint
//! upload does not steal capacity from a concurrent image pull in the other
//! direction.

use crate::bandwidth::Bandwidth;
use gpunion_des::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// A network endpoint (server, workstation, switch, or the coordinator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// An undirected link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// One direction of a link: `link` traversed from `from` towards `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Channel {
    /// The underlying undirected link.
    pub link: LinkId,
    /// Source endpoint of this direction.
    pub from: NodeId,
    /// Destination endpoint of this direction.
    pub to: NodeId,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct NodeInfo {
    pub name: String,
    pub up: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct LinkInfo {
    pub a: NodeId,
    pub b: NodeId,
    pub capacity: Bandwidth,
    pub latency: SimDuration,
    pub up: bool,
}

/// The campus graph. Built once via [`TopologyBuilder`], then queried for
/// routes. Routes are recomputed lazily after link/node state changes.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeInfo>,
    links: Vec<LinkInfo>,
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
    route_cache: HashMap<(NodeId, NodeId), Option<Vec<Channel>>>,
}

/// Incremental builder for [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<NodeInfo>,
    links: Vec<LinkInfo>,
}

impl TopologyBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a named node; the name is for reports and debugging only.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeInfo {
            name: name.into(),
            up: true,
        });
        id
    }

    /// Add an undirected link with symmetric capacity and propagation latency.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: Bandwidth,
        latency: SimDuration,
    ) -> LinkId {
        assert!(a != b, "self-links are not allowed");
        assert!((a.0 as usize) < self.nodes.len() && (b.0 as usize) < self.nodes.len());
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkInfo {
            a,
            b,
            capacity,
            latency,
            up: true,
        });
        id
    }

    /// Finalize into a queryable topology.
    pub fn build(self) -> Topology {
        let mut adjacency = vec![Vec::new(); self.nodes.len()];
        for (i, l) in self.links.iter().enumerate() {
            adjacency[l.a.0 as usize].push((l.b, LinkId(i as u32)));
            adjacency[l.b.0 as usize].push((l.a, LinkId(i as u32)));
        }
        Topology {
            nodes: self.nodes,
            links: self.links,
            adjacency,
            route_cache: HashMap::new(),
        }
    }
}

impl Topology {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node name given at build time.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.nodes[n.0 as usize].name
    }

    /// Is the node currently up?
    pub fn node_up(&self, n: NodeId) -> bool {
        self.nodes[n.0 as usize].up
    }

    /// Is the link currently up?
    pub fn link_up(&self, l: LinkId) -> bool {
        self.links[l.0 as usize].up
    }

    /// Capacity of one direction of the link.
    pub fn link_capacity(&self, l: LinkId) -> Bandwidth {
        self.links[l.0 as usize].capacity
    }

    /// Propagation latency of the link.
    pub fn link_latency(&self, l: LinkId) -> SimDuration {
        self.links[l.0 as usize].latency
    }

    /// The two endpoints of a link.
    pub fn link_endpoints(&self, l: LinkId) -> (NodeId, NodeId) {
        let li = &self.links[l.0 as usize];
        (li.a, li.b)
    }

    /// The link directly connecting two nodes, if one exists.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        (0..self.links.len() as u32).map(LinkId).find(|&l| {
            let (x, y) = self.link_endpoints(l);
            (x, y) == (a, b) || (x, y) == (b, a)
        })
    }

    /// Mark a node up or down. Invalidates the route cache.
    pub fn set_node_up(&mut self, n: NodeId, up: bool) {
        if self.nodes[n.0 as usize].up != up {
            self.nodes[n.0 as usize].up = up;
            self.route_cache.clear();
        }
    }

    /// Mark a link up or down. Invalidates the route cache.
    pub fn set_link_up(&mut self, l: LinkId, up: bool) {
        if self.links[l.0 as usize].up != up {
            self.links[l.0 as usize].up = up;
            self.route_cache.clear();
        }
    }

    /// Shortest path (fewest hops) from `src` to `dst` as directed channels,
    /// skipping down nodes and links. `None` when unreachable. Cached until
    /// the next topology change.
    pub fn route(&mut self, src: NodeId, dst: NodeId) -> Option<Vec<Channel>> {
        if src == dst {
            return Some(Vec::new());
        }
        if let Some(cached) = self.route_cache.get(&(src, dst)) {
            return cached.clone();
        }
        let computed = self.bfs(src, dst);
        self.route_cache.insert((src, dst), computed.clone());
        computed
    }

    fn bfs(&self, src: NodeId, dst: NodeId) -> Option<Vec<Channel>> {
        if !self.node_up(src) || !self.node_up(dst) {
            return None;
        }
        let n = self.nodes.len();
        let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut q = VecDeque::new();
        visited[src.0 as usize] = true;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            if u == dst {
                break;
            }
            for &(v, l) in &self.adjacency[u.0 as usize] {
                if visited[v.0 as usize] || !self.link_up(l) || !self.node_up(v) {
                    continue;
                }
                visited[v.0 as usize] = true;
                prev[v.0 as usize] = Some((u, l));
                q.push_back(v);
            }
        }
        if !visited[dst.0 as usize] {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = dst;
        while cur != src {
            let (p, l) = prev[cur.0 as usize].expect("visited implies predecessor");
            path.push(Channel {
                link: l,
                from: p,
                to: cur,
            });
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Sum of propagation latencies along a path.
    pub fn path_latency(&self, path: &[Channel]) -> SimDuration {
        path.iter()
            .fold(SimDuration::ZERO, |acc, c| acc + self.link_latency(c.link))
    }

    /// The minimum link capacity along a path (the path's bottleneck).
    pub fn path_bottleneck(&self, path: &[Channel]) -> Bandwidth {
        path.iter()
            .map(|c| self.link_capacity(c.link))
            .fold(Bandwidth::bps(f64::MAX), |a, b| if b < a { b } else { a })
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }
}

/// Convenience constructor for the standard campus shape used throughout the
/// reproduction: `n_hosts` hosts hanging off one backbone switch, each via a
/// 1 Gb/s access link, with the given coordinator attached at 10 Gb/s.
///
/// Returns `(topology, host_ids, coordinator_id, switch_id)`.
pub fn star_campus(
    n_hosts: usize,
    access: Bandwidth,
    backbone: Bandwidth,
    access_latency: SimDuration,
) -> (Topology, Vec<NodeId>, NodeId, NodeId) {
    let mut b = TopologyBuilder::new();
    let switch = b.add_node("campus-switch");
    let coordinator = b.add_node("coordinator");
    b.add_link(coordinator, switch, backbone, access_latency);
    let mut hosts = Vec::with_capacity(n_hosts);
    for i in 0..n_hosts {
        let h = b.add_node(format!("host-{i}"));
        b.add_link(h, switch, access, access_latency);
        hosts.push(h);
    }
    (b.build(), hosts, coordinator, switch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> (Topology, NodeId, NodeId, NodeId, LinkId, LinkId) {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let m = b.add_node("m");
        let c = b.add_node("c");
        let l1 = b.add_link(a, m, Bandwidth::gbps(1.0), SimDuration::from_micros(10));
        let l2 = b.add_link(m, c, Bandwidth::gbps(10.0), SimDuration::from_micros(20));
        (b.build(), a, m, c, l1, l2)
    }

    #[test]
    fn route_through_middle() {
        let (mut t, a, m, c, l1, l2) = line3();
        let path = t.route(a, c).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].link, l1);
        assert_eq!(path[0].from, a);
        assert_eq!(path[0].to, m);
        assert_eq!(path[1].link, l2);
        assert_eq!(path[1].to, c);
        assert_eq!(t.path_latency(&path), SimDuration::from_micros(30));
        assert_eq!(t.path_bottleneck(&path), Bandwidth::gbps(1.0));
    }

    #[test]
    fn route_to_self_is_empty() {
        let (mut t, a, ..) = line3();
        assert_eq!(t.route(a, a), Some(vec![]));
    }

    #[test]
    fn down_link_breaks_route() {
        let (mut t, a, _, c, l1, _) = line3();
        t.set_link_up(l1, false);
        assert_eq!(t.route(a, c), None);
        t.set_link_up(l1, true);
        assert!(t.route(a, c).is_some(), "cache must be invalidated");
    }

    #[test]
    fn down_node_breaks_route() {
        let (mut t, a, m, c, ..) = line3();
        t.set_node_up(m, false);
        assert_eq!(t.route(a, c), None);
        assert_eq!(t.route(a, m), None, "down destination unreachable");
    }

    #[test]
    fn star_campus_shape() {
        let (mut t, hosts, coord, switch) = star_campus(
            11,
            Bandwidth::gbps(1.0),
            Bandwidth::gbps(10.0),
            SimDuration::from_micros(50),
        );
        assert_eq!(t.node_count(), 13);
        assert_eq!(t.link_count(), 12);
        assert_eq!(hosts.len(), 11);
        let p = t.route(hosts[0], coord).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].to, switch);
        // host-to-host goes via the switch
        let p = t.route(hosts[3], hosts[7]).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn bfs_finds_shortest_of_multiple_paths() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let x = b.add_node("x");
        let y = b.add_node("y");
        let d = b.add_node("d");
        // long path a-x-y-d, short path a-d
        b.add_link(a, x, Bandwidth::gbps(1.0), SimDuration::ZERO);
        b.add_link(x, y, Bandwidth::gbps(1.0), SimDuration::ZERO);
        b.add_link(y, d, Bandwidth::gbps(1.0), SimDuration::ZERO);
        b.add_link(a, d, Bandwidth::mbps(10.0), SimDuration::ZERO);
        let mut t = b.build();
        assert_eq!(t.route(a, d).unwrap().len(), 1);
    }

    #[test]
    #[should_panic]
    fn self_link_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        b.add_link(a, a, Bandwidth::gbps(1.0), SimDuration::ZERO);
    }
}
