//! Bulk transfers as fluid flows with max-min fair bandwidth sharing.
//!
//! Checkpoint backups, migrations, and image pulls are modelled as *flows*:
//! a byte count draining at a rate decided by a max-min fair allocation over
//! every directed channel the flow crosses (the classic progressive-filling
//! algorithm). Whenever the flow set or topology changes, rates are
//! recomputed and every flow's completion deadline moves accordingly — the
//! same fluid approximation used by flow-level network simulators.
//!
//! Invariants (checked by property tests):
//! * no channel's summed allocation exceeds its capacity (within float dust);
//! * the allocation is Pareto-efficient: every flow is bottlenecked on at
//!   least one saturated channel (or runs at the local-copy rate).

use crate::accounting::{Accounting, TrafficClass};
use crate::bandwidth::Bandwidth;
use crate::topology::{Channel, Topology};
use gpunion_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of an in-flight bulk transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u64);

/// Why a flow left the flow table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowOutcome {
    /// All bytes delivered.
    Completed,
    /// Cancelled by the caller (e.g. workload killed mid-checkpoint).
    Cancelled,
    /// A node or link on the path went down and no reroute was possible.
    PathLost,
}

#[derive(Debug, Clone)]
struct Flow {
    id: FlowId,
    class: TrafficClass,
    path: Vec<Channel>,
    total_bytes: f64,
    remaining: f64,
    /// Current allocated rate in bytes/sec.
    rate: f64,
}

/// A completed/failed flow notification produced by [`FlowTable::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEnd {
    /// Which flow ended.
    pub id: FlowId,
    /// How it ended.
    pub outcome: FlowOutcome,
}

/// The set of active flows plus the fair-share allocator.
#[derive(Debug)]
pub struct FlowTable {
    flows: HashMap<FlowId, Flow>,
    next_id: u64,
    last_advance: SimTime,
    /// Rate applied to flows with an empty path (src == dst local copies):
    /// models local disk bandwidth rather than the network.
    local_rate: Bandwidth,
    dirty: bool,
}

/// Completion epsilon: a flow with less than half a byte left is done.
const EPSILON_BYTES: f64 = 0.5;

impl FlowTable {
    /// Empty table. `local_rate` is used for same-node transfers.
    pub fn new(local_rate: Bandwidth) -> Self {
        FlowTable {
            flows: HashMap::new(),
            next_id: 0,
            last_advance: SimTime::ZERO,
            local_rate,
            dirty: false,
        }
    }

    /// Number of active flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows are active.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Begin a flow of `bytes` along `path` (empty path = local copy).
    /// Call [`FlowTable::advance`] to `now` *before* adding, then
    /// [`FlowTable::reallocate`] after.
    pub fn add(&mut self, path: Vec<Channel>, bytes: u64, class: TrafficClass) -> FlowId {
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                id,
                class,
                path,
                total_bytes: bytes as f64,
                remaining: bytes as f64,
                rate: 0.0,
            },
        );
        self.dirty = true;
        id
    }

    /// Remove a flow (cancellation). Returns true if it existed.
    pub fn remove(&mut self, id: FlowId) -> bool {
        let existed = self.flows.remove(&id).is_some();
        if existed {
            self.dirty = true;
        }
        existed
    }

    /// Fraction of the flow already delivered, if it is still active.
    pub fn progress(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| {
            if f.total_bytes <= 0.0 {
                1.0
            } else {
                1.0 - f.remaining / f.total_bytes
            }
        })
    }

    /// Bytes remaining for an active flow.
    pub fn remaining_bytes(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining)
    }

    /// Current rate (bytes/sec) of an active flow.
    pub fn rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// Integrate all flows forward to `now`, debiting delivered bytes into
    /// `accounting` and returning flows that finished in the interval.
    ///
    /// Completions are detected at `now`; the caller should schedule wakes at
    /// [`FlowTable::next_completion`] so no completion is observed late.
    pub fn advance(&mut self, now: SimTime, accounting: &mut Accounting) -> Vec<FlowEnd> {
        let from = self.last_advance;
        if now < from {
            return Vec::new();
        }
        let dt = now.since(from).as_secs_f64();
        let mut done = Vec::new();
        if dt > 0.0 {
            for f in self.flows.values_mut() {
                if f.rate <= 0.0 {
                    continue;
                }
                let moved = (f.rate * dt).min(f.remaining);
                f.remaining -= moved;
                for ch in &f.path {
                    accounting.record_span(ch.link, f.class, from, now, moved);
                }
                if f.path.is_empty() {
                    // Local copies never touch a link but still take time.
                }
                if f.remaining <= EPSILON_BYTES {
                    done.push(FlowEnd {
                        id: f.id,
                        outcome: FlowOutcome::Completed,
                    });
                }
            }
            for d in &done {
                self.flows.remove(&d.id);
            }
            if !done.is_empty() {
                self.dirty = true;
            }
        }
        self.last_advance = now;
        done
    }

    /// Drop every flow whose path crosses a now-down link or node; returns
    /// the lost flows. Call after topology changes.
    pub fn fail_broken_paths(&mut self, topo: &Topology) -> Vec<FlowEnd> {
        let mut lost = Vec::new();
        self.flows.retain(|id, f| {
            let broken = f
                .path
                .iter()
                .any(|ch| !topo.link_up(ch.link) || !topo.node_up(ch.from) || !topo.node_up(ch.to));
            if broken {
                lost.push(FlowEnd {
                    id: *id,
                    outcome: FlowOutcome::PathLost,
                });
            }
            !broken
        });
        if !lost.is_empty() {
            self.dirty = true;
        }
        lost
    }

    /// Recompute the max-min fair allocation if the flow set changed.
    /// Returns true when any rate changed.
    pub fn reallocate(&mut self, topo: &Topology) -> bool {
        if !self.dirty {
            return false;
        }
        self.dirty = false;
        self.max_min(topo);
        true
    }

    /// Progressive-filling max-min fairness over directed channels.
    fn max_min(&mut self, topo: &Topology) {
        // Channel capacities in bytes/sec, only for channels in use.
        let mut cap: HashMap<Channel, f64> = HashMap::new();
        let mut users: HashMap<Channel, Vec<FlowId>> = HashMap::new();
        let mut unfixed: Vec<FlowId> = Vec::new();
        for f in self.flows.values_mut() {
            if f.path.is_empty() {
                f.rate = self.local_rate.bytes_per_sec();
                continue;
            }
            f.rate = 0.0;
            unfixed.push(f.id);
            for ch in &f.path {
                cap.entry(*ch)
                    .or_insert_with(|| topo.link_capacity(ch.link).bytes_per_sec());
                users.entry(*ch).or_default().push(f.id);
            }
        }

        let mut remaining_users: HashMap<Channel, usize> =
            users.iter().map(|(c, v)| (*c, v.len())).collect();
        let mut fixed: HashMap<FlowId, f64> = HashMap::new();

        while fixed.len() < unfixed.len() {
            // Find the bottleneck channel: min capacity / active users.
            let mut bottleneck: Option<(Channel, f64)> = None;
            for (ch, &n) in &remaining_users {
                if n == 0 {
                    continue;
                }
                let fair = cap[ch] / n as f64;
                match bottleneck {
                    Some((_, best)) if fair >= best => {}
                    _ => bottleneck = Some((*ch, fair)),
                }
            }
            let Some((bch, rate)) = bottleneck else { break };
            let rate = rate.max(0.0);
            // Fix every unfixed flow crossing the bottleneck at `rate`.
            let flows_here: Vec<FlowId> = users[&bch]
                .iter()
                .copied()
                .filter(|id| !fixed.contains_key(id))
                .collect();
            debug_assert!(!flows_here.is_empty(), "bottleneck must have users");
            for id in flows_here {
                fixed.insert(id, rate);
                let path = self.flows[&id].path.clone();
                for ch in path {
                    if let Some(c) = cap.get_mut(&ch) {
                        *c = (*c - rate).max(0.0);
                    }
                    if let Some(n) = remaining_users.get_mut(&ch) {
                        *n = n.saturating_sub(1);
                    }
                }
            }
        }

        for (id, rate) in fixed {
            if let Some(f) = self.flows.get_mut(&id) {
                f.rate = rate;
            }
        }
    }

    /// Earliest time any flow will complete at current rates, if any flow is
    /// active and draining.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.flows
            .values()
            .filter(|f| f.rate > 0.0)
            .map(|f| {
                let secs = (f.remaining - EPSILON_BYTES).max(0.0) / f.rate;
                // Round up to the next nanosecond so the completion check at
                // the scheduled wake sees `remaining <= EPSILON_BYTES`.
                let ns = (secs * 1e9).ceil() as u64 + 1;
                self.last_advance + SimDuration::from_nanos(ns)
            })
            .min()
    }

    /// Iterate over active flow ids with their classes (diagnostics).
    pub fn active(&self) -> impl Iterator<Item = (FlowId, TrafficClass)> + '_ {
        self.flows.values().map(|f| (f.id, f.class))
    }

    /// Sum of allocated rates crossing a channel (test/diagnostic hook).
    pub fn channel_load(&self, ch: Channel) -> f64 {
        self.flows
            .values()
            .filter(|f| f.path.contains(&ch))
            .map(|f| f.rate)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{star_campus, TopologyBuilder};
    use gpunion_des::SimDuration;

    fn acct() -> Accounting {
        Accounting::new(SimDuration::from_secs(60))
    }

    /// Two flows sharing one 1 Gb/s channel each get 62.5 MB/s.
    #[test]
    fn equal_share_on_shared_link() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        b.add_link(a, c, Bandwidth::gbps(1.0), SimDuration::ZERO);
        let mut topo = b.build();
        let path = topo.route(a, c).unwrap();

        let mut ft = FlowTable::new(Bandwidth::gbps(16.0));
        ft.add(path.clone(), 1_000_000_000, TrafficClass::Checkpoint);
        ft.add(path, 1_000_000_000, TrafficClass::Migration);
        ft.reallocate(&topo);

        let rates: Vec<f64> = ft.flows.values().map(|f| f.rate).collect();
        for r in &rates {
            assert!((r - 62.5e6).abs() < 1.0, "rate {r}");
        }
    }

    /// A flow limited by a slow access link leaves backbone capacity to others.
    #[test]
    fn bottleneck_respected_max_min() {
        // h0 --100Mb-- sw --10Gb-- coord ; h1 --1Gb-- sw
        let mut b = TopologyBuilder::new();
        let sw = b.add_node("sw");
        let coord = b.add_node("coord");
        let h0 = b.add_node("h0");
        let h1 = b.add_node("h1");
        b.add_link(coord, sw, Bandwidth::gbps(10.0), SimDuration::ZERO);
        b.add_link(h0, sw, Bandwidth::mbps(100.0), SimDuration::ZERO);
        b.add_link(h1, sw, Bandwidth::gbps(1.0), SimDuration::ZERO);
        let mut topo = b.build();

        let mut ft = FlowTable::new(Bandwidth::gbps(16.0));
        let p0 = topo.route(h0, coord).unwrap();
        let p1 = topo.route(h1, coord).unwrap();
        let f0 = ft.add(p0, u64::MAX / 4, TrafficClass::Checkpoint);
        let f1 = ft.add(p1, u64::MAX / 4, TrafficClass::Checkpoint);
        ft.reallocate(&topo);

        // f0 capped by its 100 Mb/s access link: 12.5 MB/s.
        assert!((ft.rate(f0).unwrap() - 12.5e6).abs() < 1.0);
        // f1 capped by its 1 Gb/s access link: 125 MB/s (backbone not limiting).
        assert!((ft.rate(f1).unwrap() - 125e6).abs() < 1.0);
    }

    /// Flow completion time equals bytes / fair rate; releasing a flow
    /// speeds up the survivor.
    #[test]
    fn completion_and_rate_rebalance() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        b.add_link(a, c, Bandwidth::bps(8e6), SimDuration::ZERO); // 1 MB/s
        let mut topo = b.build();
        let path = topo.route(a, c).unwrap();

        let mut ft = FlowTable::new(Bandwidth::gbps(16.0));
        let mut ac = acct();
        let small = ft.add(path.clone(), 1_000_000, TrafficClass::Checkpoint); // 1 MB
        let big = ft.add(path, 10_000_000, TrafficClass::Migration); // 10 MB
        ft.reallocate(&topo);

        // Both run at 0.5 MB/s; small finishes at t=2s.
        let next = ft.next_completion().unwrap();
        assert!((next.as_secs_f64() - 2.0).abs() < 1e-3, "{next}");

        let done = ft.advance(next, &mut ac);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, small);
        assert_eq!(done[0].outcome, FlowOutcome::Completed);

        ft.reallocate(&topo);
        // Big had 10 - 0.5*2 = 9 MB left, now at full 1 MB/s ⇒ 9 s more.
        let next2 = ft.next_completion().unwrap();
        assert!((next2.as_secs_f64() - 11.0).abs() < 1e-3, "next2 {next2}");
        let done2 = ft.advance(next2, &mut ac);
        assert_eq!(done2.len(), 1);
        assert_eq!(done2[0].id, big);
        assert!(ft.is_empty());
    }

    #[test]
    fn local_flows_use_disk_rate() {
        let topo = {
            let mut b = TopologyBuilder::new();
            b.add_node("solo");
            b.build()
        };
        let mut ft = FlowTable::new(Bandwidth::gbps(16.0)); // 2 GB/s
        let mut ac = acct();
        let f = ft.add(Vec::new(), 2_000_000_000, TrafficClass::Checkpoint);
        ft.reallocate(&topo);
        assert!((ft.rate(f).unwrap() - 2e9).abs() < 1.0);
        let next = ft.next_completion().unwrap();
        assert!((next.as_secs_f64() - 1.0).abs() < 1e-3);
        let done = ft.advance(next, &mut ac);
        assert_eq!(done.len(), 1);
        // Local copies generate no link traffic.
        assert_eq!(ac.total_bytes(), 0.0);
    }

    #[test]
    fn cancelled_flow_disappears() {
        let (mut topo, hosts, coord, _) = star_campus(
            2,
            Bandwidth::gbps(1.0),
            Bandwidth::gbps(10.0),
            SimDuration::ZERO,
        );
        let mut ft = FlowTable::new(Bandwidth::gbps(16.0));
        let p = topo.route(hosts[0], coord).unwrap();
        let f = ft.add(p, 1 << 30, TrafficClass::Migration);
        ft.reallocate(&topo);
        assert!(ft.remove(f));
        assert!(!ft.remove(f));
        assert!(ft.next_completion().is_none());
    }

    #[test]
    fn down_link_kills_crossing_flows() {
        let (mut topo, hosts, coord, _) = star_campus(
            2,
            Bandwidth::gbps(1.0),
            Bandwidth::gbps(10.0),
            SimDuration::ZERO,
        );
        let mut ft = FlowTable::new(Bandwidth::gbps(16.0));
        let p0 = topo.route(hosts[0], coord).unwrap();
        let p1 = topo.route(hosts[1], coord).unwrap();
        let f0 = ft.add(p0.clone(), 1 << 30, TrafficClass::Checkpoint);
        let _f1 = ft.add(p1, 1 << 30, TrafficClass::Checkpoint);
        ft.reallocate(&topo);

        // Take down host-0's access link.
        let access0 = p0[0].link;
        topo.set_link_up(access0, false);
        let lost = ft.fail_broken_paths(&topo);
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].id, f0);
        assert_eq!(lost[0].outcome, FlowOutcome::PathLost);
        assert_eq!(ft.len(), 1);
    }

    #[test]
    fn accounting_receives_moved_bytes() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        b.add_link(a, c, Bandwidth::bps(8e6), SimDuration::ZERO); // 1 MB/s
        let mut topo = b.build();
        let path = topo.route(a, c).unwrap();
        let mut ft = FlowTable::new(Bandwidth::gbps(16.0));
        let mut ac = acct();
        ft.add(path, 3_000_000, TrafficClass::Checkpoint);
        ft.reallocate(&topo);
        ft.advance(SimTime::from_secs(3), &mut ac);
        assert!((ac.class_total(TrafficClass::Checkpoint) - 3e6).abs() < 10.0);
    }
}
