//! Per-class traffic accounting.
//!
//! The paper's network-traffic analysis (§4) claims that incremental
//! checkpoint backup traffic stays below 2 % of available campus bandwidth
//! during peak periods. Verifying that requires attributing every byte moved
//! on every link to a traffic class and bucketing it in time so "peak period"
//! utilization can be computed after the run.

use crate::topology::LinkId;
use gpunion_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// What a byte on the wire was moving for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Scheduler/agent control messages: heartbeats, dispatches, acks.
    Control,
    /// Periodic checkpoint backup traffic (the paper's headline claim).
    Checkpoint,
    /// Checkpoint restore + state transfer during migration.
    Migration,
    /// Container image distribution.
    ImagePull,
    /// The research traffic the platform must not interfere with.
    User,
}

impl TrafficClass {
    /// All classes, for iteration in reports.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::Control,
        TrafficClass::Checkpoint,
        TrafficClass::Migration,
        TrafficClass::ImagePull,
        TrafficClass::User,
    ];

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Control => "control",
            TrafficClass::Checkpoint => "checkpoint",
            TrafficClass::Migration => "migration",
            TrafficClass::ImagePull => "image-pull",
            TrafficClass::User => "user",
        }
    }
}

/// Traffic accountant: campus-wide per-class time buckets plus per-link
/// totals and per-link time buckets.
#[derive(Debug, Clone)]
pub struct Accounting {
    bucket: SimDuration,
    /// (class, bucket index) → bytes, campus-wide.
    class_buckets: BTreeMap<(TrafficClass, u64), f64>,
    /// (link, class) → total bytes over the whole run.
    link_class_totals: HashMap<(LinkId, TrafficClass), f64>,
    /// (link, class, bucket index) → bytes: per-link per-class peaks, e.g.
    /// "checkpoint share of the backbone link during its worst minute".
    /// All-class link peaks are derived from this at report time (ordered
    /// map so derived float sums are iteration-order deterministic).
    link_class_buckets: BTreeMap<(LinkId, TrafficClass, u64), f64>,
    total_bytes: f64,
}

impl Accounting {
    /// New accountant with the given bucket width (1 minute is the default
    /// used by all experiment harnesses).
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        Accounting {
            bucket,
            class_buckets: BTreeMap::new(),
            link_class_totals: HashMap::new(),
            link_class_buckets: BTreeMap::new(),
            total_bytes: 0.0,
        }
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket
    }

    fn bucket_index(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.bucket.as_nanos()
    }

    /// Attribute `bytes` moved on `link` for `class` uniformly over the
    /// interval `[from, to)`, splitting across bucket boundaries.
    pub fn record_span(
        &mut self,
        link: LinkId,
        class: TrafficClass,
        from: SimTime,
        to: SimTime,
        bytes: f64,
    ) {
        if bytes <= 0.0 {
            return;
        }
        self.total_bytes += bytes;
        *self.link_class_totals.entry((link, class)).or_insert(0.0) += bytes;
        let span = to.since(from);
        if span.is_zero() {
            let b = self.bucket_index(from);
            *self.class_buckets.entry((class, b)).or_insert(0.0) += bytes;
            *self
                .link_class_buckets
                .entry((link, class, b))
                .or_insert(0.0) += bytes;
            return;
        }
        let total_secs = span.as_secs_f64();
        let mut cursor = from;
        while cursor < to {
            let b = self.bucket_index(cursor);
            let bucket_end = SimTime::from_nanos((b + 1) * self.bucket.as_nanos());
            let seg_end = bucket_end.min(to);
            let frac = seg_end.since(cursor).as_secs_f64() / total_secs;
            let part = bytes * frac;
            *self.class_buckets.entry((class, b)).or_insert(0.0) += part;
            *self
                .link_class_buckets
                .entry((link, class, b))
                .or_insert(0.0) += part;
            cursor = seg_end;
        }
    }

    /// Attribute an instantaneous transfer (control messages).
    pub fn record_instant(&mut self, link: LinkId, class: TrafficClass, at: SimTime, bytes: f64) {
        self.record_span(link, class, at, at, bytes);
    }

    /// Total bytes ever recorded.
    pub fn total_bytes(&self) -> f64 {
        self.total_bytes
    }

    /// Total bytes for one class across all links and time.
    pub fn class_total(&self, class: TrafficClass) -> f64 {
        self.class_buckets
            .range((class, 0)..=(class, u64::MAX))
            .map(|(_, v)| v)
            .sum()
    }

    /// Total bytes a link carried for a class.
    pub fn link_class_total(&self, link: LinkId, class: TrafficClass) -> f64 {
        self.link_class_totals
            .get(&(link, class))
            .copied()
            .unwrap_or(0.0)
    }

    /// Campus-wide per-bucket byte series for a class, as
    /// `(bucket_start_time, bytes)` pairs in time order.
    pub fn class_series(&self, class: TrafficClass) -> Vec<(SimTime, f64)> {
        self.class_buckets
            .range((class, 0)..=(class, u64::MAX))
            .map(|((_, b), v)| (SimTime::from_nanos(b * self.bucket.as_nanos()), *v))
            .collect()
    }

    /// Peak campus-wide throughput of a class in bytes/sec (max over buckets).
    pub fn class_peak_rate(&self, class: TrafficClass) -> f64 {
        let w = self.bucket.as_secs_f64();
        self.class_buckets
            .range((class, 0)..=(class, u64::MAX))
            .map(|(_, v)| v / w)
            .fold(0.0, f64::max)
    }

    /// Mean campus-wide throughput of a class over `[0, end)` in bytes/sec.
    pub fn class_mean_rate(&self, class: TrafficClass, end: SimTime) -> f64 {
        let secs = end.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.class_total(class) / secs
    }

    /// Peak per-bucket throughput of one class on one link, bytes/sec —
    /// the quantity behind "checkpoint traffic stays under X% of the
    /// backbone during its worst minute".
    pub fn link_class_peak_rate(&self, link: LinkId, class: TrafficClass) -> f64 {
        let w = self.bucket.as_secs_f64();
        self.link_class_buckets
            .iter()
            .filter(|((l, c, _), _)| *l == link && *c == class)
            .map(|(_, v)| v / w)
            .fold(0.0, f64::max)
    }

    /// Mean throughput of one class on one link over `[0, end)`, bytes/sec.
    pub fn link_class_mean_rate(&self, link: LinkId, class: TrafficClass, end: SimTime) -> f64 {
        let secs = end.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.link_class_total(link, class) / secs
    }

    /// Peak per-bucket throughput on one link, all classes, bytes/sec.
    /// Derived from the per-class buckets at report time.
    pub fn link_peak_rate(&self, link: LinkId) -> f64 {
        let w = self.bucket.as_secs_f64();
        let mut per_bucket: BTreeMap<u64, f64> = BTreeMap::new();
        for ((l, _, b), v) in &self.link_class_buckets {
            if *l == link {
                *per_bucket.entry(*b).or_insert(0.0) += v;
            }
        }
        per_bucket.values().map(|v| v / w).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LinkId = LinkId(0);

    #[test]
    fn span_splits_across_buckets() {
        let mut a = Accounting::new(SimDuration::from_secs(60));
        // 120 MB uniformly over [30s, 150s) — 2 minutes spanning 3 buckets:
        // bucket0 gets 30s worth, bucket1 60s, bucket2 30s.
        a.record_span(
            L,
            TrafficClass::Checkpoint,
            SimTime::from_secs(30),
            SimTime::from_secs(150),
            120e6,
        );
        let series = a.class_series(TrafficClass::Checkpoint);
        assert_eq!(series.len(), 3);
        assert!((series[0].1 - 30e6).abs() < 1.0);
        assert!((series[1].1 - 60e6).abs() < 1.0);
        assert!((series[2].1 - 30e6).abs() < 1.0);
        assert!((a.class_total(TrafficClass::Checkpoint) - 120e6).abs() < 1.0);
    }

    #[test]
    fn instant_record_lands_in_one_bucket() {
        let mut a = Accounting::new(SimDuration::from_secs(60));
        a.record_instant(L, TrafficClass::Control, SimTime::from_secs(61), 100.0);
        let series = a.class_series(TrafficClass::Control);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].0, SimTime::from_secs(60));
    }

    #[test]
    fn peak_rate_vs_mean_rate() {
        let mut a = Accounting::new(SimDuration::from_secs(60));
        // burst: 600 MB in one minute, then nothing for 9 minutes
        a.record_span(
            L,
            TrafficClass::Checkpoint,
            SimTime::from_secs(0),
            SimTime::from_secs(60),
            600e6,
        );
        let peak = a.class_peak_rate(TrafficClass::Checkpoint);
        let mean = a.class_mean_rate(TrafficClass::Checkpoint, SimTime::from_secs(600));
        assert!((peak - 10e6).abs() < 1.0, "peak {peak}");
        assert!((mean - 1e6).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn per_link_totals_are_independent() {
        let mut a = Accounting::new(SimDuration::from_secs(60));
        a.record_instant(LinkId(1), TrafficClass::User, SimTime::ZERO, 10.0);
        a.record_instant(LinkId(2), TrafficClass::User, SimTime::ZERO, 20.0);
        assert_eq!(a.link_class_total(LinkId(1), TrafficClass::User), 10.0);
        assert_eq!(a.link_class_total(LinkId(2), TrafficClass::User), 20.0);
        assert_eq!(a.link_class_total(LinkId(3), TrafficClass::User), 0.0);
        assert_eq!(a.total_bytes(), 30.0);
    }

    #[test]
    fn zero_and_negative_bytes_ignored() {
        let mut a = Accounting::new(SimDuration::from_secs(60));
        a.record_instant(L, TrafficClass::User, SimTime::ZERO, 0.0);
        a.record_instant(L, TrafficClass::User, SimTime::ZERO, -5.0);
        assert_eq!(a.total_bytes(), 0.0);
    }
}
