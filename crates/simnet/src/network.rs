//! The `Network` facade: one object combining topology, flows, messages,
//! loss injection and accounting.
//!
//! `Network` is a *passive* component: it never schedules events itself.
//! The embedding event loop (in `gpunion-core`) calls [`Network::poll`] when
//! the clock reaches [`Network::next_event_at`], and re-arms its wake timer
//! after every mutating call. This keeps the substrate deterministic and
//! directly unit-testable without an event loop.

use crate::accounting::{Accounting, TrafficClass};
use crate::bandwidth::Bandwidth;
use crate::flow::{FlowEnd, FlowId, FlowOutcome, FlowTable};
use crate::message::{Delivery, MessageQueue};
use crate::topology::{LinkId, NodeId, Topology};
use gpunion_des::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Latency applied to node-local (loopback) messages.
const LOOPBACK_LATENCY: SimDuration = SimDuration::from_micros(10);

/// Events surfaced by [`Network::poll`].
#[derive(Debug, Clone)]
pub enum NetEvent<M> {
    /// A control message arrived at `to`.
    Delivered {
        /// Sender.
        from: NodeId,
        /// Recipient (still up at delivery time).
        to: NodeId,
        /// The payload handed to [`Network::send`].
        payload: M,
    },
    /// A bulk flow ended; `tag` is the context handed to [`Network::start_flow`].
    FlowEnded {
        /// The flow.
        id: FlowId,
        /// Completion, cancellation, or path loss.
        outcome: FlowOutcome,
        /// Caller context.
        tag: M,
    },
}

/// Errors from send/flow operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// No usable path between the endpoints (node/link down or partitioned).
    Unreachable,
    /// The referenced flow does not exist (already finished or cancelled).
    UnknownFlow,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Unreachable => write!(f, "destination unreachable"),
            NetError::UnknownFlow => write!(f, "unknown flow"),
        }
    }
}

impl std::error::Error for NetError {}

/// The simulated campus network.
pub struct Network<M> {
    topo: Topology,
    flows: FlowTable,
    msgs: MessageQueue<M>,
    accounting: Accounting,
    tags: HashMap<FlowId, M>,
    /// Per-link message drop probability (fault injection).
    loss: HashMap<LinkId, f64>,
    default_loss: f64,
    rng: SmallRng,
    messages_sent: u64,
    messages_dropped: u64,
}

impl<M> Network<M> {
    /// Wrap a topology. `local_rate` bounds same-node copies (disk speed);
    /// `seed` drives loss-injection randomness.
    pub fn new(topo: Topology, local_rate: Bandwidth, seed: u64) -> Self {
        Network {
            topo,
            flows: FlowTable::new(local_rate),
            msgs: MessageQueue::new(),
            accounting: Accounting::new(SimDuration::from_secs(60)),
            tags: HashMap::new(),
            loss: HashMap::new(),
            default_loss: 0.0,
            rng: SmallRng::seed_from_u64(seed),
            messages_sent: 0,
            messages_dropped: 0,
        }
    }

    /// Read-only topology access.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Traffic accounting collected so far.
    pub fn accounting(&self) -> &Accounting {
        &self.accounting
    }

    /// Total control messages accepted by [`Network::send`].
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Messages lost to fault injection or dead destinations.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Set the default per-link drop probability for control messages.
    pub fn set_default_loss(&mut self, p: f64) {
        self.default_loss = p.clamp(0.0, 1.0);
    }

    /// Override the drop probability of one link.
    pub fn set_link_loss(&mut self, link: LinkId, p: f64) {
        self.loss.insert(link, p.clamp(0.0, 1.0));
    }

    fn link_loss(&self, link: LinkId) -> f64 {
        self.loss.get(&link).copied().unwrap_or(self.default_loss)
    }

    /// Send a control message of `size_bytes`. Latency is propagation plus
    /// store-and-forward transmission on each hop. The message may be lost
    /// to injected faults — the sender gets no error in that case, exactly
    /// like UDP on a real LAN; reliability is the protocol layer's job.
    pub fn send(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        size_bytes: u32,
        class: TrafficClass,
        payload: M,
    ) -> Result<(), NetError> {
        if !self.topo.node_up(from) || !self.topo.node_up(to) {
            return Err(NetError::Unreachable);
        }
        self.messages_sent += 1;
        if from == to {
            self.msgs.enqueue(
                now + LOOPBACK_LATENCY,
                Delivery {
                    from,
                    to,
                    payload,
                    size_bytes,
                },
            );
            return Ok(());
        }
        let path = self.topo.route(from, to).ok_or(NetError::Unreachable)?;
        let mut at = now;
        for ch in &path {
            at += self.topo.link_latency(ch.link);
            at += SimDuration::from_secs_f64(
                self.topo
                    .link_capacity(ch.link)
                    .transfer_secs(size_bytes as u64),
            );
            self.accounting
                .record_instant(ch.link, class, at, size_bytes as f64);
            let p = self.link_loss(ch.link);
            if p > 0.0 && self.rng.gen_bool(p) {
                self.messages_dropped += 1;
                return Ok(()); // lost in transit; sender cannot tell
            }
        }
        self.msgs.enqueue(
            at,
            Delivery {
                from,
                to,
                payload,
                size_bytes,
            },
        );
        Ok(())
    }

    /// Start a bulk transfer; `tag` is returned in the completion event.
    pub fn start_flow(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        class: TrafficClass,
        tag: M,
    ) -> Result<FlowId, NetError> {
        if !self.topo.node_up(from) || !self.topo.node_up(to) {
            return Err(NetError::Unreachable);
        }
        let path = if from == to {
            Vec::new()
        } else {
            self.topo.route(from, to).ok_or(NetError::Unreachable)?
        };
        // Integrate existing flows to `now` before the rate change.
        let _ = self.flows.advance(now, &mut self.accounting);
        let id = self.flows.add(path, bytes, class);
        self.flows.reallocate(&self.topo);
        self.tags.insert(id, tag);
        Ok(id)
    }

    /// Cancel an in-flight flow. The tag is returned for caller cleanup.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> Result<M, NetError> {
        let _ = self.flows.advance(now, &mut self.accounting);
        if !self.flows.remove(id) {
            return Err(NetError::UnknownFlow);
        }
        self.flows.reallocate(&self.topo);
        self.tags.remove(&id).ok_or(NetError::UnknownFlow)
    }

    /// Fraction of a flow delivered so far.
    pub fn flow_progress(&self, id: FlowId) -> Option<f64> {
        self.flows.progress(id)
    }

    /// Bring a node up or down. Downing a node kills in-flight messages and
    /// flows involving it; the lost flows are returned as events (so the
    /// caller can fail the associated transfers immediately).
    pub fn set_node_up(&mut self, now: SimTime, node: NodeId, up: bool) -> Vec<NetEvent<M>> {
        let _ = self.flows.advance(now, &mut self.accounting);
        self.topo.set_node_up(node, up);
        let mut events = Vec::new();
        if !up {
            self.messages_dropped += self.msgs.drop_involving(node) as u64;
            for end in self.flows.fail_broken_paths(&self.topo) {
                events.push(self.flow_end_event(end));
            }
        }
        self.flows.reallocate(&self.topo);
        events
    }

    /// Bring a link up or down; flows crossing a downed link are lost.
    pub fn set_link_up(&mut self, now: SimTime, link: LinkId, up: bool) -> Vec<NetEvent<M>> {
        let _ = self.flows.advance(now, &mut self.accounting);
        self.topo.set_link_up(link, up);
        let mut events = Vec::new();
        if !up {
            for end in self.flows.fail_broken_paths(&self.topo) {
                events.push(self.flow_end_event(end));
            }
        }
        self.flows.reallocate(&self.topo);
        events
    }

    fn flow_end_event(&mut self, end: FlowEnd) -> NetEvent<M> {
        let tag = self
            .tags
            .remove(&end.id)
            .expect("every flow has a tag until it ends");
        NetEvent::FlowEnded {
            id: end.id,
            outcome: end.outcome,
            tag,
        }
    }

    /// The next instant at which [`Network::poll`] would produce events.
    pub fn next_event_at(&self) -> Option<SimTime> {
        match (self.msgs.next_at(), self.flows.next_completion()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Advance internal state to `now` and return everything that happened:
    /// message deliveries (to still-up nodes) and flow completions.
    pub fn poll(&mut self, now: SimTime) -> Vec<NetEvent<M>> {
        let mut events = Vec::new();
        for end in self.flows.advance(now, &mut self.accounting) {
            events.push(self.flow_end_event(end));
        }
        self.flows.reallocate(&self.topo);
        for d in self.msgs.drain_due(now) {
            if self.topo.node_up(d.to) {
                events.push(NetEvent::Delivered {
                    from: d.from,
                    to: d.to,
                    payload: d.payload,
                });
            } else {
                self.messages_dropped += 1;
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::star_campus;

    fn campus(n: usize) -> (Network<&'static str>, Vec<NodeId>, NodeId) {
        let (topo, hosts, coord, _) = star_campus(
            n,
            Bandwidth::gbps(1.0),
            Bandwidth::gbps(10.0),
            SimDuration::from_micros(50),
        );
        (Network::new(topo, Bandwidth::gbps(16.0), 7), hosts, coord)
    }

    #[test]
    fn message_roundtrip_latency() {
        let (mut net, hosts, coord) = campus(3);
        net.send(
            SimTime::ZERO,
            hosts[0],
            coord,
            200,
            TrafficClass::Control,
            "hb",
        )
        .unwrap();
        let at = net.next_event_at().unwrap();
        // Two hops: 2×50 µs propagation + 2×(200 B / capacity) transmission.
        assert!(at > SimTime::from_nanos(100_000), "{at}");
        assert!(at < SimTime::from_nanos(120_000), "{at}");
        let evs = net.poll(at);
        assert_eq!(evs.len(), 1);
        match &evs[0] {
            NetEvent::Delivered { from, to, payload } => {
                assert_eq!(*from, hosts[0]);
                assert_eq!(*to, coord);
                assert_eq!(*payload, "hb");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn loopback_messages_work() {
        let (mut net, hosts, _) = campus(1);
        net.send(
            SimTime::ZERO,
            hosts[0],
            hosts[0],
            64,
            TrafficClass::Control,
            "self",
        )
        .unwrap();
        let at = net.next_event_at().unwrap();
        assert_eq!(at, SimTime::ZERO + LOOPBACK_LATENCY);
        assert_eq!(net.poll(at).len(), 1);
    }

    #[test]
    fn send_to_down_node_errors() {
        let (mut net, hosts, coord) = campus(2);
        net.set_node_up(SimTime::ZERO, hosts[1], false);
        let err = net
            .send(
                SimTime::ZERO,
                hosts[0],
                hosts[1],
                64,
                TrafficClass::Control,
                "x",
            )
            .unwrap_err();
        assert_eq!(err, NetError::Unreachable);
        // Coordinator still reachable.
        assert!(net
            .send(
                SimTime::ZERO,
                hosts[0],
                coord,
                64,
                TrafficClass::Control,
                "y"
            )
            .is_ok());
    }

    #[test]
    fn message_to_node_that_dies_in_flight_is_dropped() {
        let (mut net, hosts, coord) = campus(2);
        net.send(
            SimTime::ZERO,
            coord,
            hosts[0],
            64,
            TrafficClass::Control,
            "kill-order",
        )
        .unwrap();
        // Node dies before delivery.
        net.set_node_up(SimTime::from_nanos(1), hosts[0], false);
        let evs = net.poll(SimTime::from_secs(1));
        assert!(evs.is_empty());
        assert_eq!(net.messages_dropped(), 1);
    }

    #[test]
    fn flow_completion_tag_returned() {
        let (mut net, hosts, coord) = campus(2);
        let id = net
            .start_flow(
                SimTime::ZERO,
                hosts[0],
                coord,
                125_000_000, // 1 Gb ⇒ 1 s on the access link
                TrafficClass::Checkpoint,
                "ckpt-42",
            )
            .unwrap();
        let at = net.next_event_at().unwrap();
        assert!((at.as_secs_f64() - 1.0).abs() < 0.01, "{at}");
        let evs = net.poll(at);
        assert_eq!(evs.len(), 1);
        match &evs[0] {
            NetEvent::FlowEnded {
                id: fid,
                outcome,
                tag,
            } => {
                assert_eq!(*fid, id);
                assert_eq!(*outcome, FlowOutcome::Completed);
                assert_eq!(*tag, "ckpt-42");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn node_down_fails_flow_with_event() {
        let (mut net, hosts, coord) = campus(2);
        let id = net
            .start_flow(
                SimTime::ZERO,
                hosts[0],
                coord,
                1 << 30,
                TrafficClass::Migration,
                "m",
            )
            .unwrap();
        let evs = net.set_node_up(SimTime::from_millis(100), hosts[0], false);
        assert_eq!(evs.len(), 1);
        match &evs[0] {
            NetEvent::FlowEnded {
                id: fid, outcome, ..
            } => {
                assert_eq!(*fid, id);
                assert_eq!(*outcome, FlowOutcome::PathLost);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cancel_flow_returns_tag() {
        let (mut net, hosts, coord) = campus(2);
        let id = net
            .start_flow(
                SimTime::ZERO,
                hosts[0],
                coord,
                1 << 30,
                TrafficClass::ImagePull,
                "img",
            )
            .unwrap();
        let tag = net.cancel_flow(SimTime::from_millis(5), id).unwrap();
        assert_eq!(tag, "img");
        assert_eq!(
            net.cancel_flow(SimTime::from_millis(6), id).unwrap_err(),
            NetError::UnknownFlow
        );
    }

    #[test]
    fn total_loss_drops_all_messages() {
        let (mut net, hosts, coord) = campus(2);
        net.set_default_loss(1.0);
        for _ in 0..10 {
            net.send(
                SimTime::ZERO,
                hosts[0],
                coord,
                64,
                TrafficClass::Control,
                "x",
            )
            .unwrap();
        }
        assert!(net.poll(SimTime::from_secs(1)).is_empty());
        assert_eq!(net.messages_dropped(), 10);
        assert_eq!(net.messages_sent(), 10);
    }

    #[test]
    fn partial_loss_drops_some() {
        let (mut net, hosts, coord) = campus(2);
        net.set_default_loss(0.3);
        for _ in 0..200 {
            net.send(
                SimTime::ZERO,
                hosts[0],
                coord,
                64,
                TrafficClass::Control,
                "x",
            )
            .unwrap();
        }
        let delivered = net.poll(SimTime::from_secs(1)).len();
        // Two lossy hops at 30 % each ⇒ ~49 % delivery. Allow wide margin.
        assert!(delivered > 60 && delivered < 140, "delivered {delivered}");
    }

    #[test]
    fn concurrent_checkpoints_share_backbone_fairly() {
        // 4 hosts all pushing to the coordinator: each limited by its own
        // 1 Gb/s access link (backbone 10 Gb/s is not the bottleneck).
        let (mut net, hosts, coord) = campus(4);
        let bytes = 125_000_000u64; // 1 s at full access rate
        for h in &hosts {
            net.start_flow(
                SimTime::ZERO,
                *h,
                coord,
                bytes,
                TrafficClass::Checkpoint,
                "c",
            )
            .unwrap();
        }
        let at = net.next_event_at().unwrap();
        assert!((at.as_secs_f64() - 1.0).abs() < 0.01, "{at}");
        let evs = net.poll(at);
        assert_eq!(evs.len(), 4, "all four finish together");
    }
}
