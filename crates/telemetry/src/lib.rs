//! # gpunion-telemetry — Prometheus-style monitoring
//!
//! The paper's "Distributed State Management and Monitoring" subsystem:
//! metric registries with counters/gauges/histograms ([`metrics`]), the text
//! exposition format renderer and parser ([`expo`]), and a bounded
//! time-series store with PromQL-like window queries ([`tsdb`]). Agents
//! expose a registry; the coordinator scrapes, parses, and stores — the
//! pipeline is exercised end-to-end in the integration tests.

pub mod expo;
pub mod metrics;
pub mod tsdb;

pub use expo::{parse, ParseError, Sample};
pub use metrics::{
    labels, Counter, Gauge, Labels, MetricError, MetricHistogram, MetricKind, Registry,
};
pub use tsdb::{Point, SeriesKey, TimeSeriesStore};
