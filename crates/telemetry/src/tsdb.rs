//! A small time-series store for scraped samples.
//!
//! The coordinator keeps "historical monitoring data, enabling both
//! operational decision making and capacity planning" (§3.2). Each series
//! (name + labels) holds a bounded ring of `(time, value)` points with
//! queries for the aggregations the scheduler and the experiment harnesses
//! need: latest value, window means, and counter rates.

use crate::expo::Sample;
use crate::metrics::Labels;
use gpunion_des::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// Series identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SeriesKey {
    /// Metric name.
    pub name: String,
    /// Label set (sorted by construction).
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    /// Build from name + labels.
    pub fn new(name: impl Into<String>, labels: &Labels) -> Self {
        SeriesKey {
            name: name.into(),
            labels: labels.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }

    /// Value of one label, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One stored point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Sample time.
    pub at: SimTime,
    /// Value.
    pub value: f64,
}

/// Bounded multi-series store.
#[derive(Debug)]
pub struct TimeSeriesStore {
    capacity_per_series: usize,
    series: HashMap<SeriesKey, VecDeque<Point>>,
}

impl TimeSeriesStore {
    /// Store keeping at most `capacity_per_series` points per series.
    pub fn new(capacity_per_series: usize) -> Self {
        assert!(capacity_per_series > 0);
        TimeSeriesStore {
            capacity_per_series,
            series: HashMap::new(),
        }
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Insert one point.
    pub fn insert(&mut self, key: SeriesKey, at: SimTime, value: f64) {
        let ring = self.series.entry(key).or_default();
        ring.push_back(Point { at, value });
        if ring.len() > self.capacity_per_series {
            ring.pop_front();
        }
    }

    /// Ingest a batch of scraped samples at scrape time.
    pub fn ingest(&mut self, at: SimTime, samples: &[Sample]) {
        for s in samples {
            let labels: Labels = s.labels.clone();
            self.insert(SeriesKey::new(s.name.clone(), &labels), at, s.value);
        }
    }

    /// Latest point of a series.
    pub fn latest(&self, key: &SeriesKey) -> Option<Point> {
        self.series.get(key)?.back().copied()
    }

    /// Points within `[now - window, now]`, oldest first.
    pub fn range(&self, key: &SeriesKey, now: SimTime, window: SimDuration) -> Vec<Point> {
        let start = now.checked_sub(window).unwrap_or(SimTime::ZERO);
        self.series
            .get(key)
            .map(|ring| {
                ring.iter()
                    .filter(|p| p.at >= start && p.at <= now)
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Arithmetic mean over the window (None when empty).
    pub fn window_mean(&self, key: &SeriesKey, now: SimTime, window: SimDuration) -> Option<f64> {
        let pts = self.range(key, now, window);
        if pts.is_empty() {
            return None;
        }
        Some(pts.iter().map(|p| p.value).sum::<f64>() / pts.len() as f64)
    }

    /// Counter rate (per second) over the window: handles resets by treating
    /// a decrease as a restart from zero, like PromQL `rate()`.
    pub fn rate(&self, key: &SeriesKey, now: SimTime, window: SimDuration) -> Option<f64> {
        let pts = self.range(key, now, window);
        if pts.len() < 2 {
            return None;
        }
        let mut increase = 0.0;
        for w in pts.windows(2) {
            let d = w[1].value - w[0].value;
            increase += if d >= 0.0 { d } else { w[1].value };
        }
        let secs = pts.last().unwrap().at.since(pts[0].at).as_secs_f64();
        if secs <= 0.0 {
            return None;
        }
        Some(increase / secs)
    }

    /// All series keys matching a metric name.
    pub fn keys_for(&self, name: &str) -> Vec<&SeriesKey> {
        self.series.keys().filter(|k| k.name == name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::labels;

    fn key(name: &str) -> SeriesKey {
        SeriesKey::new(name, &Labels::new())
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn insert_latest_range() {
        let mut db = TimeSeriesStore::new(100);
        for i in 0..10 {
            db.insert(key("x"), t(i * 10), i as f64);
        }
        assert_eq!(db.latest(&key("x")).unwrap().value, 9.0);
        let pts = db.range(&key("x"), t(90), SimDuration::from_secs(25));
        assert_eq!(pts.len(), 3); // t=70,80,90
        assert_eq!(pts[0].value, 7.0);
    }

    #[test]
    fn ring_capacity_evicts_oldest() {
        let mut db = TimeSeriesStore::new(3);
        for i in 0..10 {
            db.insert(key("x"), t(i), i as f64);
        }
        let pts = db.range(&key("x"), t(100), SimDuration::from_secs(100));
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].value, 7.0);
    }

    #[test]
    fn window_mean() {
        let mut db = TimeSeriesStore::new(100);
        db.insert(key("u"), t(0), 0.2);
        db.insert(key("u"), t(10), 0.4);
        db.insert(key("u"), t(20), 0.9);
        let m = db
            .window_mean(&key("u"), t(20), SimDuration::from_secs(12))
            .unwrap();
        assert!((m - 0.65).abs() < 1e-12);
        assert_eq!(
            db.window_mean(&key("nope"), t(20), SimDuration::from_secs(10)),
            None
        );
    }

    #[test]
    fn rate_with_counter_reset() {
        let mut db = TimeSeriesStore::new(100);
        db.insert(key("c"), t(0), 100.0);
        db.insert(key("c"), t(10), 150.0); // +50
        db.insert(key("c"), t(20), 20.0); // reset; counts as +20
        db.insert(key("c"), t(30), 50.0); // +30
        let r = db
            .rate(&key("c"), t(30), SimDuration::from_secs(30))
            .unwrap();
        assert!((r - 100.0 / 30.0).abs() < 1e-9, "r={r}");
    }

    #[test]
    fn labels_distinguish_series() {
        let mut db = TimeSeriesStore::new(10);
        let a = SeriesKey::new("gpu_util", &labels([("node", "ws-1")]));
        let b = SeriesKey::new("gpu_util", &labels([("node", "ws-2")]));
        db.insert(a.clone(), t(0), 0.1);
        db.insert(b.clone(), t(0), 0.9);
        assert_eq!(db.latest(&a).unwrap().value, 0.1);
        assert_eq!(db.latest(&b).unwrap().value, 0.9);
        assert_eq!(db.series_count(), 2);
        assert_eq!(db.keys_for("gpu_util").len(), 2);
        assert_eq!(a.label("node"), Some("ws-1"));
    }

    #[test]
    fn ingest_scraped_samples() {
        use crate::expo::parse;
        let mut db = TimeSeriesStore::new(10);
        let samples = parse("gpu_util{node=\"ws-1\"} 0.7\nbeats_total 12\n").unwrap();
        db.ingest(t(5), &samples);
        let k = SeriesKey::new("gpu_util", &labels([("node", "ws-1")]));
        assert_eq!(db.latest(&k).unwrap().value, 0.7);
    }
}
