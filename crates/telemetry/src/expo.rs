//! Parser for the Prometheus text exposition format.
//!
//! The scraper pulls `/metrics` from each agent over the (simulated or real)
//! network and parses the text back into samples. Having both the renderer
//! (in [`crate::metrics`]) and this parser means the scrape pipeline is
//! closed under round-trips — which the tests verify.

use crate::metrics::Labels;
use std::fmt;

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Labels.
    pub labels: Labels,
    /// Value.
    pub value: f64,
}

/// Parse errors with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parse an exposition document into samples (comments/TYPE/HELP skipped).
pub fn parse(text: &str) -> Result<Vec<Sample>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_line(line).map_err(|reason| ParseError {
            line: i + 1,
            reason,
        })?);
    }
    Ok(out)
}

fn parse_line(line: &str) -> Result<Sample, &'static str> {
    // name{l="v",...} value   |   name value
    let (head, value_str) = match line.rfind(' ') {
        Some(idx) => (&line[..idx], &line[idx + 1..]),
        None => return Err("missing value"),
    };
    let value: f64 = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        s => s.parse().map_err(|_| "bad value")?,
    };
    let (name, labels) = match head.find('{') {
        Some(open) => {
            if !head.ends_with('}') {
                return Err("unterminated label set");
            }
            let name = &head[..open];
            let body = &head[open + 1..head.len() - 1];
            (name, parse_labels(body)?)
        }
        None => (head, Labels::new()),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err("bad metric name");
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Labels, &'static str> {
    let mut labels = Labels::new();
    if body.is_empty() {
        return Ok(labels);
    }
    for pair in body.split(',') {
        let (k, v) = pair.split_once('=').ok_or("label without '='")?;
        let v = v.strip_prefix('"').ok_or("unquoted label value")?;
        let v = v.strip_suffix('"').ok_or("unquoted label value")?;
        if k.is_empty() {
            return Err("empty label name");
        }
        labels.insert(k.to_string(), v.to_string());
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{labels, Registry};

    #[test]
    fn parse_simple_lines() {
        let samples = parse(
            "# HELP x help text\n# TYPE x gauge\nx 1.5\ny{a=\"b\"} 2\nz{a=\"b\",c=\"d\"} -0.5\n",
        )
        .unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "x");
        assert_eq!(samples[0].value, 1.5);
        assert_eq!(samples[1].labels["a"], "b");
        assert_eq!(samples[2].labels.len(), 2);
        assert_eq!(samples[2].value, -0.5);
    }

    #[test]
    fn parse_inf_values() {
        let samples = parse("h_bucket{le=\"+Inf\"} 10\n").unwrap();
        assert_eq!(samples[0].labels["le"], "+Inf");
        assert_eq!(samples[0].value, 10.0);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("good 1\nbad_line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.reason, "missing value");
    }

    #[test]
    fn bad_labels_rejected() {
        assert!(parse("x{a=b} 1\n").is_err());
        assert!(parse("x{=\"v\"} 1\n").is_err());
        assert!(parse("x{a=\"v\" 1\n").is_err());
    }

    #[test]
    fn render_parse_roundtrip() {
        let r = Registry::new();
        r.gauge("gpu_util", "u", labels([("node", "ws-1"), ("gpu", "0")]))
            .unwrap()
            .set(0.5);
        r.counter("beats_total", "b", Labels::new())
            .unwrap()
            .add(7.0);
        let h = r.histogram("lat_seconds", "l", Labels::new()).unwrap();
        h.observe(0.02);

        let samples = parse(&r.render()).unwrap();
        let find = |name: &str| samples.iter().find(|s| s.name == name).unwrap();
        assert_eq!(find("gpu_util").value, 0.5);
        assert_eq!(find("gpu_util").labels["node"], "ws-1");
        assert_eq!(find("beats_total").value, 7.0);
        assert_eq!(find("lat_seconds_count").value, 1.0);
        assert!(samples
            .iter()
            .any(|s| s.name == "lat_seconds_bucket" && s.labels["le"] == "+Inf" && s.value == 1.0));
    }
}
