//! Metric primitives: counters, gauges, histograms, and the registry.
//!
//! The paper's monitoring system collects "both hardware metrics (GPU
//! utilization, memory usage, temperature, etc.) and application metrics
//! (container lifecycle events, resource allocation history, etc.)" through
//! Prometheus exporters. This module is that exporter library: a registry of
//! labelled metric families that renders the Prometheus text exposition
//! format. Handles are cheap to clone and thread-safe (live mode shares them
//! across agent threads).

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A label set: ordered (name, value) pairs.
pub type Labels = BTreeMap<String, String>;

/// Build a label set from pairs.
pub fn labels<const N: usize>(pairs: [(&str, &str); N]) -> Labels {
    pairs
        .into_iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Monotonically increasing counter (f64 stored as bits).
#[derive(Debug, Default)]
pub struct Counter {
    bits: AtomicU64,
}

impl Counter {
    /// Increment by 1.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Increment by `v` (must be non-negative; negative deltas are ignored,
    /// preserving monotonicity).
    pub fn add(&self, v: f64) {
        if v <= 0.0 {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Read the value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Prometheus-style cumulative-bucket histogram.
#[derive(Debug)]
pub struct MetricHistogram {
    bounds: Vec<f64>,
    inner: Mutex<HistogramInner>,
}

#[derive(Debug, Default)]
struct HistogramInner {
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl MetricHistogram {
    /// With explicit upper bounds (must be sorted ascending).
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let n = bounds.len();
        MetricHistogram {
            bounds,
            inner: Mutex::new(HistogramInner {
                counts: vec![0; n + 1], // +1 for +Inf
                sum: 0.0,
                count: 0,
            }),
        }
    }

    /// Default latency buckets: 1 ms … 60 s, roughly ×2.5 spaced.
    pub fn latency() -> Self {
        Self::with_bounds(vec![
            0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
            60.0,
        ])
    }

    /// Observe one sample.
    pub fn observe(&self, v: f64) {
        let mut inner = self.inner.lock();
        let idx = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        inner.counts[idx] += 1;
        inner.sum += v;
        inner.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.inner.lock().sum
    }

    /// Cumulative counts per bound (plus +Inf last).
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let inner = self.inner.lock();
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.bounds.len() + 1);
        for (i, b) in self.bounds.iter().enumerate() {
            acc += inner.counts[i];
            out.push((*b, acc));
        }
        acc += inner.counts[self.bounds.len()];
        out.push((f64::INFINITY, acc));
        out
    }
}

/// A value any metric kind can expose.
#[derive(Debug, Clone)]
enum MetricValue {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<MetricHistogram>),
}

/// Metric kind tag for TYPE lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Instantaneous gauge.
    Gauge,
    /// Histogram.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

struct Family {
    help: String,
    kind: MetricKind,
    series: BTreeMap<Labels, MetricValue>,
}

/// A registry of metric families — one per exporter (agent, scheduler).
#[derive(Clone, Default)]
pub struct Registry {
    families: Arc<Mutex<BTreeMap<String, Family>>>,
}

/// Registry errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// A family was registered twice with different kinds.
    KindMismatch {
        /// Family name.
        name: String,
    },
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::KindMismatch { name } => {
                write!(f, "metric '{name}' already registered with another kind")
            }
        }
    }
}

impl std::error::Error for MetricError {}

impl Registry {
    /// Fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create a counter with labels.
    pub fn counter(
        &self,
        name: &str,
        help: &str,
        labels: Labels,
    ) -> Result<Arc<Counter>, MetricError> {
        let mut fams = self.families.lock();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: MetricKind::Counter,
            series: BTreeMap::new(),
        });
        if fam.kind != MetricKind::Counter {
            return Err(MetricError::KindMismatch {
                name: name.to_string(),
            });
        }
        let v = fam
            .series
            .entry(labels)
            .or_insert_with(|| MetricValue::Counter(Arc::new(Counter::default())));
        match v {
            MetricValue::Counter(c) => Ok(c.clone()),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get or create a gauge with labels.
    pub fn gauge(&self, name: &str, help: &str, labels: Labels) -> Result<Arc<Gauge>, MetricError> {
        let mut fams = self.families.lock();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: MetricKind::Gauge,
            series: BTreeMap::new(),
        });
        if fam.kind != MetricKind::Gauge {
            return Err(MetricError::KindMismatch {
                name: name.to_string(),
            });
        }
        let v = fam
            .series
            .entry(labels)
            .or_insert_with(|| MetricValue::Gauge(Arc::new(Gauge::default())));
        match v {
            MetricValue::Gauge(g) => Ok(g.clone()),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get or create a histogram with labels (latency buckets by default).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: Labels,
    ) -> Result<Arc<MetricHistogram>, MetricError> {
        let mut fams = self.families.lock();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: MetricKind::Histogram,
            series: BTreeMap::new(),
        });
        if fam.kind != MetricKind::Histogram {
            return Err(MetricError::KindMismatch {
                name: name.to_string(),
            });
        }
        let v = fam
            .series
            .entry(labels)
            .or_insert_with(|| MetricValue::Histogram(Arc::new(MetricHistogram::latency())));
        match v {
            MetricValue::Histogram(h) => Ok(h.clone()),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Render the Prometheus text exposition format.
    pub fn render(&self) -> String {
        fn fmt_labels(labels: &Labels, extra: Option<(&str, String)>) -> String {
            let mut parts: Vec<String> =
                labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
            if let Some((k, v)) = extra {
                parts.push(format!("{k}=\"{v}\""));
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", parts.join(","))
            }
        }
        fn fmt_bound(b: f64) -> String {
            if b.is_infinite() {
                "+Inf".to_string()
            } else {
                format!("{b}")
            }
        }

        let fams = self.families.lock();
        let mut out = String::new();
        for (name, fam) in fams.iter() {
            out.push_str(&format!("# HELP {name} {}\n", fam.help));
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind.as_str()));
            for (labels, value) in &fam.series {
                match value {
                    MetricValue::Counter(c) => {
                        out.push_str(&format!("{name}{} {}\n", fmt_labels(labels, None), c.get()));
                    }
                    MetricValue::Gauge(g) => {
                        out.push_str(&format!("{name}{} {}\n", fmt_labels(labels, None), g.get()));
                    }
                    MetricValue::Histogram(h) => {
                        for (bound, cum) in h.cumulative() {
                            out.push_str(&format!(
                                "{name}_bucket{} {}\n",
                                fmt_labels(labels, Some(("le", fmt_bound(bound)))),
                                cum
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            fmt_labels(labels, None),
                            h.sum()
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            fmt_labels(labels, None),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_monotone() {
        let c = Counter::default();
        c.inc();
        c.add(2.5);
        c.add(-10.0); // ignored
        assert_eq!(c.get(), 3.5);
    }

    #[test]
    fn gauge_set_get() {
        let g = Gauge::default();
        g.set(0.73);
        assert_eq!(g.get(), 0.73);
        g.set(-2.0);
        assert_eq!(g.get(), -2.0);
    }

    #[test]
    fn histogram_buckets_cumulative() {
        let h = MetricHistogram::with_bounds(vec![1.0, 5.0, 10.0]);
        for v in [0.5, 0.7, 3.0, 7.0, 100.0] {
            h.observe(v);
        }
        let cum = h.cumulative();
        assert_eq!(cum, vec![(1.0, 2), (5.0, 3), (10.0, 4), (f64::INFINITY, 5)]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 111.2).abs() < 1e-9);
    }

    #[test]
    fn registry_same_series_shares_handle() {
        let r = Registry::new();
        let a = r
            .counter("jobs_total", "jobs", labels([("node", "ws-1")]))
            .unwrap();
        let b = r
            .counter("jobs_total", "jobs", labels([("node", "ws-1")]))
            .unwrap();
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2.0);
    }

    #[test]
    fn registry_kind_mismatch_rejected() {
        let r = Registry::new();
        r.counter("x_total", "x", Labels::new()).unwrap();
        assert!(matches!(
            r.gauge("x_total", "x", Labels::new()),
            Err(MetricError::KindMismatch { .. })
        ));
    }

    #[test]
    fn render_text_format() {
        let r = Registry::new();
        r.gauge(
            "gpu_utilization",
            "SM utilization",
            labels([("node", "ws-1"), ("gpu", "0")]),
        )
        .unwrap()
        .set(0.93);
        r.counter("heartbeats_total", "heartbeats", Labels::new())
            .unwrap()
            .add(42.0);
        let text = r.render();
        assert!(text.contains("# TYPE gpu_utilization gauge"));
        assert!(text.contains("gpu_utilization{gpu=\"0\",node=\"ws-1\"} 0.93"));
        assert!(text.contains("heartbeats_total 42"));
    }

    #[test]
    fn render_histogram_format() {
        let r = Registry::new();
        let h = r
            .histogram("sched_latency_seconds", "scheduling latency", Labels::new())
            .unwrap();
        h.observe(0.004);
        h.observe(0.3);
        let text = r.render();
        assert!(text.contains("sched_latency_seconds_bucket{le=\"0.005\"} 1"));
        assert!(text.contains("sched_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("sched_latency_seconds_count 2"));
    }

    #[test]
    fn concurrent_counter_updates() {
        let c = Arc::new(Counter::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000.0);
    }
}
