//! Allocation discipline of trace generation.
//!
//! `generate` sits in front of every experiment and used to allocate per
//! event twice over: `Vec` growth on every push batch plus the stable
//! sort's scratch buffer. Semester-length multi-campus sweeps regenerate
//! traces per scenario, so the hot loop must be allocation-free once a
//! buffer exists. This test pins the fix — [`gpunion_workload::generate_into`]
//! reuses the caller's buffer and orders events with an in-place unstable
//! sort on a total key — by counting real heap allocations around a warm
//! regeneration with a counting global allocator. It lives alone in its
//! own test binary so no concurrent test can perturb the counter.

use gpunion_des::{RngPool, SimDuration};
use gpunion_workload::{generate_into, paper_campus_labs, TraceConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[test]
fn trace_generation_does_not_allocate_into_a_warm_buffer() {
    let labs = paper_campus_labs();
    let cfg = TraceConfig {
        horizon: SimDuration::from_days(7),
        ..Default::default()
    };
    let pool = RngPool::new(42);
    // Cold run sizes the buffer (the reserve estimate keeps growth to a
    // handful of reallocations even here).
    let mut events = Vec::new();
    generate_into(&labs, &cfg, &pool, &mut events);
    let n = events.len();
    assert!(n > 500, "a week of campus demand: {n} events");

    // Warm run: every event is plain data, the per-lab RNG streams live
    // on the stack, and the sort is in-place — zero heap allocations.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    generate_into(&labs, &cfg, &pool, &mut events);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(events.len(), n, "regeneration is deterministic");
    assert_eq!(
        after - before,
        0,
        "trace hot loop allocated {} times per regeneration",
        after - before
    );
}
