//! Job specifications: model classes and resource requirements.
//!
//! The paper's interruption experiments use "PyTorch CNN and transformer
//! models"; the training-impact analysis distinguishes "memory-intensive
//! models" (longer checkpoint creation). Each [`ModelClass`] carries the
//! parameters those effects derive from: working-set VRAM, recoverable-state
//! size, and per-iteration compute.

use gpunion_des::SimDuration;
use gpunion_gpu::ComputeCapability;
use serde::{Deserialize, Serialize};

const GIB: u64 = 1 << 30;
const MIB: u64 = 1 << 20;

/// Canonical workload classes used across experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelClass {
    /// ResNet-style CNN (~100 MB state): fast checkpoints.
    CnnSmall,
    /// Wide CNN / detection model (~800 MB state).
    CnnLarge,
    /// Mid-size transformer fine-tune (~1.5 GB state).
    TransformerSmall,
    /// Large transformer (~6 GB state).
    TransformerLarge,
    /// Memory-intensive training (~14 GB state): the paper's
    /// interruption-sensitive case.
    MemoryIntensive,
}

/// Static parameters of a model class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Display name.
    pub name: &'static str,
    /// VRAM working set per GPU (weights + activations + optimizer).
    pub gpu_mem_bytes: u64,
    /// Recoverable state (what ALC checkpoints): weights + optimizer.
    pub state_bytes: u64,
    /// FP32 FLOPs per training iteration.
    pub flops_per_iter: f64,
    /// Fraction of state pages dirtied between two checkpoints at the
    /// default interval (drives incremental delta size).
    pub dirty_fraction: f64,
    /// Minimum CUDA compute capability (None = any).
    pub min_cc: Option<ComputeCapability>,
}

impl ModelClass {
    /// All classes.
    pub const ALL: [ModelClass; 5] = [
        ModelClass::CnnSmall,
        ModelClass::CnnLarge,
        ModelClass::TransformerSmall,
        ModelClass::TransformerLarge,
        ModelClass::MemoryIntensive,
    ];

    /// The class profile.
    pub const fn profile(self) -> ModelProfile {
        match self {
            ModelClass::CnnSmall => ModelProfile {
                name: "cnn-small",
                gpu_mem_bytes: 6 * GIB,
                state_bytes: 100 * MIB,
                flops_per_iter: 2.0e12,
                dirty_fraction: 1.0, // small states rewrite fully
                min_cc: None,
            },
            ModelClass::CnnLarge => ModelProfile {
                name: "cnn-large",
                gpu_mem_bytes: 12 * GIB,
                state_bytes: 800 * MIB,
                flops_per_iter: 9.0e12,
                dirty_fraction: 0.6,
                min_cc: None,
            },
            ModelClass::TransformerSmall => ModelProfile {
                name: "transformer-small",
                gpu_mem_bytes: 14 * GIB,
                state_bytes: 1536 * MIB,
                flops_per_iter: 1.6e13,
                dirty_fraction: 0.25,
                min_cc: Some(ComputeCapability::new(7, 0)),
            },
            ModelClass::TransformerLarge => ModelProfile {
                name: "transformer-large",
                gpu_mem_bytes: 22 * GIB,
                state_bytes: 6 * GIB,
                flops_per_iter: 6.0e13,
                dirty_fraction: 0.12,
                min_cc: Some(ComputeCapability::new(8, 0)),
            },
            ModelClass::MemoryIntensive => ModelProfile {
                name: "memory-intensive",
                gpu_mem_bytes: 38 * GIB,
                state_bytes: 14 * GIB,
                flops_per_iter: 4.0e13,
                dirty_fraction: 0.3,
                min_cc: Some(ComputeCapability::new(8, 0)),
            },
        }
    }
}

/// A batch training job request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingJobSpec {
    /// Model class.
    pub model: ModelClass,
    /// Iterations to run.
    pub iterations: u64,
    /// GPUs required (data parallel).
    pub gpus: u8,
    /// ALC checkpoint interval (0 ⇒ stateless / no checkpointing).
    pub checkpoint_interval: SimDuration,
    /// Priority class, higher = more urgent.
    pub priority: u8,
}

impl TrainingJobSpec {
    /// A spec with the defaults the paper's deployment uses: 10-minute
    /// checkpoints, single GPU, normal priority.
    pub fn new(model: ModelClass, iterations: u64) -> Self {
        TrainingJobSpec {
            model,
            iterations,
            gpus: 1,
            checkpoint_interval: SimDuration::from_mins(10),
            priority: 1,
        }
    }

    /// Expected wall-clock on a device of the given FP32 TFLOPS (no
    /// interruptions, MFU-adjusted).
    pub fn expected_duration(&self, tflops: f64) -> SimDuration {
        let secs = self.iterations as f64 * iter_secs(self.model, tflops, self.gpus);
        SimDuration::from_secs_f64(secs)
    }
}

/// Achievable fraction of peak FLOPS (model FLOP utilization).
pub const MFU: f64 = 0.38;

/// Seconds per training iteration on a device of `tflops` peak FP32, with
/// `gpus`-way data parallelism (92 % scaling efficiency per the usual
/// all-reduce overhead on PCIe boxes).
pub fn iter_secs(model: ModelClass, tflops: f64, gpus: u8) -> f64 {
    assert!(tflops > 0.0);
    let p = model.profile();
    let scale = match gpus {
        0 | 1 => 1.0,
        n => 0.92 * n as f64,
    };
    p.flops_per_iter / (tflops * 1e12 * MFU * scale)
}

/// An interactive (Jupyter) session request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractiveSpec {
    /// VRAM the session needs on one GPU.
    pub gpu_mem_bytes: u64,
    /// How long the user intends to work.
    pub duration: SimDuration,
    /// How long the user will wait for a free GPU before giving up —
    /// the quantity behind the paper's "+40 % interactive sessions".
    pub patience: SimDuration,
}

impl InteractiveSpec {
    /// A typical debugging session: 8 GB, ~45 min, 10 min patience.
    pub fn typical() -> Self {
        InteractiveSpec {
            gpu_mem_bytes: 8 * GIB,
            duration: SimDuration::from_mins(45),
            patience: SimDuration::from_mins(10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_sane() {
        for m in ModelClass::ALL {
            let p = m.profile();
            assert!(p.state_bytes <= p.gpu_mem_bytes, "{:?}", m);
            assert!(p.flops_per_iter > 0.0);
            assert!(p.dirty_fraction > 0.0 && p.dirty_fraction <= 1.0);
        }
    }

    #[test]
    fn memory_intensive_has_biggest_state() {
        let max_other = ModelClass::ALL
            .iter()
            .filter(|m| **m != ModelClass::MemoryIntensive)
            .map(|m| m.profile().state_bytes)
            .max()
            .unwrap();
        assert!(ModelClass::MemoryIntensive.profile().state_bytes > max_other);
    }

    #[test]
    fn iter_time_scales_with_device_speed() {
        // RTX 4090 (82.6 TF) runs ~2.3× faster than RTX 3090 (35.6 TF).
        let slow = iter_secs(ModelClass::TransformerSmall, 35.6, 1);
        let fast = iter_secs(ModelClass::TransformerSmall, 82.6, 1);
        assert!((slow / fast - 82.6 / 35.6).abs() < 1e-9);
    }

    #[test]
    fn multi_gpu_scaling_sub_linear() {
        let one = iter_secs(ModelClass::TransformerLarge, 35.6, 1);
        let four = iter_secs(ModelClass::TransformerLarge, 35.6, 4);
        let speedup = one / four;
        assert!(speedup > 3.5 && speedup < 4.0, "speedup {speedup}");
    }

    #[test]
    fn expected_duration_reasonable() {
        // CNN-small on a 3090: ~0.15 s/iter ⇒ 20 000 iters ≈ 49 min.
        let spec = TrainingJobSpec::new(ModelClass::CnnSmall, 20_000);
        let d = spec.expected_duration(35.6);
        let mins = d.as_secs_f64() / 60.0;
        assert!(mins > 30.0 && mins < 90.0, "{mins} min");
    }

    #[test]
    fn default_checkpoint_interval_matches_paper() {
        let spec = TrainingJobSpec::new(ModelClass::CnnSmall, 1);
        assert_eq!(spec.checkpoint_interval, SimDuration::from_mins(10));
    }
}
