//! # gpunion-workload — job models and campus demand traces
//!
//! Analytic equivalents of the paper's workloads:
//!
//! * [`job`] — model classes (CNN, transformer, memory-intensive) with the
//!   VRAM / state-size / FLOP parameters that all interruption and
//!   checkpoint costs derive from.
//! * [`training`] — live run state: progress, ALC checkpoints, rollback on
//!   emergency departure, interruption ledgers.
//! * [`trace`] — deterministic campus demand generation: per-lab imbalance,
//!   diurnal/weekly/semester patterns, interactive session bursts. GPUnion
//!   and the baselines replay identical traces.
//! * [`provider`] — churn models for the three interruption classes of §4.

pub mod job;
pub mod provider;
pub mod trace;
pub mod training;

pub use job::{iter_secs, InteractiveSpec, ModelClass, ModelProfile, TrainingJobSpec, MFU};
pub use provider::{ChurnModel, InterruptionEvent, InterruptionKind};
pub use trace::{
    diurnal_multiplier, generate, generate_into, paper_campus_labs, splitmix64, weekly_multiplier,
    LabId, LabProfile, Request, TraceConfig, TraceEvent, UserPopulation,
};
pub use training::{
    fig3_job_set, InterruptionLedger, InterruptionRecord, RunProgress, TrainingRun,
};
