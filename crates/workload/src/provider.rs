//! Provider churn models: when owners reclaim, pause, or lose their nodes.
//!
//! §4's interruption experiments distinguish three provider behaviours —
//! *scheduled departure* (graceful shutdown with a checkpoint window),
//! *emergency departure* (immediate disconnect), and *temporary
//! unavailability* — at "0.5 to 3.2 events per day per node". This module
//! generates those event streams deterministically.

use gpunion_des::{exponential, log_normal, RngPool, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The three interruption classes from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterruptionKind {
    /// Provider initiates graceful shutdown; workloads get a grace window.
    ScheduledDeparture,
    /// Immediate disconnection — no warning, no checkpoint window.
    EmergencyDeparture,
    /// Short outage; the provider returns (reboot, urgent local use).
    TemporaryUnavailability,
}

impl InterruptionKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            InterruptionKind::ScheduledDeparture => "scheduled",
            InterruptionKind::EmergencyDeparture => "emergency",
            InterruptionKind::TemporaryUnavailability => "temporary",
        }
    }
}

/// One provider interruption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterruptionEvent {
    /// When it happens.
    pub at: SimTime,
    /// Which volunteer node (index into the experiment's node list).
    pub node_index: usize,
    /// Class.
    pub kind: InterruptionKind,
    /// When the provider returns.
    pub returns_at: SimTime,
}

/// Churn generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnModel {
    /// Interruption events per day per node (the paper sweeps 0.5–3.2).
    pub events_per_day: f64,
    /// Mix of (scheduled, emergency, temporary); need not sum to 1.
    pub mix: (f64, f64, f64),
    /// Median outage for temporary unavailability, minutes.
    pub temp_outage_median_mins: f64,
    /// Median absence after a departure (scheduled or emergency), hours.
    pub departure_absence_median_hours: f64,
}

impl Default for ChurnModel {
    fn default() -> Self {
        ChurnModel {
            events_per_day: 1.5,
            // Campus reality: most exits are announced; hard failures rare.
            mix: (0.5, 0.2, 0.3),
            temp_outage_median_mins: 25.0,
            departure_absence_median_hours: 9.0,
        }
    }
}

impl ChurnModel {
    /// Generate the interruption stream for `n_nodes` volunteers over
    /// `horizon`. Events are sorted by time. Overlapping events on one node
    /// are thinned: a new interruption cannot start before the previous
    /// return (a node that's gone can't leave again).
    pub fn generate(
        &self,
        n_nodes: usize,
        horizon: SimDuration,
        pool: &RngPool,
    ) -> Vec<InterruptionEvent> {
        let mut events = Vec::new();
        let horizon_days = horizon.as_secs_f64() / 86_400.0;
        for node in 0..n_nodes {
            let mut rng = pool.stream_n("churn-node", node as u64);
            let mut t_days = 0.0f64;
            let mut busy_until = SimTime::ZERO;
            loop {
                t_days += exponential(&mut rng, self.events_per_day);
                if t_days >= horizon_days {
                    break;
                }
                let at = SimTime::from_nanos((t_days * 86_400.0 * 1e9) as u64);
                if at < busy_until {
                    continue; // still away from the previous event
                }
                let kind = self.pick_kind(&mut rng);
                let away = match kind {
                    InterruptionKind::TemporaryUnavailability => {
                        let mins = log_normal(&mut rng, self.temp_outage_median_mins, 0.6)
                            .clamp(3.0, 240.0);
                        SimDuration::from_secs_f64(mins * 60.0)
                    }
                    _ => {
                        let hours = log_normal(&mut rng, self.departure_absence_median_hours, 0.5)
                            .clamp(1.0, 72.0);
                        SimDuration::from_secs_f64(hours * 3600.0)
                    }
                };
                let returns_at = at + away;
                busy_until = returns_at;
                events.push(InterruptionEvent {
                    at,
                    node_index: node,
                    kind,
                    returns_at,
                });
            }
        }
        events.sort_by_key(|e| e.at);
        events
    }

    fn pick_kind(&self, rng: &mut impl Rng) -> InterruptionKind {
        let (s, e, t) = self.mix;
        let total = s + e + t;
        let x = rng.gen_range(0.0..total);
        if x < s {
            InterruptionKind::ScheduledDeparture
        } else if x < s + e {
            InterruptionKind::EmergencyDeparture
        } else {
            InterruptionKind::TemporaryUnavailability
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_deterministic() {
        let m = ChurnModel::default();
        let a = m.generate(2, SimDuration::from_days(7), &RngPool::new(9));
        let b = m.generate(2, SimDuration::from_days(7), &RngPool::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn rate_close_to_configured() {
        let m = ChurnModel {
            events_per_day: 2.0,
            ..Default::default()
        };
        let events = m.generate(10, SimDuration::from_days(30), &RngPool::new(1));
        // Thinning (no overlap) removes some events; expect within [0.4, 1.0]
        // of the nominal rate.
        let nominal = 2.0 * 10.0 * 30.0;
        let ratio = events.len() as f64 / nominal;
        assert!(ratio > 0.4 && ratio < 1.05, "ratio {ratio}");
    }

    #[test]
    fn no_overlapping_events_per_node() {
        let m = ChurnModel {
            events_per_day: 3.2,
            ..Default::default()
        };
        let events = m.generate(2, SimDuration::from_days(7), &RngPool::new(4));
        for node in 0..2 {
            let mine: Vec<_> = events.iter().filter(|e| e.node_index == node).collect();
            for w in mine.windows(2) {
                assert!(
                    w[1].at >= w[0].returns_at,
                    "node {node}: event at {} before return {}",
                    w[1].at,
                    w[0].returns_at
                );
            }
        }
    }

    #[test]
    fn all_kinds_present_and_mixed() {
        let m = ChurnModel {
            events_per_day: 3.0,
            ..Default::default()
        };
        let events = m.generate(8, SimDuration::from_days(30), &RngPool::new(2));
        let count = |k: InterruptionKind| events.iter().filter(|e| e.kind == k).count();
        let s = count(InterruptionKind::ScheduledDeparture);
        let e = count(InterruptionKind::EmergencyDeparture);
        let t = count(InterruptionKind::TemporaryUnavailability);
        assert!(s > 0 && e > 0 && t > 0);
        assert!(s > e, "scheduled more common than emergency per the mix");
    }

    #[test]
    fn temporary_outages_shorter_than_departures() {
        let m = ChurnModel::default();
        let events = m.generate(4, SimDuration::from_days(30), &RngPool::new(3));
        let mean_away = |k: InterruptionKind| {
            let v: Vec<f64> = events
                .iter()
                .filter(|e| e.kind == k)
                .map(|e| e.returns_at.since(e.at).as_secs_f64())
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let temp = mean_away(InterruptionKind::TemporaryUnavailability);
        let sched = mean_away(InterruptionKind::ScheduledDeparture);
        assert!(
            temp < sched / 4.0,
            "temporary {temp}s vs scheduled {sched}s"
        );
    }

    #[test]
    fn zero_nodes_empty() {
        let m = ChurnModel::default();
        assert!(m
            .generate(0, SimDuration::from_days(7), &RngPool::new(1))
            .is_empty());
    }
}
