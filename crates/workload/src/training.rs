//! Live training-run state: progress, checkpoints, lost work.
//!
//! A [`TrainingRun`] tracks completed iterations and the iteration recorded
//! in the last durable checkpoint. On an emergency departure the run resumes
//! from the checkpointed iteration — the difference is the paper's "work
//! loss equivalent to the checkpoint interval". The run also owns the
//! job's [`StateModel`] so checkpoint deltas reflect training activity.

use crate::job::{iter_secs, ModelClass, TrainingJobSpec};
use gpunion_des::{SimDuration, SimTime};
use gpunion_storage::{Snapshot, StateModel};
use serde::{Deserialize, Serialize};

/// Outcome of advancing a run for some wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunProgress {
    /// Still training.
    InProgress,
    /// All iterations finished.
    Complete,
}

/// Mutable state of one training job while placed on a device.
#[derive(Debug, Clone)]
pub struct TrainingRun {
    spec: TrainingJobSpec,
    done_iters: u64,
    checkpointed_iters: u64,
    checkpoint_seq: u64,
    state: StateModel,
    last_snapshot: Option<Snapshot>,
    /// Cumulative wall-clock spent actually training (excludes downtime).
    compute_time: SimDuration,
    /// Fractional progress toward the next iteration, in seconds. Without
    /// this carry, advancing by exactly one iteration-time would floor to
    /// zero iterations and the run could never finish (Zeno's paradox).
    carry_secs: f64,
}

impl TrainingRun {
    /// Fresh run for a spec.
    pub fn new(spec: TrainingJobSpec) -> Self {
        let state = StateModel::with_default_pages(spec.model.profile().state_bytes);
        TrainingRun {
            spec,
            done_iters: 0,
            checkpointed_iters: 0,
            checkpoint_seq: 0,
            state,
            last_snapshot: None,
            compute_time: SimDuration::ZERO,
            carry_secs: 0.0,
        }
    }

    /// The spec this run executes.
    pub fn spec(&self) -> &TrainingJobSpec {
        &self.spec
    }

    /// Completed iterations.
    pub fn done_iters(&self) -> u64 {
        self.done_iters
    }

    /// Iterations captured by the last durable checkpoint.
    pub fn checkpointed_iters(&self) -> u64 {
        self.checkpointed_iters
    }

    /// Latest checkpoint sequence number (0 = none yet).
    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint_seq
    }

    /// Fraction of iterations complete.
    pub fn progress(&self) -> f64 {
        if self.spec.iterations == 0 {
            1.0
        } else {
            self.done_iters as f64 / self.spec.iterations as f64
        }
    }

    /// Total time spent computing (for overhead accounting).
    pub fn compute_time(&self) -> SimDuration {
        self.compute_time
    }

    /// Is the run finished?
    pub fn is_complete(&self) -> bool {
        self.done_iters >= self.spec.iterations
    }

    /// Train for `dt` of wall-clock on a device of `tflops`; returns the new
    /// status. Dirties state pages proportionally to iterations executed.
    pub fn advance(&mut self, dt: SimDuration, tflops: f64) -> RunProgress {
        if self.is_complete() {
            return RunProgress::Complete;
        }
        let per_iter = iter_secs(self.spec.model, tflops, self.spec.gpus);
        let total = self.carry_secs + dt.as_secs_f64();
        let can_do = (total / per_iter + 1e-9).floor() as u64;
        let doing = can_do.min(self.spec.iterations - self.done_iters);
        self.carry_secs = (total - doing as f64 * per_iter).max(0.0);
        self.done_iters += doing;
        self.compute_time += SimDuration::from_secs_f64(doing as f64 * per_iter);
        // Each optimizer step rewrites a slice of the state; spread touches
        // so the dirty fraction between checkpoints matches the profile.
        let dirty = self.spec.model.profile().dirty_fraction;
        let page_count = self.state.page_count() as f64;
        let iters_per_interval = (self.spec.checkpoint_interval.as_secs_f64() / per_iter).max(1.0);
        let pages_per_iter = (page_count * dirty / iters_per_interval).max(0.05);
        self.state
            .touch_pages((pages_per_iter * doing as f64).round() as usize);
        self.state.append_file("train.log", doing * 256);
        if self.is_complete() {
            RunProgress::Complete
        } else {
            RunProgress::InProgress
        }
    }

    /// Wall-clock needed to finish on a device of `tflops`.
    pub fn remaining_time(&self, tflops: f64) -> SimDuration {
        let per_iter = iter_secs(self.spec.model, tflops, self.spec.gpus);
        let remaining = (self.spec.iterations - self.done_iters.min(self.spec.iterations)) as f64
            * per_iter
            - self.carry_secs;
        SimDuration::from_secs_f64(remaining.max(0.0))
    }

    /// Capture an application-level checkpoint. Returns the snapshot and the
    /// incremental transfer size relative to the previous checkpoint.
    pub fn capture_checkpoint(&mut self) -> (Snapshot, u64) {
        self.checkpoint_seq += 1;
        let snap = self.state.capture(self.checkpoint_seq);
        let transfer = match &self.last_snapshot {
            Some(prev) => snap.delta_from(prev).transfer_bytes(),
            None => snap.full_bytes(),
        };
        self.checkpointed_iters = self.done_iters;
        self.last_snapshot = Some(snap.clone());
        (snap, transfer)
    }

    /// Roll back to the last durable checkpoint (emergency departure: all
    /// work since then is lost). Returns the iterations lost.
    pub fn rollback_to_checkpoint(&mut self) -> u64 {
        let lost = self.done_iters - self.checkpointed_iters;
        self.done_iters = self.checkpointed_iters;
        lost
    }

    /// Ideal uninterrupted duration on `tflops` (baseline for the paper's
    /// training-impact percentages).
    pub fn ideal_duration(&self, tflops: f64) -> SimDuration {
        self.spec.expected_duration(tflops)
    }
}

/// The paper's Fig. 3 workload: 20 training jobs, CNN and transformer mixed.
pub fn fig3_job_set() -> Vec<TrainingJobSpec> {
    let mut jobs = Vec::new();
    for i in 0..20u64 {
        let model = match i % 4 {
            0 => ModelClass::CnnSmall,
            1 => ModelClass::CnnLarge,
            2 => ModelClass::TransformerSmall,
            _ => ModelClass::TransformerLarge,
        };
        // 6–14 h of single-GPU work on a 3090, varied deterministic sizes.
        let per_iter = iter_secs(model, 35.6, 1);
        let hours = 6.0 + (i % 5) as f64 * 2.0;
        let iterations = (hours * 3600.0 / per_iter) as u64;
        jobs.push(TrainingJobSpec::new(model, iterations));
    }
    jobs
}

/// Interruption bookkeeping for the training-impact analysis.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InterruptionLedger {
    /// (time, iterations lost, downtime) per interruption.
    pub events: Vec<InterruptionRecord>,
}

/// One interruption's cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterruptionRecord {
    /// When the interruption hit.
    pub at: SimTime,
    /// Iterations rolled back.
    pub iters_lost: u64,
    /// Wall-clock from interruption to resumed training.
    pub downtime: SimDuration,
}

impl InterruptionLedger {
    /// Record one interruption.
    pub fn record(&mut self, at: SimTime, iters_lost: u64, downtime: SimDuration) {
        self.events.push(InterruptionRecord {
            at,
            iters_lost,
            downtime,
        });
    }

    /// Number of interruptions.
    pub fn count(&self) -> usize {
        self.events.len()
    }

    /// Total downtime across interruptions.
    pub fn total_downtime(&self) -> SimDuration {
        self.events
            .iter()
            .fold(SimDuration::ZERO, |acc, e| acc + e.downtime)
    }

    /// Total iterations lost.
    pub fn total_iters_lost(&self) -> u64 {
        self.events.iter().map(|e| e.iters_lost).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TrainingJobSpec {
        TrainingJobSpec::new(ModelClass::CnnSmall, 1000)
    }

    #[test]
    fn advance_accumulates_iterations() {
        let mut run = TrainingRun::new(spec());
        let per_iter = iter_secs(ModelClass::CnnSmall, 35.6, 1);
        let status = run.advance(SimDuration::from_secs_f64(per_iter * 100.5), 35.6);
        assert_eq!(status, RunProgress::InProgress);
        assert_eq!(run.done_iters(), 100);
        assert!((run.progress() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn completion_detected_and_capped() {
        let mut run = TrainingRun::new(spec());
        let status = run.advance(SimDuration::from_hours(100), 35.6);
        assert_eq!(status, RunProgress::Complete);
        assert_eq!(run.done_iters(), 1000);
        assert!(run.is_complete());
        // Further advance is a no-op.
        assert_eq!(
            run.advance(SimDuration::from_secs(60), 35.6),
            RunProgress::Complete
        );
        assert_eq!(run.done_iters(), 1000);
    }

    #[test]
    fn rollback_loses_uncheckpointed_work() {
        let mut run = TrainingRun::new(spec());
        let per_iter = iter_secs(ModelClass::CnnSmall, 35.6, 1);
        run.advance(SimDuration::from_secs_f64(per_iter * 300.5), 35.6);
        run.capture_checkpoint();
        let checkpointed = run.checkpointed_iters();
        assert_eq!(checkpointed, run.done_iters());
        run.advance(SimDuration::from_secs_f64(per_iter * 200.5), 35.6);
        let before = run.done_iters();
        assert!(before > checkpointed);
        let lost = run.rollback_to_checkpoint();
        assert_eq!(lost, before - checkpointed);
        assert_eq!(run.done_iters(), checkpointed);
    }

    #[test]
    fn first_checkpoint_full_then_incremental() {
        let mut run = TrainingRun::new(TrainingJobSpec::new(ModelClass::TransformerLarge, 100_000));
        run.advance(SimDuration::from_mins(10), 35.6);
        let (s1, t1) = run.capture_checkpoint();
        assert_eq!(s1.seq, 1);
        assert_eq!(t1, s1.full_bytes(), "first checkpoint is full");
        run.advance(SimDuration::from_mins(10), 35.6);
        let (s2, t2) = run.capture_checkpoint();
        assert_eq!(s2.seq, 2);
        assert!(t2 < t1 / 2, "incremental {t2} must be ≪ full {t1}");
        assert!(t2 > 0);
    }

    #[test]
    fn dirty_fraction_close_to_profile() {
        // After exactly one checkpoint interval of training, the delta
        // should be roughly dirty_fraction × state size.
        let spec = TrainingJobSpec::new(ModelClass::TransformerLarge, 1_000_000);
        let mut run = TrainingRun::new(spec.clone());
        run.advance(spec.checkpoint_interval, 35.6);
        let (s1, _) = run.capture_checkpoint();
        run.advance(spec.checkpoint_interval, 35.6);
        let (s2, t2) = run.capture_checkpoint();
        let frac = t2 as f64 / s2.full_bytes() as f64;
        let expect = ModelClass::TransformerLarge.profile().dirty_fraction;
        assert!(
            (frac - expect).abs() < expect * 0.5,
            "measured dirty {frac:.3}, profile {expect}"
        );
        assert_ne!(s1.digest(), s2.digest());
    }

    #[test]
    fn remaining_time_shrinks() {
        let mut run = TrainingRun::new(spec());
        let before = run.remaining_time(35.6);
        run.advance(SimDuration::from_secs(60), 35.6);
        assert!(run.remaining_time(35.6) < before);
    }

    #[test]
    fn fig3_jobs_match_paper_setup() {
        let jobs = fig3_job_set();
        assert_eq!(jobs.len(), 20);
        let cnn = jobs
            .iter()
            .filter(|j| matches!(j.model, ModelClass::CnnSmall | ModelClass::CnnLarge))
            .count();
        assert_eq!(cnn, 10, "half CNN, half transformer");
        for j in &jobs {
            let h = j.expected_duration(35.6).as_secs_f64() / 3600.0;
            assert!(h > 4.0 && h < 16.0, "job length {h} h");
        }
    }

    #[test]
    fn ledger_totals() {
        let mut l = InterruptionLedger::default();
        l.record(SimTime::from_secs(10), 100, SimDuration::from_secs(30));
        l.record(SimTime::from_secs(90), 50, SimDuration::from_secs(45));
        assert_eq!(l.count(), 2);
        assert_eq!(l.total_iters_lost(), 150);
        assert_eq!(l.total_downtime(), SimDuration::from_secs(75));
    }
}
