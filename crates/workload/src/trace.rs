//! Campus demand traces: who asks for GPUs, when, and how much.
//!
//! The paper's premise is *structural imbalance*: "some laboratories run
//! sizeable GPU clusters while others have only minimal capacity", with
//! "temporal underutilization … between experiment cycles or during semester
//! breaks". The trace generator reproduces those dynamics: per-lab demand
//! rates modulated by diurnal/weekly/semester patterns, a heavy-tailed job
//! size mix, and bursts of interactive sessions in working hours.
//!
//! Traces are deterministic functions of a [`RngPool`] seed, so GPUnion and
//! every baseline platform replay *exactly* the same demand — the comparison
//! in Fig. 2 is paired, not statistical.

use crate::job::{InteractiveSpec, ModelClass, TrainingJobSpec};
use gpunion_des::{exponential, log_normal, RngPool, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifies a research group in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LabId(pub u32);

/// A research group and its demand characteristics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabProfile {
    /// Group name for reports.
    pub name: String,
    /// Indices (into the campus host list) of servers this lab owns.
    pub owned_hosts: Vec<usize>,
    /// Long-run average GPU demand in "GPUs busy" units (e.g. 2.5 means the
    /// lab would keep 2.5 GPUs busy around the clock if it could).
    pub mean_gpu_demand: f64,
    /// Interactive sessions per weekday (students debugging).
    pub interactive_per_day: f64,
    /// Mix of model classes this lab submits (weights, need not sum to 1).
    pub model_mix: Vec<(ModelClass, f64)>,
}

/// One demand event in the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Arrival time.
    pub at: SimTime,
    /// Submitting lab.
    pub lab: LabId,
    /// What arrived.
    pub request: Request,
}

/// The two request kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Batch training job.
    Training(TrainingJobSpec),
    /// Interactive session.
    Interactive(InteractiveSpec),
}

/// Trace-level configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Mean training-job length in hours (log-normal median).
    pub mean_job_hours: f64,
    /// Week index (0-based) when semester break starts, if any.
    pub break_start_week: Option<u32>,
    /// Demand multiplier during the break.
    pub break_multiplier: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            horizon: SimDuration::from_days(42), // the paper's six weeks
            mean_job_hours: 7.0,
            break_start_week: None,
            break_multiplier: 0.3,
        }
    }
}

/// Hour-of-day demand multiplier: low at night, peaking mid-afternoon.
pub fn diurnal_multiplier(hour: f64) -> f64 {
    // Smooth two-bump curve: main peak 15:00, minor 21:00 (evening students).
    let main = (-((hour - 15.0) * (hour - 15.0)) / 18.0).exp();
    let evening = 0.5 * (-((hour - 21.0) * (hour - 21.0)) / 8.0).exp();
    0.25 + 1.5 * main + evening
}

/// Day-of-week multiplier (0 = Monday).
pub fn weekly_multiplier(day: u32) -> f64 {
    match day % 7 {
        5 => 0.55, // Saturday
        6 => 0.45, // Sunday
        _ => 1.0,
    }
}

fn demand_multiplier(cfg: &TraceConfig, at: SimTime) -> f64 {
    let secs = at.as_secs_f64();
    let hour = (secs / 3600.0) % 24.0;
    let day = ((secs / 86_400.0) as u32) % 7;
    let week = (secs / (7.0 * 86_400.0)) as u32;
    let mut m = diurnal_multiplier(hour) * weekly_multiplier(day);
    if let Some(start) = cfg.break_start_week {
        if week >= start {
            m *= cfg.break_multiplier;
        }
    }
    m
}

/// Generate the full campus demand trace for a set of labs.
///
/// Arrivals are a non-homogeneous Poisson process per lab, produced by
/// thinning a homogeneous process at the peak rate. Allocates a fresh
/// event buffer; semester-scale callers regenerating traces in a loop
/// should reuse one through [`generate_into`].
pub fn generate(labs: &[LabProfile], cfg: &TraceConfig, pool: &RngPool) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    generate_into(labs, cfg, pool, &mut events);
    events
}

/// [`generate`] into a caller-owned buffer (cleared first, capacity
/// reused). The generation loop itself is allocation-free — every event
/// is plain data, the per-lab RNG streams live on the stack, and the
/// final ordering pass is an in-place unstable sort on a total key — so
/// regenerating into a warm buffer performs **zero** heap allocations
/// (pinned by the counting-allocator test in `tests/alloc.rs`). This is
/// what keeps multi-campus, semester-length sweeps from thrashing the
/// allocator once traces are produced per scenario in a loop.
pub fn generate_into(
    labs: &[LabProfile],
    cfg: &TraceConfig,
    pool: &RngPool,
    events: &mut Vec<TraceEvent>,
) {
    events.clear();
    // Peak multiplier bound for thinning.
    let peak = 0.25 + 1.5 + 0.5;
    // Size the buffer for the expected accepted-event count (thinning
    // keeps ≈ mean-multiplier/peak of the homogeneous arrivals) so the
    // cold path takes O(1) growths instead of O(log n).
    let horizon_h = cfg.horizon.as_secs_f64() / 3600.0;
    let expected: f64 = labs
        .iter()
        .map(|l| {
            let train = l.mean_gpu_demand / (cfg.mean_job_hours * 0.85);
            let interactive = l.interactive_per_day / 24.0;
            (train + interactive) * horizon_h * 0.75
        })
        .sum();
    events.reserve(expected as usize);
    for (i, lab) in labs.iter().enumerate() {
        let lab_id = LabId(i as u32);
        let mut rng = pool.stream_n("trace-lab", i as u64);

        // --- training jobs ---
        // mean demand D (gpu-duty) = rate/hour × mean_job_gpu_hours ⇒
        // base hourly rate = D / (mean_job_hours × calibration).
        // Calibration folds two biases: the weekly mean of the thinning
        // multiplier (≈ 0.706 diurnal × 0.857 weekly = 0.605… but thinning
        // uses multiplier/peak, cancelling peak) and the log-normal
        // mean/median ratio exp(σ²/2) ≈ 1.197 for σ = 0.6. Net ≈ 0.85.
        const DEMAND_CALIBRATION: f64 = 0.85;
        let base_rate_per_hour = lab.mean_gpu_demand / (cfg.mean_job_hours * DEMAND_CALIBRATION);
        if base_rate_per_hour > 0.0 && !lab.model_mix.is_empty() {
            let peak_rate = base_rate_per_hour * peak;
            let mut t = 0.0f64;
            loop {
                t += exponential(&mut rng, peak_rate);
                if t >= horizon_h {
                    break;
                }
                let at = SimTime::from_nanos((t * 3.6e12) as u64);
                let accept = demand_multiplier(cfg, at) / peak;
                if !rng.gen_bool(accept.clamp(0.0, 1.0)) {
                    continue;
                }
                let model = pick_model(&mut rng, &lab.model_mix);
                let hours = log_normal(&mut rng, cfg.mean_job_hours, 0.6).clamp(0.5, 48.0);
                let per_iter = crate::job::iter_secs(model, 35.6, 1);
                let iterations = ((hours * 3600.0) / per_iter).max(1.0) as u64;
                events.push(TraceEvent {
                    at,
                    lab: lab_id,
                    request: Request::Training(TrainingJobSpec::new(model, iterations)),
                });
            }
        }

        // --- interactive sessions ---
        if lab.interactive_per_day > 0.0 {
            // Session *counts* carry no job-size bias; only the thinning
            // mean (≈ 0.71 diurnal×weekly) needs compensating.
            const ARRIVAL_CALIBRATION: f64 = 0.71;
            let base_rate_per_hour = lab.interactive_per_day / (24.0 * ARRIVAL_CALIBRATION);
            let peak_rate = base_rate_per_hour * peak;
            let mut t = 0.0f64;
            loop {
                t += exponential(&mut rng, peak_rate);
                if t >= horizon_h {
                    break;
                }
                let at = SimTime::from_nanos((t * 3.6e12) as u64);
                let accept = demand_multiplier(cfg, at) / peak;
                if !rng.gen_bool(accept.clamp(0.0, 1.0)) {
                    continue;
                }
                let mins = log_normal(&mut rng, 45.0, 0.7).clamp(10.0, 360.0);
                events.push(TraceEvent {
                    at,
                    lab: lab_id,
                    request: Request::Interactive(InteractiveSpec {
                        gpu_mem_bytes: 8 << 30,
                        duration: SimDuration::from_secs_f64(mins * 60.0),
                        patience: SimDuration::from_mins(10),
                    }),
                });
            }
        }
    }
    // In-place, allocation-free sort. The key is total over the push
    // order's tie candidates — (time, lab index, training-before-
    // interactive) — so the result matches what a stable sort over the
    // generation order produced (golden traces depend on it).
    events.sort_unstable_by_key(|e| {
        (
            e.at,
            e.lab,
            match e.request {
                Request::Training(_) => 0u8,
                Request::Interactive(_) => 1,
            },
        )
    });
}

fn pick_model(rng: &mut impl Rng, mix: &[(ModelClass, f64)]) -> ModelClass {
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total);
    for (m, w) in mix {
        if x < *w {
            return *m;
        }
        x -= w;
    }
    mix.last().expect("non-empty mix").0
}

/// The paper's campus: 11 GPU servers (host indices 0..=10 matching
/// [`gpunion_gpu::paper_testbed`]) shared by four GPU-rich labs, plus five
/// GPU-poor groups that own nothing. Calibrated so that manual coordination
/// yields ≈ 34 % average utilization and pooled scheduling ≈ 67 % (Fig. 2).
pub fn paper_campus_labs() -> Vec<LabProfile> {
    let cnn_mix = vec![
        (ModelClass::CnnSmall, 0.5),
        (ModelClass::CnnLarge, 0.3),
        (ModelClass::TransformerSmall, 0.2),
    ];
    let nlp_mix = vec![
        (ModelClass::TransformerSmall, 0.4),
        (ModelClass::TransformerLarge, 0.4),
        (ModelClass::MemoryIntensive, 0.2),
    ];
    let sys_mix = vec![
        (ModelClass::CnnSmall, 0.4),
        (ModelClass::CnnLarge, 0.4),
        (ModelClass::TransformerSmall, 0.2),
    ];
    let mut labs = vec![
        // Workstation owners: ws-1..8 are hosts 0..7, one 3090 each; owners
        // use their own boxes in bursts (~25 % duty).
        LabProfile {
            name: "vision-group-A".into(),
            owned_hosts: vec![0, 1, 2],
            mean_gpu_demand: 0.8,
            interactive_per_day: 3.0,
            model_mix: cnn_mix.clone(),
        },
        LabProfile {
            name: "vision-group-B".into(),
            owned_hosts: vec![3, 4],
            mean_gpu_demand: 0.5,
            interactive_per_day: 2.0,
            model_mix: cnn_mix.clone(),
        },
        LabProfile {
            name: "robotics-group".into(),
            owned_hosts: vec![5, 6, 7],
            mean_gpu_demand: 0.7,
            interactive_per_day: 2.0,
            model_mix: sys_mix.clone(),
        },
        // Rack owners.
        LabProfile {
            name: "ml-lab (8×4090)".into(),
            owned_hosts: vec![8],
            mean_gpu_demand: 2.8,
            interactive_per_day: 4.0,
            model_mix: cnn_mix,
        },
        LabProfile {
            name: "nlp-lab (2×A100)".into(),
            owned_hosts: vec![9],
            mean_gpu_demand: 1.0,
            interactive_per_day: 2.0,
            model_mix: nlp_mix.clone(),
        },
        LabProfile {
            name: "systems-lab (4×A6000)".into(),
            owned_hosts: vec![10],
            mean_gpu_demand: 1.2,
            interactive_per_day: 2.0,
            model_mix: sys_mix,
        },
    ];
    // GPU-poor groups: sustained unmet demand, no hardware.
    for (i, (name, demand, interactive)) in [
        ("theory-group", 3.2, 2.0),
        ("bio-ai-group", 4.4, 3.0),
        ("undergrad-cohort", 5.2, 8.0),
        ("med-imaging-group", 3.6, 2.0),
        ("early-stage-researchers", 3.0, 4.0),
    ]
    .into_iter()
    .enumerate()
    {
        labs.push(LabProfile {
            name: name.into(),
            owned_hosts: vec![],
            mean_gpu_demand: demand,
            interactive_per_day: interactive,
            model_mix: vec![
                (ModelClass::CnnSmall, 0.5),
                (ModelClass::CnnLarge, 0.25),
                (ModelClass::TransformerSmall, 0.25),
            ],
        });
        let _ = i;
    }
    labs
}

/// A campus-federation-scale synthetic user population with heavy-tailed
/// demand — the "million-user" workload behind the marketplace's
/// fair-share admission (DESIGN.md §3c). Everything is a pure integer
/// function of `(seed, index)`: no allocation, no floats, no RNG state,
/// so a 10⁶-user population costs nothing to "hold" and two replays are
/// bit-identical on any platform.
///
/// The heavy tails use an octave trick instead of `powf`: pick an octave
/// `[N/2^(o+1), N/2^o)` uniformly, then a point inside it uniformly.
/// Each octave carries equal mass, so density falls off as `1/x` — a
/// discrete Zipf/Pareto(α≈1) shape, matching the few-heavy-labs /
/// many-light-users imbalance the paper describes, with none of the
/// cross-libm reproducibility risk of floating-point inverse CDFs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserPopulation {
    /// Population seed: distinct seeds give independent populations.
    pub seed: u64,
    /// Number of users (ids `0..users`).
    pub users: u64,
}

/// splitmix64: the standard 64-bit finalizer over a golden-ratio step.
/// Public because the bench harness reuses it for derived streams.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl UserPopulation {
    /// Fair-share weight ceiling (a funded lab vs. a single student).
    pub const MAX_WEIGHT: u64 = 10_000;
    /// Largest per-job VRAM demand, in GiB.
    pub const MAX_DEMAND_GB: u64 = 48;

    /// A population of `users` ids with weights/demands derived from `seed`.
    pub fn new(seed: u64, users: u64) -> Self {
        assert!(users > 0, "population needs at least one user");
        UserPopulation { seed, users }
    }

    /// Fair-share weight of `user`, in `1..=MAX_WEIGHT`, discrete
    /// Pareto-tailed: P(weight ≥ w) ≈ 1/w. Most users sit at weight 1;
    /// a vanishing fraction hold lab-scale shares.
    pub fn weight(&self, user: u64) -> u64 {
        let h = splitmix64(self.seed ^ user.wrapping_mul(0x2545_f491_4f6c_dd1d));
        Self::MAX_WEIGHT / (1 + h % Self::MAX_WEIGHT)
    }

    /// Submitting user of the `k`-th job: Zipf-ish rank frequency via the
    /// octave trick (low ids submit ~1/rank as often as rank grows).
    pub fn submitter(&self, k: u64) -> u64 {
        let h = splitmix64(self.seed ^ splitmix64(k));
        let octaves = 64 - self.users.leading_zeros() as u64; // ≥ 1
        let oct = h % octaves;
        let hi = self.users >> oct; // ≥ 1 (oct < bit-length)
        let lo = self.users >> (oct + 1);
        lo + splitmix64(h) % (hi - lo).max(1)
    }

    /// VRAM demand of the `k`-th job, in bytes: heavy-tailed over
    /// `1..=MAX_DEMAND_GB` GiB (most jobs are small; a few want the
    /// whole card).
    pub fn demand_bytes(&self, k: u64) -> u64 {
        let h = splitmix64(self.seed ^ splitmix64(k ^ 0x5bf0_3635));
        (Self::MAX_DEMAND_GB / (1 + h % Self::MAX_DEMAND_GB)) << 30
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_peaks_mid_afternoon() {
        assert!(diurnal_multiplier(15.0) > diurnal_multiplier(4.0) * 4.0);
        assert!(diurnal_multiplier(21.0) > diurnal_multiplier(4.0));
        for h in 0..24 {
            let m = diurnal_multiplier(h as f64);
            assert!(m > 0.0 && m < 2.5, "hour {h}: {m}");
        }
    }

    #[test]
    fn weekend_lower_than_weekday() {
        assert!(weekly_multiplier(5) < weekly_multiplier(2));
        assert!(weekly_multiplier(6) < weekly_multiplier(5));
    }

    #[test]
    fn trace_is_deterministic() {
        let labs = paper_campus_labs();
        let cfg = TraceConfig {
            horizon: SimDuration::from_days(3),
            ..Default::default()
        };
        let a = generate(&labs, &cfg, &RngPool::new(42));
        let b = generate(&labs, &cfg, &RngPool::new(42));
        assert_eq!(a, b);
        let c = generate(&labs, &cfg, &RngPool::new(43));
        assert_ne!(a, c);
    }

    #[test]
    fn trace_sorted_and_in_horizon() {
        let labs = paper_campus_labs();
        let cfg = TraceConfig {
            horizon: SimDuration::from_days(7),
            ..Default::default()
        };
        let events = generate(&labs, &cfg, &RngPool::new(7));
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let end = SimTime::ZERO + cfg.horizon;
        assert!(events.iter().all(|e| e.at < end));
    }

    #[test]
    fn realized_demand_close_to_profile() {
        // Over 4 weeks, total training GPU-hours should be within 30 % of
        // sum(mean_gpu_demand) × horizon.
        let labs = paper_campus_labs();
        let cfg = TraceConfig {
            horizon: SimDuration::from_days(28),
            ..Default::default()
        };
        let events = generate(&labs, &cfg, &RngPool::new(1));
        let gpu_hours: f64 = events
            .iter()
            .filter_map(|e| match &e.request {
                Request::Training(t) => {
                    Some(t.expected_duration(35.6).as_secs_f64() / 3600.0 * t.gpus as f64)
                }
                _ => None,
            })
            .sum();
        let expect: f64 = labs.iter().map(|l| l.mean_gpu_demand).sum::<f64>() * 28.0 * 24.0;
        let ratio = gpu_hours / expect;
        assert!(ratio > 0.7 && ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn semester_break_reduces_demand() {
        let labs = paper_campus_labs();
        let with_break = TraceConfig {
            horizon: SimDuration::from_days(28),
            break_start_week: Some(2),
            break_multiplier: 0.3,
            ..Default::default()
        };
        let no_break = TraceConfig {
            horizon: SimDuration::from_days(28),
            ..Default::default()
        };
        let a = generate(&labs, &with_break, &RngPool::new(5));
        let b = generate(&labs, &no_break, &RngPool::new(5));
        let count_late = |evs: &[TraceEvent]| {
            evs.iter()
                .filter(|e| e.at >= SimTime::ZERO + SimDuration::from_days(14))
                .count()
        };
        assert!(
            (count_late(&a) as f64) < count_late(&b) as f64 * 0.6,
            "break must suppress post-week-2 arrivals: {} vs {}",
            count_late(&a),
            count_late(&b)
        );
    }

    #[test]
    fn paper_campus_has_rich_and_poor() {
        let labs = paper_campus_labs();
        let owned: usize = labs.iter().map(|l| l.owned_hosts.len()).sum();
        assert_eq!(owned, 11, "all 11 GPU hosts owned by someone");
        let poor: Vec<_> = labs.iter().filter(|l| l.owned_hosts.is_empty()).collect();
        assert_eq!(poor.len(), 5);
        let poor_demand: f64 = poor.iter().map(|l| l.mean_gpu_demand).sum();
        assert!(poor_demand > 12.0, "structural unmet demand");
    }

    #[test]
    fn interactive_events_present() {
        let labs = paper_campus_labs();
        let cfg = TraceConfig {
            horizon: SimDuration::from_days(7),
            ..Default::default()
        };
        let events = generate(&labs, &cfg, &RngPool::new(3));
        let n = events
            .iter()
            .filter(|e| matches!(e.request, Request::Interactive(_)))
            .count();
        assert!(n > 50, "expected many sessions/week, got {n}");
    }

    #[test]
    fn user_population_is_deterministic_and_bounded() {
        let p = UserPopulation::new(42, 1 << 16);
        let q = UserPopulation::new(42, 1 << 16);
        for k in 0..1000u64 {
            assert_eq!(p.weight(k), q.weight(k));
            assert_eq!(p.submitter(k), q.submitter(k));
            assert_eq!(p.demand_bytes(k), q.demand_bytes(k));
            assert!((1..=UserPopulation::MAX_WEIGHT).contains(&p.weight(k)));
            assert!(p.submitter(k) < p.users);
            let gb = p.demand_bytes(k) >> 30;
            assert!((1..=UserPopulation::MAX_DEMAND_GB).contains(&gb));
        }
        assert_ne!(
            (0..100)
                .map(|k| UserPopulation::new(7, 1 << 16).submitter(k))
                .collect::<Vec<_>>(),
            (0..100)
                .map(|k| UserPopulation::new(8, 1 << 16).submitter(k))
                .collect::<Vec<_>>(),
            "distinct seeds give distinct populations"
        );
    }

    #[test]
    fn user_population_is_heavy_tailed() {
        let p = UserPopulation::new(1, 1 << 16);
        // Weights: the top 1% of users hold a disproportionate share.
        let mut weights: Vec<u64> = (0..p.users).map(|u| p.weight(u)).collect();
        weights.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = weights.iter().sum();
        let top1: u64 = weights[..weights.len() / 100].iter().sum();
        assert!(
            top1 * 5 > total,
            "top 1% holds {top1} of {total} — not heavy-tailed"
        );
        // Submissions: low-id users dominate (Zipf rank frequency).
        let jobs = 100_000u64;
        let low_half = (0..jobs)
            .filter(|&k| p.submitter(k) < p.users / 256)
            .count();
        assert!(
            low_half * 3 > jobs as usize,
            "the 1/256 head got {low_half}/{jobs} submissions — not Zipfian"
        );
    }
}
