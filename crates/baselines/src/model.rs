//! Shared shapes for platform comparison experiments.
//!
//! Fig. 2 compares GPUnion against the campus's previous manual coordination;
//! Table 1 positions it against centralized orchestrators (Kubernetes-like)
//! and reservation systems (Slurm-like). All platforms replay the *same*
//! demand trace over the *same* hardware, described by [`CampusShape`], and
//! report a common [`Outcome`].

use gpunion_des::{Online, SimDuration};
use gpunion_workload::LabId;
use serde::{Deserialize, Serialize};

/// One GPU as the capacity models see it.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GpuShape {
    /// VRAM bytes.
    pub vram_bytes: u64,
    /// Compute capability.
    pub cc: (u8, u8),
    /// Peak FP32 TFLOPS.
    pub fp32_tflops: f64,
}

/// One host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostShape {
    /// Hostname for reports.
    pub name: String,
    /// Installed GPUs.
    pub gpus: Vec<GpuShape>,
    /// The lab that owns this machine.
    pub owner: LabId,
}

/// The whole campus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampusShape {
    /// All GPU hosts (host index = position).
    pub hosts: Vec<HostShape>,
}

impl CampusShape {
    /// Total GPUs on campus.
    pub fn total_gpus(&self) -> usize {
        self.hosts.iter().map(|h| h.gpus.len()).sum()
    }

    /// Hosts owned by a lab.
    pub fn hosts_of(&self, lab: LabId) -> Vec<usize> {
        self.hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.owner == lab)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Common outcome every platform reports.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// Platform label.
    pub platform: String,
    /// Campus-wide time-weighted mean GPU utilization in `[0,1]`.
    pub mean_utilization: f64,
    /// Per-host time-weighted utilization.
    pub per_host_utilization: Vec<f64>,
    /// Interactive sessions served before the user gave up.
    pub sessions_served: u64,
    /// Sessions abandoned waiting.
    pub sessions_abandoned: u64,
    /// Training jobs completed within the horizon.
    pub jobs_completed: u64,
    /// Training jobs that never finished (still queued/running or lost).
    pub jobs_unfinished: u64,
    /// Mean queue wait for training jobs.
    pub job_wait: Online,
    /// Job disruptions (kills/restarts caused by churn).
    pub disruptions: u64,
    /// Provider reclaim latency samples (how long until an owner gets the
    /// machine back) — the Table 1 "Provider Autonomy" quantity.
    pub reclaim_latency: Online,
    /// Time for a new node to start receiving work — Table 1's "Dynamic
    /// Node Joining".
    pub join_turnaround: Online,
}

impl Outcome {
    /// Served fraction of interactive sessions.
    pub fn session_service_rate(&self) -> f64 {
        let total = self.sessions_served + self.sessions_abandoned;
        if total == 0 {
            return 0.0;
        }
        self.sessions_served as f64 / total as f64
    }
}

/// How a platform reacts to a provider leaving.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnReaction {
    /// Jobs on the node are lost and restart from iteration zero elsewhere
    /// (a platform with infrastructure-level fault tolerance only).
    RestartFromScratch,
    /// Jobs resume from the last application-level checkpoint (GPUnion).
    CheckpointRestore {
        /// Checkpoint interval.
        interval: SimDuration,
    },
    /// Jobs are killed and the submitter must resubmit by hand after a
    /// human delay (manual coordination).
    ManualResubmit {
        /// Median resubmission delay.
        median_delay: SimDuration,
    },
}

/// Who can place work where.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Visibility {
    /// Labs see only their own machines; cross-lab borrowing succeeds with
    /// some probability after a negotiation delay (manual coordination).
    OwnLabOnly {
        /// Probability a borrowing attempt succeeds at all.
        borrow_success: f64,
        /// Median negotiation delay before borrowed capacity is usable.
        negotiation_median: SimDuration,
    },
    /// One shared pool (every orchestrated platform).
    Global,
}

/// Full policy description of one platform.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlatformPolicy {
    /// Placement visibility.
    pub visibility: Visibility,
    /// Reaction to provider churn.
    pub churn: ChurnReaction,
    /// Reservation padding factor: jobs block GPUs for
    /// `expected_duration × padding` regardless of actual completion
    /// (Slurm-style walltime requests). 1.0 = release on completion.
    pub reservation_padding: f64,
    /// Time between a node joining and the platform using it.
    pub join_overhead: SimDuration,
    /// Can an owner instantly reclaim (kill-switch)? Otherwise they wait
    /// for drain (running jobs/reservations to finish).
    pub instant_reclaim: bool,
}

impl PlatformPolicy {
    /// The paper's manual-coordination status quo.
    pub fn manual() -> Self {
        PlatformPolicy {
            visibility: Visibility::OwnLabOnly {
                borrow_success: 0.10,
                negotiation_median: SimDuration::from_hours(6),
            },
            churn: ChurnReaction::ManualResubmit {
                median_delay: SimDuration::from_hours(2),
            },
            reservation_padding: 1.0,
            join_overhead: SimDuration::from_hours(24), // "ask the admin"
            instant_reclaim: true,                      // it's your machine
        }
    }

    /// A Kubernetes-like centralized orchestrator.
    pub fn centralized() -> Self {
        PlatformPolicy {
            visibility: Visibility::Global,
            churn: ChurnReaction::RestartFromScratch,
            reservation_padding: 1.0,
            join_overhead: SimDuration::from_mins(12), // node provisioning
            instant_reclaim: false,                    // drain only
        }
    }

    /// A Slurm-like reservation system.
    pub fn reservation() -> Self {
        PlatformPolicy {
            visibility: Visibility::Global,
            churn: ChurnReaction::RestartFromScratch,
            reservation_padding: 1.5, // users pad walltime requests
            join_overhead: SimDuration::from_hours(4), // partition reconfig
            instant_reclaim: false,   // wait out the reservation
        }
    }

    /// GPUnion's policy expressed in the same vocabulary (used by the
    /// capacity-model variant for Table 1; the full protocol stack lives in
    /// `gpunion-core`).
    pub fn gpunion(checkpoint_interval: SimDuration) -> Self {
        PlatformPolicy {
            visibility: Visibility::Global,
            churn: ChurnReaction::CheckpointRestore {
                interval: checkpoint_interval,
            },
            reservation_padding: 1.0,
            join_overhead: SimDuration::from_secs(30), // agent registration
            instant_reclaim: true,                     // kill-switch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campus_shape_queries() {
        let campus = CampusShape {
            hosts: vec![
                HostShape {
                    name: "a".into(),
                    gpus: vec![GpuShape {
                        vram_bytes: 24 << 30,
                        cc: (8, 6),
                        fp32_tflops: 35.6,
                    }],
                    owner: LabId(0),
                },
                HostShape {
                    name: "b".into(),
                    gpus: vec![
                        GpuShape {
                            vram_bytes: 40 << 30,
                            cc: (8, 0),
                            fp32_tflops: 19.5,
                        };
                        2
                    ],
                    owner: LabId(1),
                },
            ],
        };
        assert_eq!(campus.total_gpus(), 3);
        assert_eq!(campus.hosts_of(LabId(1)), vec![1]);
        assert!(campus.hosts_of(LabId(9)).is_empty());
    }

    #[test]
    fn policies_differ_where_table1_says() {
        let m = PlatformPolicy::manual();
        let k = PlatformPolicy::centralized();
        let s = PlatformPolicy::reservation();
        let g = PlatformPolicy::gpunion(SimDuration::from_mins(10));
        // Provider autonomy: only manual (own box) and GPUnion reclaim fast.
        assert!(m.instant_reclaim && g.instant_reclaim);
        assert!(!k.instant_reclaim && !s.instant_reclaim);
        // Voluntary-participation friction: join overhead ordering.
        assert!(g.join_overhead < k.join_overhead);
        assert!(k.join_overhead < s.join_overhead);
        assert!(s.join_overhead < m.join_overhead);
        // Only Slurm pads reservations.
        assert!(s.reservation_padding > 1.0);
        assert_eq!(k.reservation_padding, 1.0);
    }

    #[test]
    fn outcome_session_rate() {
        let mut o = Outcome::default();
        assert_eq!(o.session_service_rate(), 0.0);
        o.sessions_served = 3;
        o.sessions_abandoned = 1;
        assert_eq!(o.session_service_rate(), 0.75);
    }
}
