//! # gpunion-baselines — the platforms GPUnion is compared against
//!
//! Capacity models of the paper's comparison points, replaying the same
//! campus traces as GPUnion:
//!
//! * **Manual coordination** (`PlatformPolicy::manual`) — the pre-GPUnion
//!   status quo of Fig. 2: labs see only their own machines and borrowing
//!   needs human negotiation.
//! * **Centralized orchestrator** (`PlatformPolicy::centralized`) —
//!   Kubernetes-like: global pool, but volatility is failure (jobs restart
//!   from scratch), owners wait for drains, node joins are slow.
//! * **Reservation system** (`PlatformPolicy::reservation`) — Slurm-like:
//!   padded walltime reservations block capacity, strict FIFO queueing.
//!
//! [`run_capacity_model`] executes any [`PlatformPolicy`] — including a
//! GPUnion-equivalent — over a trace and emits the [`Outcome`] rows used by
//! the Fig. 2 and Table 1 benches.

pub mod model;
pub mod pool;

pub use model::{
    CampusShape, ChurnReaction, GpuShape, HostShape, Outcome, PlatformPolicy, Visibility,
};
pub use pool::run_capacity_model;
