//! The capacity-model simulator shared by every baseline platform.
//!
//! A deliberately protocol-free model: hosts × GPUs, a job queue, placement
//! under a [`PlatformPolicy`], churn reactions, and reclaim probes. GPUnion
//! itself runs as a full protocol stack in `gpunion-core`; this pool model
//! exists so manual coordination, a Kubernetes-like orchestrator, and a
//! Slurm-like reservation system can replay identical traces for Fig. 2 and
//! Table 1. A `PlatformPolicy::gpunion` variant runs here too, used to
//! sanity-check the full stack against the capacity abstraction.

use crate::model::{CampusShape, ChurnReaction, Outcome, PlatformPolicy, Visibility};
use gpunion_des::{
    chance, log_normal, RngPool, Sim, SimDuration, SimTime, TimeWeighted, TypedEvent,
};
use gpunion_workload::{InterruptionEvent, LabId, Request, TraceEvent};
use rand::rngs::SmallRng;
use std::collections::VecDeque;

/// The pool simulator: every event the capacity model schedules is a
/// typed [`PoolEvent`] value — no boxed closures, no allocation on the
/// schedule→fire cycle (trace arrivals index into `PoolWorld::trace`
/// instead of each capturing a clone of their event).
type PoolSim = Sim<PoolWorld, PoolEvent>;

/// Typed events of the capacity model.
#[derive(Debug)]
enum PoolEvent {
    /// A trace arrival (index into `PoolWorld::trace`).
    Arrival(u32),
    /// Churn: a host goes down.
    HostDown(usize),
    /// Churn: a host returns.
    HostUp(usize),
    /// A reclaim-latency probe on a host.
    Probe(usize),
    /// A queued session's patience expires.
    GiveUp { id: u64 },
    /// A placed session ends (guarded by placement incarnation).
    SessionEnd { id: u64, incarnation: u64 },
    /// A placed training job finishes (guarded by placement incarnation).
    JobFinish { id: u64, incarnation: u64 },
    /// Reservation padding elapsed: actually release the GPU.
    FreeSlot { host: usize, gpu: usize },
    /// A churn-displaced job re-enters the queue after its resubmit delay.
    Requeue(QueuedJob),
    /// A borrow negotiation concluded: enqueue the unlocked copy.
    EnqueueUnlocked(QueuedJob),
    /// Join overhead elapsed after a host returned: retry the queues.
    DrainAfterJoin,
}

impl TypedEvent<PoolWorld> for PoolEvent {
    fn fire(self, w: &mut PoolWorld, sim: &mut PoolSim) {
        match self {
            PoolEvent::Arrival(i) => {
                let ev = w.trace[i as usize].clone();
                arrival(w, sim, &ev);
            }
            PoolEvent::HostDown(h) => host_down(w, sim, h),
            PoolEvent::HostUp(h) => host_up(w, sim, h),
            PoolEvent::Probe(h) => probe_reclaim(w, sim.now(), h),
            PoolEvent::GiveUp { id } => {
                let before = w.session_queue.len();
                w.session_queue.retain(|s| s.id != id);
                if w.session_queue.len() < before {
                    w.outcome.sessions_abandoned += 1;
                }
            }
            PoolEvent::SessionEnd { id, incarnation } => {
                if w.units.get(&id).map(|u| u.incarnation) == Some(incarnation) {
                    let u = w.units.remove(&id).expect("checked");
                    free_slot(w, sim, u.host, u.gpu);
                }
            }
            PoolEvent::JobFinish { id, incarnation } => {
                let Some(u) = w.units.get(&id) else { return };
                if u.incarnation != incarnation {
                    return;
                }
                let (host, gpu, release_at) = (u.host, u.gpu, u.release_at);
                w.units.remove(&id);
                w.outcome.jobs_completed += 1;
                if release_at > sim.now() {
                    // Reservation padding: GPU stays blocked (reserved-idle).
                    w.hosts[host].working[gpu] = false;
                    w.hosts[host].update_util(sim.now());
                    sim.schedule_typed_at(release_at, PoolEvent::FreeSlot { host, gpu });
                } else {
                    free_slot(w, sim, host, gpu);
                }
            }
            PoolEvent::FreeSlot { host, gpu } => free_slot(w, sim, host, gpu),
            PoolEvent::Requeue(job) => {
                w.job_queue.push_back(job);
                drain_queues(w, sim);
            }
            PoolEvent::EnqueueUnlocked(job) => enqueue_job(w, sim, job),
            PoolEvent::DrainAfterJoin => drain_queues(w, sim),
        }
    }
}

/// Reference device speed used to normalize work (RTX 3090 TFLOPS).
const REF_TFLOPS: f64 = 35.6;

#[derive(Debug, Clone)]
struct Unit {
    id: u64,
    /// Placement incarnation: bumped on every (re)placement so stale
    /// completion events for earlier placements of the same id are ignored.
    incarnation: u64,
    lab: LabId,
    /// Remaining work in reference-seconds (training) or wall seconds
    /// (session).
    kind: UnitKind,
    host: usize,
    gpu: usize,
    /// For training: reference-seconds at the last durable checkpoint.
    checkpointed_ref: f64,
    /// Work done so far in reference-seconds.
    done_ref: f64,
    started_at: SimTime,
    /// When the GPU is actually released (reservation padding).
    release_at: SimTime,
}

#[derive(Debug, Clone)]
#[allow(dead_code)] // ends_at documents the session contract
enum UnitKind {
    Training {
        total_ref: f64,
        ckpt_interval: SimDuration,
        mem: u64,
    },
    Session {
        ends_at: SimTime,
    },
}

#[derive(Debug, Clone)]
struct QueuedJob {
    id: u64,
    lab: LabId,
    total_ref: f64,
    done_ref: f64,
    ckpt_interval: SimDuration,
    mem: u64,
    queued_at: SimTime,
    #[allow(dead_code)] // kept for wait-time breakdowns in future reports
    first_queued_at: SimTime,
    /// Only place on these hosts (None = policy default visibility).
    borrow_unlocked: bool,
}

#[derive(Debug, Clone)]
struct QueuedSession {
    id: u64,
    lab: LabId,
    mem: u64,
    duration: SimDuration,
    deadline: SimTime,
}

struct HostState {
    owner: LabId,
    up: bool,
    usable_at: SimTime,
    /// Occupancy per GPU: unit id or free.
    gpus: Vec<Option<u64>>,
    /// Which GPUs are actively computing (vs reserved-idle).
    working: Vec<bool>,
    tflops: Vec<f64>,
    vram: Vec<u64>,
    util: TimeWeighted,
}

impl HostState {
    fn update_util(&mut self, now: SimTime) {
        let total = self.gpus.len().max(1) as f64;
        let working = self.working.iter().filter(|w| **w).count() as f64;
        self.util.set(now, working / total);
    }

    fn free_gpu(&self, mem: u64) -> Option<usize> {
        self.gpus
            .iter()
            .enumerate()
            .find(|(i, g)| g.is_none() && self.vram[*i] >= mem)
            .map(|(i, _)| i)
    }
}

struct PoolWorld {
    policy: PlatformPolicy,
    hosts: Vec<HostState>,
    units: std::collections::HashMap<u64, Unit>,
    job_queue: VecDeque<QueuedJob>,
    session_queue: VecDeque<QueuedSession>,
    outcome: Outcome,
    rng: SmallRng,
    next_id: u64,
    next_incarnation: u64,
    /// The replayed trace; arrival events carry an index into it rather
    /// than each boxing a clone of their event.
    trace: Vec<TraceEvent>,
    #[allow(dead_code)] // reserved for horizon-aware admission policies
    horizon_end: SimTime,
}

impl PoolWorld {
    fn visible_hosts(&self, lab: LabId, borrow_unlocked: bool) -> Vec<usize> {
        match self.policy.visibility {
            Visibility::Global => (0..self.hosts.len()).collect(),
            Visibility::OwnLabOnly { .. } => {
                if borrow_unlocked {
                    (0..self.hosts.len()).collect()
                } else {
                    self.hosts
                        .iter()
                        .enumerate()
                        .filter(|(_, h)| h.owner == lab)
                        .map(|(i, _)| i)
                        .collect()
                }
            }
        }
    }

    fn find_slot(
        &self,
        lab: LabId,
        mem: u64,
        borrow_unlocked: bool,
        now: SimTime,
    ) -> Option<(usize, usize)> {
        for h in self.visible_hosts(lab, borrow_unlocked) {
            let host = &self.hosts[h];
            if !host.up || now < host.usable_at {
                continue;
            }
            if let Some(g) = host.free_gpu(mem) {
                return Some((h, g));
            }
        }
        None
    }
}

/// Run the capacity model for one platform over a trace.
#[allow(clippy::too_many_arguments)]
pub fn run_capacity_model(
    platform: &str,
    campus: &CampusShape,
    trace: &[TraceEvent],
    churn: &[InterruptionEvent],
    churn_hosts: &[usize],
    reclaim_probes: &[(SimTime, usize)],
    policy: PlatformPolicy,
    horizon: SimDuration,
    pool_seed: &RngPool,
) -> Outcome {
    let mut sim: PoolSim = Sim::new();
    let hosts = campus
        .hosts
        .iter()
        .map(|h| {
            let mut hs = HostState {
                owner: h.owner,
                up: true,
                usable_at: SimTime::ZERO,
                gpus: vec![None; h.gpus.len()],
                working: vec![false; h.gpus.len()],
                tflops: h.gpus.iter().map(|g| g.fp32_tflops).collect(),
                vram: h.gpus.iter().map(|g| g.vram_bytes).collect(),
                util: TimeWeighted::new(),
            };
            hs.util.set(SimTime::ZERO, 0.0);
            hs
        })
        .collect();
    let mut world = PoolWorld {
        policy,
        hosts,
        units: Default::default(),
        job_queue: VecDeque::new(),
        session_queue: VecDeque::new(),
        outcome: Outcome {
            platform: platform.to_string(),
            ..Default::default()
        },
        rng: pool_seed.stream("capacity-model"),
        next_id: 0,
        next_incarnation: 0,
        trace: trace.to_vec(),
        horizon_end: SimTime::ZERO + horizon,
    };

    // Schedule trace arrivals (by index into the world's trace copy).
    for (i, ev) in trace.iter().enumerate() {
        sim.schedule_typed_at(ev.at, PoolEvent::Arrival(i as u32));
    }
    // Schedule churn.
    for ev in churn {
        let Some(&host) = churn_hosts.get(ev.node_index) else {
            continue;
        };
        sim.schedule_typed_at(ev.at, PoolEvent::HostDown(host));
        sim.schedule_typed_at(ev.returns_at, PoolEvent::HostUp(host));
    }
    // Schedule reclaim probes.
    for (at, host) in reclaim_probes.iter().copied() {
        sim.schedule_typed_at(at, PoolEvent::Probe(host));
    }

    sim.run_until(&mut world, SimTime::ZERO + horizon);

    // Close books.
    let end = SimTime::ZERO + horizon;
    let mut per_host = Vec::new();
    for h in &mut world.hosts {
        h.util.finish(end);
        per_host.push(h.util.mean().unwrap_or(0.0));
    }
    // Weight by GPU count for the campus mean.
    let total_gpus: usize = world.hosts.iter().map(|h| h.gpus.len()).sum();
    let mean = world
        .hosts
        .iter()
        .zip(&per_host)
        .map(|(h, u)| u * h.gpus.len() as f64)
        .sum::<f64>()
        / total_gpus.max(1) as f64;
    world.outcome.per_host_utilization = per_host;
    world.outcome.mean_utilization = mean;
    world.outcome.jobs_unfinished = world.job_queue.len() as u64 + world.units.len() as u64;
    world.outcome
}

fn arrival(w: &mut PoolWorld, sim: &mut PoolSim, ev: &TraceEvent) {
    match &ev.request {
        Request::Training(spec) => {
            let total_ref = spec.expected_duration(REF_TFLOPS).as_secs_f64();
            let id = w.next_id;
            w.next_id += 1;
            let job = QueuedJob {
                id,
                lab: ev.lab,
                total_ref,
                done_ref: 0.0,
                ckpt_interval: spec.checkpoint_interval,
                mem: spec.model.profile().gpu_mem_bytes,
                queued_at: sim.now(),
                first_queued_at: sim.now(),
                borrow_unlocked: false,
            };
            enqueue_job(w, sim, job);
        }
        Request::Interactive(spec) => {
            let id = w.next_id;
            w.next_id += 1;
            let qs = QueuedSession {
                id,
                lab: ev.lab,
                mem: spec.gpu_mem_bytes,
                duration: spec.duration,
                deadline: sim.now() + spec.patience,
            };
            if try_place_session(w, sim, &qs) {
                return;
            }
            // Manual coordination: interactive users often borrow informally
            // (walking to the lab next door beats emailing about batch jobs).
            if matches!(w.policy.visibility, Visibility::OwnLabOnly { .. })
                && chance(&mut w.rng, 0.5)
                && try_place_session_anywhere(w, sim, &qs)
            {
                return;
            }
            w.session_queue.push_back(qs);
            // Give-up timer.
            sim.schedule_typed_at(sim.now() + spec.patience, PoolEvent::GiveUp { id });
        }
    }
}

fn enqueue_job(w: &mut PoolWorld, sim: &mut PoolSim, job: QueuedJob) {
    // Manual coordination: a lab without capacity may try to borrow.
    if let Visibility::OwnLabOnly {
        borrow_success,
        negotiation_median,
    } = w.policy.visibility
    {
        if !job.borrow_unlocked
            && w.find_slot(job.lab, job.mem, false, sim.now()).is_none()
            && chance(&mut w.rng, borrow_success)
        {
            let delay = log_normal(&mut w.rng, negotiation_median.as_secs_f64(), 0.5);
            let mut unlocked = job.clone();
            unlocked.borrow_unlocked = true;
            sim.schedule_typed_in(
                SimDuration::from_secs_f64(delay),
                PoolEvent::EnqueueUnlocked(unlocked),
            );
            // The original stays in the own-lab queue too; whichever copy
            // places first wins (the other is deduplicated at placement).
        }
    }
    w.job_queue.push_back(job);
    drain_queues(w, sim);
}

fn try_place_session(w: &mut PoolWorld, sim: &mut PoolSim, qs: &QueuedSession) -> bool {
    let Some((h, g)) = w.find_slot(qs.lab, qs.mem, false, sim.now()) else {
        return false;
    };
    place_session(w, sim, qs, h, g);
    true
}

/// Informal borrowing path: any host, bypassing visibility.
fn try_place_session_anywhere(w: &mut PoolWorld, sim: &mut PoolSim, qs: &QueuedSession) -> bool {
    let Some((h, g)) = w.find_slot(qs.lab, qs.mem, true, sim.now()) else {
        return false;
    };
    place_session(w, sim, qs, h, g);
    true
}

fn place_session(w: &mut PoolWorld, sim: &mut PoolSim, qs: &QueuedSession, h: usize, g: usize) {
    let id = qs.id;
    let ends_at = sim.now() + qs.duration;
    w.hosts[h].gpus[g] = Some(id);
    w.hosts[h].working[g] = true;
    w.hosts[h].update_util(sim.now());
    let incarnation = w.next_incarnation;
    w.next_incarnation += 1;
    w.units.insert(
        id,
        Unit {
            id,
            incarnation,
            lab: qs.lab,
            kind: UnitKind::Session { ends_at },
            host: h,
            gpu: g,
            checkpointed_ref: 0.0,
            done_ref: 0.0,
            started_at: sim.now(),
            release_at: ends_at,
        },
    );
    w.outcome.sessions_served += 1;
    sim.schedule_typed_at(ends_at, PoolEvent::SessionEnd { id, incarnation });
}

fn drain_queues(w: &mut PoolWorld, sim: &mut PoolSim) {
    // Humans waiting beat batch jobs.
    let mut i = 0;
    while i < w.session_queue.len() {
        let qs = w.session_queue[i].clone();
        if sim.now() <= qs.deadline && try_place_session(w, sim, &qs) {
            w.session_queue.remove(i);
        } else {
            i += 1;
        }
    }
    // Jobs: strict FIFO for reservation systems (no backfill), first-fit
    // scan otherwise.
    let strict_fifo = w.policy.reservation_padding > 1.0;
    let mut i = 0;
    while i < w.job_queue.len() {
        let job = w.job_queue[i].clone();
        // Deduplicate borrow copies that already placed/finished.
        if w.units.values().any(|u| u.id == job.id) {
            w.job_queue.remove(i);
            continue;
        }
        match w.find_slot(job.lab, job.mem, job.borrow_unlocked, sim.now()) {
            Some((h, g)) => {
                w.job_queue.remove(i);
                place_job(w, sim, job, h, g);
            }
            None => {
                if strict_fifo {
                    break; // head-of-line blocking
                }
                i += 1;
            }
        }
    }
}

fn place_job(w: &mut PoolWorld, sim: &mut PoolSim, job: QueuedJob, h: usize, g: usize) {
    let now = sim.now();
    w.outcome
        .job_wait
        .record(now.since(job.queued_at).as_secs_f64());
    let rate = w.hosts[h].tflops[g] / REF_TFLOPS;
    let remaining_wall = (job.total_ref - job.done_ref).max(0.0) / rate;
    let finish_at = now + SimDuration::from_secs_f64(remaining_wall);
    let release_at =
        now + SimDuration::from_secs_f64(remaining_wall * w.policy.reservation_padding);
    let id = job.id;
    let incarnation = w.next_incarnation;
    w.next_incarnation += 1;
    w.hosts[h].gpus[g] = Some(id);
    w.hosts[h].working[g] = true;
    w.hosts[h].update_util(now);
    w.units.insert(
        id,
        Unit {
            id,
            incarnation,
            lab: job.lab,
            kind: UnitKind::Training {
                total_ref: job.total_ref,
                ckpt_interval: job.ckpt_interval,
                mem: job.mem,
            },
            host: h,
            gpu: g,
            checkpointed_ref: job.done_ref,
            done_ref: job.done_ref,
            started_at: now,
            release_at,
        },
    );
    // Completion (guarded by incarnation: a displaced-and-replaced unit
    // must not be completed by this placement's stale event).
    sim.schedule_typed_at(finish_at, PoolEvent::JobFinish { id, incarnation });
}

fn free_slot(w: &mut PoolWorld, sim: &mut PoolSim, h: usize, g: usize) {
    w.hosts[h].gpus[g] = None;
    w.hosts[h].working[g] = false;
    w.hosts[h].update_util(sim.now());
    drain_queues(w, sim);
}

fn host_down(w: &mut PoolWorld, sim: &mut PoolSim, h: usize) {
    if !w.hosts[h].up {
        return;
    }
    w.hosts[h].up = false;
    // Kill/displace every unit on the host, in id order: `units` is a
    // HashMap, and letting its iteration order pick the displacement
    // (and therefore requeue) order made every churn run
    // process-nondeterministic — the one hash-order dependence the PR 2
    // determinism purge missed.
    let mut victims: Vec<u64> = w
        .units
        .values()
        .filter(|u| u.host == h)
        .map(|u| u.id)
        .collect();
    victims.sort_unstable();
    let now = sim.now();
    for id in victims {
        let u = w.units.remove(&id).expect("listed");
        w.hosts[h].gpus[u.gpu] = None;
        w.hosts[h].working[u.gpu] = false;
        w.outcome.disruptions += 1;
        match u.kind {
            UnitKind::Session { .. } => {
                // The human lost their session; they do not re-queue.
            }
            UnitKind::Training {
                total_ref,
                ckpt_interval,
                mem,
            } => {
                let rate = w.hosts[h].tflops[u.gpu] / REF_TFLOPS;
                let ran_ref = now.since(u.started_at).as_secs_f64() * rate;
                let done_now = (u.done_ref + ran_ref).min(total_ref);
                let requeue =
                    |w: &mut PoolWorld, sim: &mut PoolSim, done: f64, delay: SimDuration| {
                        let job = QueuedJob {
                            id,
                            lab: u.lab,
                            total_ref,
                            done_ref: done,
                            ckpt_interval,
                            mem,
                            queued_at: sim.now() + delay,
                            first_queued_at: u.started_at,
                            borrow_unlocked: false,
                        };
                        if delay.is_zero() {
                            w.job_queue.push_back(job);
                        } else {
                            sim.schedule_typed_in(delay, PoolEvent::Requeue(job));
                        }
                    };
                match w.policy.churn {
                    ChurnReaction::RestartFromScratch => {
                        requeue(w, sim, 0.0, SimDuration::ZERO);
                    }
                    ChurnReaction::CheckpointRestore { interval } => {
                        let ckpt_ref = interval.as_secs_f64() * rate;
                        let checkpointed = if ckpt_ref > 0.0 {
                            (done_now / ckpt_ref).floor() * ckpt_ref
                        } else {
                            0.0
                        }
                        .max(u.checkpointed_ref);
                        requeue(w, sim, checkpointed.min(done_now), SimDuration::ZERO);
                    }
                    ChurnReaction::ManualResubmit { median_delay } => {
                        let delay = log_normal(&mut w.rng, median_delay.as_secs_f64(), 0.6);
                        requeue(w, sim, 0.0, SimDuration::from_secs_f64(delay));
                    }
                }
            }
        }
    }
    w.hosts[h].update_util(now);
    drain_queues(w, sim);
}

fn host_up(w: &mut PoolWorld, sim: &mut PoolSim, h: usize) {
    if w.hosts[h].up {
        return;
    }
    w.hosts[h].up = true;
    let overhead = w.policy.join_overhead;
    w.hosts[h].usable_at = sim.now() + overhead;
    w.outcome.join_turnaround.record(overhead.as_secs_f64());
    sim.schedule_typed_in(overhead, PoolEvent::DrainAfterJoin);
}

/// Measure how long the owner of host `h` would wait to get it back.
fn probe_reclaim(w: &mut PoolWorld, now: SimTime, h: usize) {
    if w.policy.instant_reclaim {
        // Kill-switch: container teardown, seconds.
        w.outcome.reclaim_latency.record(5.0);
        return;
    }
    // Drain: the owner waits for the last release on the host.
    let worst = w
        .units
        .values()
        .filter(|u| u.host == h)
        .map(|u| u.release_at.since(now).as_secs_f64())
        .fold(0.0, f64::max);
    w.outcome.reclaim_latency.record(worst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GpuShape, HostShape};
    use gpunion_workload::{InteractiveSpec, ModelClass, TrainingJobSpec};

    fn campus(n_hosts: usize) -> CampusShape {
        CampusShape {
            hosts: (0..n_hosts)
                .map(|i| HostShape {
                    name: format!("h{i}"),
                    gpus: vec![GpuShape {
                        vram_bytes: 24 << 30,
                        cc: (8, 6),
                        fp32_tflops: REF_TFLOPS,
                    }],
                    owner: LabId(i as u32),
                })
                .collect(),
        }
    }

    fn training_event(at_secs: u64, lab: u32, iters: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_secs(at_secs),
            lab: LabId(lab),
            request: Request::Training(TrainingJobSpec::new(ModelClass::CnnSmall, iters)),
        }
    }

    fn session_event(at_secs: u64, lab: u32) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_secs(at_secs),
            lab: LabId(lab),
            request: Request::Interactive(InteractiveSpec::typical()),
        }
    }

    fn run(
        policy: PlatformPolicy,
        campus: &CampusShape,
        trace: &[TraceEvent],
        churn: &[InterruptionEvent],
        horizon_h: u64,
    ) -> Outcome {
        run_capacity_model(
            "test",
            campus,
            trace,
            churn,
            &(0..campus.hosts.len()).collect::<Vec<_>>(),
            &[],
            policy,
            SimDuration::from_hours(horizon_h),
            &RngPool::new(7),
        )
    }

    #[test]
    fn single_job_runs_to_completion() {
        let campus = campus(1);
        // ~49 min of work.
        let trace = vec![training_event(0, 0, 20_000)];
        let out = run(PlatformPolicy::centralized(), &campus, &trace, &[], 4);
        assert_eq!(out.jobs_completed, 1);
        assert_eq!(out.jobs_unfinished, 0);
        // Utilization ≈ 49 min / 4 h ≈ 0.2.
        assert!(
            out.mean_utilization > 0.15 && out.mean_utilization < 0.25,
            "{}",
            out.mean_utilization
        );
    }

    #[test]
    fn own_lab_only_blocks_cross_lab_use() {
        // host0 owned by lab0, host1 by lab1. Lab 0 submits two jobs;
        // with global visibility both run in parallel, with own-lab-only
        // (and borrow disabled) they serialize.
        let campus = campus(2);
        let trace = vec![training_event(0, 0, 20_000), training_event(0, 0, 20_000)];
        let mut manual = PlatformPolicy::manual();
        manual.visibility = Visibility::OwnLabOnly {
            borrow_success: 0.0,
            negotiation_median: SimDuration::from_hours(1),
        };
        let out_manual = run(manual, &campus, &trace, &[], 6);
        let out_global = run(PlatformPolicy::centralized(), &campus, &trace, &[], 6);
        assert_eq!(out_manual.jobs_completed, 2);
        assert_eq!(out_global.jobs_completed, 2);
        // Serialized execution waits ~49 min for the second job.
        assert!(out_manual.job_wait.max().unwrap() > 2000.0);
        assert!(out_global.job_wait.max().unwrap() < 10.0);
    }

    #[test]
    fn reservation_padding_wastes_capacity() {
        let campus = campus(1);
        // Two jobs, each ~49 min; padding 1.5 blocks the GPU ~25 min extra.
        let trace = vec![training_event(0, 0, 20_000), training_event(60, 0, 20_000)];
        let slurm = run(PlatformPolicy::reservation(), &campus, &trace, &[], 6);
        let k8s = run(PlatformPolicy::centralized(), &campus, &trace, &[], 6);
        assert_eq!(slurm.jobs_completed, 2);
        // The second job waits longer under Slurm (reservation not released).
        assert!(
            slurm.job_wait.max().unwrap() > k8s.job_wait.max().unwrap() + 1000.0,
            "slurm {:?} vs k8s {:?}",
            slurm.job_wait.max(),
            k8s.job_wait.max()
        );
    }

    #[test]
    fn sessions_served_and_abandoned() {
        let campus = campus(1);
        // Three concurrent sessions on one GPU: first served, the others
        // give up after 10 min (no capacity frees in time: 45-min session).
        let trace = vec![
            session_event(0, 0),
            session_event(10, 0),
            session_event(20, 0),
        ];
        let out = run(PlatformPolicy::centralized(), &campus, &trace, &[], 2);
        assert_eq!(out.sessions_served, 1);
        assert_eq!(out.sessions_abandoned, 2);
    }

    #[test]
    fn queued_session_takes_freed_gpu() {
        let campus = campus(1);
        // A short job occupies the GPU for ~5 min; a session arrives 1 min
        // later and waits (patience 10 min) — it must get the GPU.
        let trace = vec![
            training_event(0, 0, 2_000), // ~4.9 min
            session_event(60, 0),
        ];
        let out = run(PlatformPolicy::centralized(), &campus, &trace, &[], 2);
        assert_eq!(out.sessions_served, 1);
        assert_eq!(out.sessions_abandoned, 0);
        assert_eq!(out.jobs_completed, 1);
    }

    #[test]
    fn restart_from_scratch_loses_work() {
        let campus = campus(2);
        let trace = vec![training_event(0, 0, 40_000)]; // ~98 min

        // Host 0 dies 30 min in, returns hours later.
        let churn = vec![InterruptionEvent {
            at: SimTime::from_secs(1800),
            node_index: 0,
            kind: gpunion_workload::InterruptionKind::EmergencyDeparture,
            returns_at: SimTime::from_secs(36_000),
        }];
        let k8s = run(PlatformPolicy::centralized(), &campus, &trace, &churn, 8);
        let gpunion = run(
            PlatformPolicy::gpunion(SimDuration::from_mins(10)),
            &campus,
            &trace,
            &churn,
            8,
        );
        assert_eq!(k8s.jobs_completed, 1);
        assert_eq!(gpunion.jobs_completed, 1);
        assert_eq!(k8s.disruptions, 1);
        // GPUnion restores from a ≤10-min-old checkpoint; k8s restarts from
        // zero, so its total job latency is ≥ 25 min worse.
        // (Both re-place instantly on host 1.)
        // Compare: completion time = wait + run; use utilization as proxy:
        // k8s burns strictly more GPU-time for the same completed work.
        assert!(
            k8s.mean_utilization > gpunion.mean_utilization + 0.02,
            "k8s {} vs gpunion {} (wasted recompute)",
            k8s.mean_utilization,
            gpunion.mean_utilization
        );
    }

    #[test]
    fn reclaim_probe_instant_vs_drain() {
        let campus = campus(1);
        let trace = vec![training_event(0, 0, 100_000)]; // hours of work
        let probes = vec![(SimTime::from_secs(600), 0usize)];
        let drain = run_capacity_model(
            "k8s",
            &campus,
            &trace,
            &[],
            &[0],
            &probes,
            PlatformPolicy::centralized(),
            SimDuration::from_hours(10),
            &RngPool::new(7),
        );
        let instant = run_capacity_model(
            "gpunion",
            &campus,
            &trace,
            &[],
            &[0],
            &probes,
            PlatformPolicy::gpunion(SimDuration::from_mins(10)),
            SimDuration::from_hours(10),
            &RngPool::new(7),
        );
        let drain_lat = drain.reclaim_latency.mean().unwrap();
        let instant_lat = instant.reclaim_latency.mean().unwrap();
        assert!(instant_lat < 10.0, "kill-switch reclaim {instant_lat}");
        assert!(
            drain_lat > 3600.0,
            "drain reclaim should be hours: {drain_lat}"
        );
    }

    #[test]
    fn manual_borrowing_sometimes_helps() {
        // Lab 9 owns nothing; host 0 idle. With borrow_success = 1.0 the
        // job eventually runs; with 0.0 it never does.
        let campus = campus(1); // owned by lab 0
        let trace = vec![training_event(0, 9, 20_000)];
        let mut no_borrow = PlatformPolicy::manual();
        no_borrow.visibility = Visibility::OwnLabOnly {
            borrow_success: 0.0,
            negotiation_median: SimDuration::from_mins(30),
        };
        let out = run(no_borrow, &campus, &trace, &[], 12);
        assert_eq!(out.jobs_completed, 0);

        let mut always_borrow = PlatformPolicy::manual();
        always_borrow.visibility = Visibility::OwnLabOnly {
            borrow_success: 1.0,
            negotiation_median: SimDuration::from_mins(30),
        };
        let out = run(always_borrow, &campus, &trace, &[], 12);
        assert_eq!(out.jobs_completed, 1);
        // But the negotiation delay shows up as queue wait.
        assert!(out.job_wait.mean().unwrap() > 600.0);
    }
}
