//! Allocation discipline of the warm typed-event schedule→fire path.
//!
//! The point of the typed-event slab + timer wheel is that the hot
//! recurring event kinds — pump wakes, heartbeats, periodic timers — cost
//! zero heap traffic at steady state: payloads recycle slab slots, wheel
//! entries recycle arena nodes through intrusive per-slot lists, and
//! periodic timers re-arm the same box. This test pins that with a counting
//! global allocator (same idiom as `scheduler/tests/alloc.rs` and
//! `protocol/tests/alloc.rs`): warm the capacities up, then assert ZERO
//! allocations over a measured window that covers level-0 inserts,
//! multi-level cascades, cancels with slot reuse, and periodic re-arms.
//! The counter is **per thread** (const-initialized TLS, so reading it
//! never recurses into the allocator): the libtest harness's main thread
//! lazily initializes channel state while it blocks waiting for a test,
//! and a process-global counter intermittently catches that bookkeeping
//! inside a measured window. The `Sim` under test is single-threaded, so
//! the calling thread's count is the whole story.

use gpunion_des::{Sim, SimDuration, SimTime, TypedEvent};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static LOCAL_ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

/// Allocations charged to the calling thread so far.
fn allocations() -> usize {
    LOCAL_ALLOCATIONS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` so allocations during TLS teardown are not a panic.
        let _ = LOCAL_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = LOCAL_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// A node heartbeat: the shape of the hot recurring event in the platform.
enum Beat {
    Node { id: u32, period: SimDuration },
}

#[derive(Default)]
struct Fleet {
    beats: u64,
}

impl TypedEvent<Fleet> for Beat {
    fn fire(self, w: &mut Fleet, sim: &mut Sim<Fleet, Beat>) {
        let Beat::Node { id, period } = self;
        w.beats += 1;
        // Self-rescheduling heartbeat: the steady-state workload.
        sim.schedule_typed_in(period, Beat::Node { id, period });
    }
}

/// Drive `nodes` staggered heartbeats for `rounds` periods, with every
/// fourth node's timer cancelled and re-armed each round (slot reuse) —
/// the platform's pump/re-arm texture.
fn drive(sim: &mut Sim<Fleet, Beat>, w: &mut Fleet, nodes: u32, rounds: u64) {
    let period = SimDuration::from_secs(60);
    let base = w.beats;
    for round in 0..rounds {
        let deadline = sim.now() + period;
        sim.run_until(w, deadline);
        for id in (0..nodes).step_by(4) {
            // Cancel-and-re-arm: O(1) invalidation, recycled slot.
            let tentative =
                sim.schedule_typed_in(SimDuration::from_secs(1), Beat::Node { id, period });
            assert!(sim.cancel(tentative));
        }
        assert_eq!(w.beats, base + nodes as u64 * (round + 1));
    }
}

#[test]
fn warm_typed_schedule_fire_path_does_not_allocate() {
    let mut sim: Sim<Fleet, Beat> = Sim::new();
    let mut w = Fleet::default();
    let nodes = 64u32;
    let period = SimDuration::from_secs(60);
    for id in 0..nodes {
        // Staggered phases so level-0 slots, cascades, and slot vectors all
        // see traffic.
        let phase = SimTime::from_nanos(1 + id as u64 * 937_000_000);
        sim.schedule_typed_at(phase, Beat::Node { id, period });
    }

    // Warm up: reach steady-state capacities (slab, free list, wheel node
    // arena) across several full 60 s rounds — each one crosses multiple
    // wheel levels.
    drive(&mut sim, &mut w, nodes, 8);

    // Measured window: the same steady-state traffic must touch the
    // allocator exactly zero times.
    let before = allocations();
    drive(&mut sim, &mut w, nodes, 8);
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm typed schedule→fire path allocated {} times over 8 rounds × {} heartbeats",
        after - before,
        nodes
    );
    assert_eq!(w.beats, nodes as u64 * 16);
}

#[test]
fn warm_periodic_rearm_does_not_allocate() {
    let mut sim: Sim<Fleet, Beat> = Sim::new();
    let mut w = Fleet::default();
    // Boxed once; every re-arm must reuse the same box.
    sim.schedule_every(SimDuration::from_secs(1), |w: &mut Fleet, _| {
        w.beats += 1;
        true
    });
    sim.run_until(&mut w, SimTime::from_secs(50));

    let before = allocations();
    sim.run_until(&mut w, SimTime::from_secs(100));
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm periodic re-arm allocated {} times over 50 ticks",
        after - before
    );
    assert_eq!(w.beats, 100);
}
