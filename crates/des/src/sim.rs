//! The discrete-event simulator core.
//!
//! A [`Sim<W, E>`] owns the virtual clock, a generation-stamped event slab
//! ([`crate::event`]), and a hierarchical timer wheel (`wheel` module).
//! Events come in two flavours:
//!
//! * **Typed events** — values of a world-specific enum `E` implementing
//!   [`TypedEvent`], scheduled with [`Sim::schedule_typed_at`]. These are
//!   plain data in slab slots: the warm schedule→fire cycle allocates
//!   nothing and `cancel` is an O(1) generation bump. The hot recurring
//!   kinds (pump wakes, heartbeats, harness injections) use this path.
//! * **Boxed closures** — `FnOnce(&mut W, &mut Sim<W, E>)` via
//!   [`Sim::schedule_at`], the compatibility fallback for one-off scenario
//!   actions. Worlds that only need closures use `Sim<W>`: the event
//!   parameter defaults to the uninhabited [`Never`].
//!
//! Determinism: events at the same instant fire in the order they were
//! scheduled (a monotonically increasing sequence number breaks ties), so a
//! simulation with a fixed seed is exactly reproducible. The timer wheel
//! preserves the `(time, seq)` FIFO contract bit-identically with the old
//! heap-backed queue — proven by a proptest in this crate that runs
//! [`HeapSim`](crate::reference::HeapSim) as a reference oracle.

use crate::event::{EventId, EventSlab, Never, Payload, TypedEvent};
use crate::time::{SimDuration, SimTime};
use crate::wheel::{TimerWheel, WheelEntry};

/// Discrete-event simulator over a world state `W` and a typed-event enum
/// `E` (defaulting to the uninhabited [`Never`] for closure-only worlds).
///
/// ```
/// use gpunion_des::{Sim, SimDuration, SimTime};
///
/// #[derive(Default)]
/// struct World { pings: u32 }
///
/// let mut sim: Sim<World> = Sim::new();
/// let mut world = World::default();
/// sim.schedule_in(SimDuration::from_secs(1), |w: &mut World, _| w.pings += 1);
/// sim.schedule_in(SimDuration::from_secs(2), |w: &mut World, _| w.pings += 1);
/// sim.run(&mut world);
/// assert_eq!(world.pings, 2);
/// assert_eq!(sim.now(), SimTime::from_secs(2));
/// ```
pub struct Sim<W, E = Never> {
    now: SimTime,
    slab: EventSlab<W, E>,
    wheel: TimerWheel,
    next_seq: u64,
    executed: u64,
    /// Per-kind fired counters, `None` (the default) when profiling is
    /// off — the hot fire path then pays a single branch and no
    /// bookkeeping.
    fired: Option<std::collections::BTreeMap<&'static str, u64>>,
}

impl<W, E: TypedEvent<W>> Default for Sim<W, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W, E: TypedEvent<W>> Sim<W, E> {
    /// A fresh simulator with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            slab: EventSlab::new(),
            wheel: TimerWheel::new(),
            next_seq: 0,
            executed: 0,
            fired: None,
        }
    }

    /// Start counting fired events by [`TypedEvent::kind`] (plus the
    /// `"closure"` / `"periodic"` fallback buckets for boxed events).
    /// Costs one branch per fire when off; a map bump when on.
    pub fn profile_events(&mut self) {
        self.fired.get_or_insert_with(Default::default);
    }

    /// Snapshot of the per-kind fired counts, sorted by kind. Empty
    /// unless [`Sim::profile_events`] was called.
    pub fn fired_by_kind(&self) -> Vec<(&'static str, u64)> {
        self.fired
            .as_ref()
            .map(|m| m.iter().map(|(k, v)| (*k, *v)).collect())
            .unwrap_or_default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (diagnostics / cost accounting).
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending. Exact: fired and cancelled events
    /// leave the count the moment they retire (unlike the old heap's
    /// cancellation side-table, which made this an estimate).
    pub fn pending(&self) -> usize {
        self.slab.live()
    }

    /// Slab-insert + wheel-file with the next sequence number; the single
    /// path every schedule variant funnels through, so the `(time, seq)`
    /// allocation order is identical to the old heap push order.
    fn schedule_payload(&mut self, at: SimTime, payload: Payload<W, E>) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = self.slab.insert(payload);
        self.wheel.insert(WheelEntry {
            at: at.as_nanos(),
            seq,
            slot: id.slot,
            gen: id.gen,
        });
        id
    }

    /// Schedule `action` at absolute time `at`. Scheduling in the past fires
    /// the event at the current instant instead (never rewinds the clock).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut Sim<W, E>) + 'static,
    ) -> EventId {
        self.schedule_payload(at, Payload::Once(Box::new(action)))
    }

    /// Schedule `action` after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Sim<W, E>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Schedule `action` at the current instant, after already-queued events
    /// for this instant.
    pub fn schedule_now(
        &mut self,
        action: impl FnOnce(&mut W, &mut Sim<W, E>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now, action)
    }

    /// Schedule a typed event at absolute time `at` (clamped to now, like
    /// [`Sim::schedule_at`]). No allocation on the warm path: the value
    /// lives in a recycled slab slot.
    pub fn schedule_typed_at(&mut self, at: SimTime, event: E) -> EventId {
        self.schedule_payload(at, Payload::Typed(event))
    }

    /// Schedule a typed event after a relative delay.
    pub fn schedule_typed_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_typed_at(self.now + delay, event)
    }

    /// Cancel a pending event. Returns `true` only if the event had not yet
    /// fired (and was not already cancelled): the slot's generation stamp
    /// went stale the moment it retired, so this is O(1) with no growing
    /// side-table, and ids of fired events are correctly refused.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Dropping the payload frees the slot; the wheel entry is discarded
        // lazily when it surfaces (its generation stamp no longer matches).
        self.slab.take(id.slot, id.gen).is_some()
    }

    /// Schedule a repeating event with a fixed period. The action runs first
    /// after one full `period`, then repeatedly until it returns `false` or
    /// is cancelled via the returned id's *current* incarnation.
    ///
    /// Note: because each firing re-arms itself, the returned [`EventId`]
    /// only cancels the *first* pending occurrence. For cancellable periodic
    /// timers, have the closure consult world state and return `false`.
    ///
    /// The action is boxed once; every re-arm reuses the same box (the old
    /// implementation re-boxed a fresh closure per tick).
    pub fn schedule_every(
        &mut self,
        period: SimDuration,
        action: impl FnMut(&mut W, &mut Sim<W, E>) -> bool + 'static,
    ) -> EventId {
        self.schedule_payload(
            self.now + period,
            Payload::Every {
                action: Box::new(action),
                period,
            },
        )
    }

    /// Run until the queue drains. Returns the number of events executed.
    pub fn run(&mut self, world: &mut W) -> u64 {
        self.run_until(world, SimTime::MAX)
    }

    /// Run until the queue drains or the next event lies strictly after
    /// `deadline`. The clock is left at the later of its current value and
    /// the deadline-capped last event time; it never exceeds `deadline`
    /// unless `deadline` is [`SimTime::MAX`].
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> u64 {
        let start_count = self.executed;
        while let Some(ev) = self.wheel.peek() {
            if !self.slab.is_live(ev.slot, ev.gen) {
                // Cancelled: its slab slot was already freed; drop the
                // stale wheel entry without touching the clock.
                self.wheel.pop();
                continue;
            }
            if SimTime::from_nanos(ev.at) > deadline {
                // Advance the clock to the deadline so callers observe a
                // consistent "simulated through `deadline`" view.
                if deadline != SimTime::MAX {
                    self.now = self.now.max(deadline);
                }
                break;
            }
            self.wheel.pop();
            self.fire(world, ev);
        }
        if self.wheel.is_empty() && deadline != SimTime::MAX && self.now < deadline {
            self.now = deadline;
        }
        self.executed - start_count
    }

    /// Execute exactly one event if any is pending. Returns the time the
    /// event fired at.
    pub fn step(&mut self, world: &mut W) -> Option<SimTime> {
        loop {
            let ev = self.wheel.pop()?;
            if !self.slab.is_live(ev.slot, ev.gen) {
                continue;
            }
            self.fire(world, ev);
            return Some(self.now);
        }
    }

    /// Advance the clock to `ev.at` and dispatch its (live) payload.
    fn fire(&mut self, world: &mut W, ev: WheelEntry) {
        debug_assert!(ev.at >= self.now.as_nanos(), "event queue must be monotone");
        self.wheel.advance_to(ev.at);
        self.now = SimTime::from_nanos(ev.at);
        self.executed += 1;
        let payload = self
            .slab
            .take(ev.slot, ev.gen)
            .expect("liveness checked before firing");
        if let Some(counts) = &mut self.fired {
            let kind = match &payload {
                Payload::Typed(event) => event.kind(),
                Payload::Once(_) => "closure",
                Payload::Every { .. } => "periodic",
            };
            *counts.entry(kind).or_insert(0) += 1;
        }
        match payload {
            Payload::Typed(event) => event.fire(world, self),
            Payload::Once(action) => action(world, self),
            Payload::Every { mut action, period } => {
                if action(world, self) {
                    // Re-arm with the same box — the only allocation a
                    // periodic timer ever pays is its initial one.
                    self.schedule_payload(self.now + period, Payload::Every { action, period });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct W {
        log: Vec<(u64, &'static str)>,
    }

    fn record(tag: &'static str) -> impl FnOnce(&mut W, &mut Sim<W>) {
        move |w, sim| w.log.push((sim.now().as_nanos(), tag))
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_nanos(30), record("c"));
        sim.schedule_at(SimTime::from_nanos(10), record("a"));
        sim.schedule_at(SimTime::from_nanos(20), record("b"));
        sim.run(&mut w);
        assert_eq!(w.log, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut sim = Sim::new();
        let mut w = W::default();
        let t = SimTime::from_nanos(5);
        sim.schedule_at(t, record("first"));
        sim.schedule_at(t, record("second"));
        sim.schedule_at(t, record("third"));
        sim.run(&mut w);
        assert_eq!(
            w.log.iter().map(|(_, s)| *s).collect::<Vec<_>>(),
            vec!["first", "second", "third"]
        );
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut sim = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_nanos(100), |w: &mut W, sim: &mut Sim<W>| {
            // Try to schedule 50ns in the past; must fire at t=100, not 50.
            sim.schedule_at(SimTime::from_nanos(50), record("late"));
            w.log.push((sim.now().as_nanos(), "outer"));
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(100, "outer"), (100, "late")]);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Sim::new();
        let mut w = W::default();
        let id = sim.schedule_at(SimTime::from_nanos(10), record("dropped"));
        sim.schedule_at(SimTime::from_nanos(20), record("kept"));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel is a no-op");
        sim.run(&mut w);
        assert_eq!(w.log, vec![(20, "kept")]);
    }

    /// Regression (satellite): the old implementation let `cancel` of an
    /// already-fired id insert into the cancellation side-table forever —
    /// `pending()` undercounted and the set grew unbounded. Fired ids must
    /// be refused.
    #[test]
    fn cancel_after_fire_returns_false_and_keeps_pending_exact() {
        let mut sim = Sim::new();
        let mut w = W::default();
        let fired = sim.schedule_at(SimTime::from_nanos(1), record("fired"));
        sim.run(&mut w);
        assert_eq!(w.log, vec![(1, "fired")]);
        assert!(!sim.cancel(fired), "fired ids must not be cancellable");
        assert!(!sim.cancel(fired), "…no matter how often they are retried");

        // pending() stays exact through an interleaving of fires and
        // cancels (the old estimate would now undercount by one per
        // cancel-after-fire above).
        let a = sim.schedule_at(SimTime::from_nanos(10), record("a"));
        let b = sim.schedule_at(SimTime::from_nanos(20), record("b"));
        sim.schedule_at(SimTime::from_nanos(30), record("c"));
        assert_eq!(sim.pending(), 3);
        assert!(sim.cancel(b));
        assert_eq!(sim.pending(), 2);
        sim.run_until(&mut w, SimTime::from_nanos(15));
        assert_eq!(sim.pending(), 1, "a fired, b cancelled, c remains");
        assert!(!sim.cancel(a), "fired after cancel of a sibling");
        assert_eq!(sim.pending(), 1);
        sim.run(&mut w);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn event_id_slots_are_generation_stamped_across_reuse() {
        let mut sim = Sim::new();
        let mut w = W::default();
        let first = sim.schedule_at(SimTime::from_nanos(1), record("one"));
        sim.run_until(&mut w, SimTime::from_nanos(5));
        // The freed slot is reused; the stale id must not cancel the new
        // tenant.
        let second = sim.schedule_at(SimTime::from_nanos(10), record("two"));
        assert!(!sim.cancel(first));
        sim.run(&mut w);
        assert_eq!(w.log, vec![(1, "one"), (10, "two")]);
        assert!(!sim.cancel(second));
    }

    #[test]
    fn run_until_respects_deadline_and_resumes() {
        let mut sim = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_secs(1), record("one"));
        sim.schedule_at(SimTime::from_secs(3), record("three"));
        let n = sim.run_until(&mut w, SimTime::from_secs(2));
        assert_eq!(n, 1);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        let n = sim.run_until(&mut w, SimTime::from_secs(10));
        assert_eq!(n, 1);
        assert_eq!(
            w.log,
            vec![(1_000_000_000, "one"), (3_000_000_000, "three")]
        );
        // Queue empty: clock advances to the deadline.
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn periodic_event_stops_when_action_returns_false() {
        let mut sim: Sim<W> = Sim::new();
        let counter = Rc::new(RefCell::new(0));
        let c = counter.clone();
        let mut w = W::default();
        sim.schedule_every(SimDuration::from_secs(1), move |_w, _sim| {
            *c.borrow_mut() += 1;
            *c.borrow() < 5
        });
        sim.run(&mut w);
        assert_eq!(*counter.borrow(), 5);
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn step_executes_single_event() {
        let mut sim = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_nanos(1), record("a"));
        sim.schedule_at(SimTime::from_nanos(2), record("b"));
        assert_eq!(sim.step(&mut w), Some(SimTime::from_nanos(1)));
        assert_eq!(w.log.len(), 1);
        assert_eq!(sim.step(&mut w), Some(SimTime::from_nanos(2)));
        assert_eq!(sim.step(&mut w), None);
    }

    #[test]
    fn nested_scheduling_from_handlers() {
        let mut sim = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_nanos(10), |_: &mut W, sim: &mut Sim<W>| {
            sim.schedule_in(SimDuration::from_nanos(5), record("nested"));
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(15, "nested")]);
    }

    #[test]
    fn pending_count_tracks_cancellations() {
        let mut sim: Sim<W> = Sim::new();
        let a = sim.schedule_at(SimTime::from_nanos(1), record("a"));
        sim.schedule_at(SimTime::from_nanos(2), record("b"));
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
    }

    // ----- typed-event and wheel-horizon coverage -----

    enum Tick {
        Beat,
        Chain { hops: u32, step: SimDuration },
    }

    #[derive(Default)]
    struct TickWorld {
        beats: u64,
        last: SimTime,
    }

    impl TypedEvent<TickWorld> for Tick {
        fn kind(&self) -> &'static str {
            match self {
                Tick::Beat => "beat",
                Tick::Chain { .. } => "chain",
            }
        }

        fn fire(self, w: &mut TickWorld, sim: &mut Sim<TickWorld, Tick>) {
            match self {
                Tick::Beat => {
                    w.beats += 1;
                    w.last = sim.now();
                }
                Tick::Chain { hops, step } => {
                    w.beats += 1;
                    w.last = sim.now();
                    if hops > 0 {
                        sim.schedule_typed_in(
                            step,
                            Tick::Chain {
                                hops: hops - 1,
                                step,
                            },
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn typed_events_fire_and_interleave_with_closures() {
        let mut sim: Sim<TickWorld, Tick> = Sim::new();
        let mut w = TickWorld::default();
        sim.schedule_typed_at(SimTime::from_nanos(10), Tick::Beat);
        sim.schedule_at(SimTime::from_nanos(10), |w: &mut TickWorld, _| {
            w.beats += 100
        });
        sim.schedule_typed_at(SimTime::from_nanos(5), Tick::Beat);
        sim.run(&mut w);
        // t=5 beat, then at t=10 the typed beat (scheduled first) precedes
        // the closure.
        assert_eq!(w.beats, 102);
        assert_eq!(w.last, SimTime::from_nanos(10));
    }

    #[test]
    fn typed_event_cancel_is_exact() {
        let mut sim: Sim<TickWorld, Tick> = Sim::new();
        let mut w = TickWorld::default();
        let id = sim.schedule_typed_at(SimTime::from_nanos(10), Tick::Beat);
        assert_eq!(sim.pending(), 1);
        assert!(sim.cancel(id));
        assert_eq!(sim.pending(), 0);
        sim.run(&mut w);
        assert_eq!(w.beats, 0);
        assert!(!sim.cancel(id));
    }

    /// A typed chain walking across wheel levels (steps far larger than one
    /// level span) fires at exactly the arithmetic instants.
    #[test]
    fn typed_chain_crosses_wheel_levels_exactly() {
        let step = SimDuration::from_nanos((1 << 20) + 17);
        let mut sim: Sim<TickWorld, Tick> = Sim::new();
        let mut w = TickWorld::default();
        sim.schedule_typed_at(SimTime::ZERO + step, Tick::Chain { hops: 9, step });
        sim.run(&mut w);
        assert_eq!(w.beats, 10);
        assert_eq!(w.last.as_nanos(), ((1u64 << 20) + 17) * 10);
    }

    /// Per-kind fired counters: off by default (empty snapshot), and once
    /// enabled they bucket typed events by `kind()` and boxed events
    /// under the closure/periodic fallbacks.
    #[test]
    fn fired_counters_bucket_by_kind() {
        let mut sim: Sim<TickWorld, Tick> = Sim::new();
        let mut w = TickWorld::default();
        sim.schedule_typed_at(SimTime::from_nanos(1), Tick::Beat);
        sim.run(&mut w);
        assert!(sim.fired_by_kind().is_empty(), "profiling starts off");

        sim.profile_events();
        sim.schedule_typed_in(SimDuration::from_nanos(1), Tick::Beat);
        sim.schedule_typed_in(SimDuration::from_nanos(2), Tick::Beat);
        sim.schedule_typed_in(
            SimDuration::from_nanos(3),
            Tick::Chain {
                hops: 2,
                step: SimDuration::from_nanos(1),
            },
        );
        sim.schedule_in(SimDuration::from_nanos(4), |_: &mut TickWorld, _| {});
        sim.schedule_every(SimDuration::from_nanos(5), {
            let mut left = 2u32;
            move |_: &mut TickWorld, _| {
                left -= 1;
                left > 0
            }
        });
        sim.run(&mut w);
        assert_eq!(
            sim.fired_by_kind(),
            vec![("beat", 2), ("chain", 3), ("closure", 1), ("periodic", 2)]
        );
    }

    /// Events at the `SimTime::MAX` horizon live in the far-future overflow
    /// and still fire, after everything else, with the clock landing on MAX.
    #[test]
    fn event_at_time_max_fires_last() {
        let mut sim = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::MAX, record("horizon"));
        sim.schedule_at(SimTime::from_secs(1), record("near"));
        sim.run(&mut w);
        assert_eq!(w.log, vec![(1_000_000_000, "near"), (u64::MAX, "horizon")]);
        assert_eq!(sim.now(), SimTime::MAX);
    }

    /// Far-future events must be promoted out of the overflow heap even
    /// when nearer same-epoch events are scheduled after the clock has
    /// entered that epoch (the promotion-order trap).
    #[test]
    fn overflow_promotion_keeps_time_order() {
        const EPOCH: u64 = 1 << 42; // first time beyond the wheel horizon
        let mut sim = Sim::new();
        let mut w = W::default();
        sim.schedule_at(
            SimTime::from_nanos(EPOCH + 1),
            |w: &mut W, sim: &mut Sim<W>| {
                w.log.push((sim.now().as_nanos(), "m"));
                // Later than the still-overflowed (EPOCH + 10) event: the wheel
                // must promote that one ahead of this same-epoch insert.
                sim.schedule_at(
                    SimTime::from_nanos(EPOCH + 50),
                    |w: &mut W, sim: &mut Sim<W>| {
                        w.log.push((sim.now().as_nanos(), "w"));
                    },
                );
            },
        );
        sim.schedule_at(
            SimTime::from_nanos(EPOCH + 10),
            |w: &mut W, sim: &mut Sim<W>| {
                w.log.push((sim.now().as_nanos(), "f"));
            },
        );
        sim.run(&mut w);
        assert_eq!(
            w.log,
            vec![(EPOCH + 1, "m"), (EPOCH + 10, "f"), (EPOCH + 50, "w")]
        );
    }
}
