//! The discrete-event simulator core.
//!
//! A [`Sim<W>`] owns the virtual clock and a priority queue of scheduled
//! events. Events are boxed `FnOnce(&mut W, &mut Sim<W>)` closures: they
//! receive mutable access both to the world state `W` and to the simulator
//! itself, so handlers can schedule follow-up events, cancel timers, and read
//! the clock.
//!
//! Determinism: events at the same instant fire in the order they were
//! scheduled (a monotonically increasing sequence number breaks ties), so a
//! simulation with a fixed seed is exactly reproducible. This mirrors the
//! design of event-driven network stacks where reproducibility under fault
//! injection is a first-class requirement.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Identifier for a scheduled event, used to cancel pending timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

type Action<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Discrete-event simulator over a world state `W`.
///
/// ```
/// use gpunion_des::{Sim, SimDuration, SimTime};
///
/// #[derive(Default)]
/// struct World { pings: u32 }
///
/// let mut sim = Sim::new();
/// let mut world = World::default();
/// sim.schedule_in(SimDuration::from_secs(1), |w: &mut World, _| w.pings += 1);
/// sim.schedule_in(SimDuration::from_secs(2), |w: &mut World, _| w.pings += 1);
/// sim.run(&mut world);
/// assert_eq!(world.pings, 2);
/// assert_eq!(sim.now(), SimTime::from_secs(2));
/// ```
pub struct Sim<W> {
    now: SimTime,
    heap: BinaryHeap<Scheduled<W>>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    executed: u64,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// A fresh simulator with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (diagnostics / cost accounting).
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (excluding cancelled ones not yet popped).
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len().min(self.heap.len())
    }

    /// Schedule `action` at absolute time `at`. Scheduling in the past fires
    /// the event at the current instant instead (never rewinds the clock).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut Sim<W>) + 'static,
    ) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            at,
            seq,
            action: Box::new(action),
        });
        EventId(seq)
    }

    /// Schedule `action` after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Sim<W>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Schedule `action` at the current instant, after already-queued events
    /// for this instant.
    pub fn schedule_now(&mut self, action: impl FnOnce(&mut W, &mut Sim<W>) + 'static) -> EventId {
        self.schedule_at(self.now, action)
    }

    /// Cancel a pending event. Returns `true` if the event had not yet fired.
    /// Cancelling an already-fired or already-cancelled event is a no-op.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Schedule a repeating event with a fixed period. The action runs first
    /// after one full `period`, then repeatedly until it returns `false` or
    /// is cancelled via the returned id's *current* incarnation.
    ///
    /// Note: because each firing re-schedules itself, the returned [`EventId`]
    /// only cancels the *first* pending occurrence. For cancellable periodic
    /// timers, have the closure consult world state and return `false`.
    pub fn schedule_every(
        &mut self,
        period: SimDuration,
        action: impl FnMut(&mut W, &mut Sim<W>) -> bool + 'static,
    ) -> EventId {
        fn tick<W>(
            period: SimDuration,
            mut action: impl FnMut(&mut W, &mut Sim<W>) -> bool + 'static,
            w: &mut W,
            sim: &mut Sim<W>,
        ) {
            if action(w, sim) {
                sim.schedule_in(period, move |w, sim| tick(period, action, w, sim));
            }
        }
        self.schedule_in(period, move |w, sim| tick(period, action, w, sim))
    }

    /// Run until the queue drains. Returns the number of events executed.
    pub fn run(&mut self, world: &mut W) -> u64 {
        self.run_until(world, SimTime::MAX)
    }

    /// Run until the queue drains or the next event lies strictly after
    /// `deadline`. The clock is left at the later of its current value and
    /// the deadline-capped last event time; it never exceeds `deadline`
    /// unless `deadline` is [`SimTime::MAX`].
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> u64 {
        let start_count = self.executed;
        while let Some(ev) = self.heap.peek() {
            if ev.at > deadline {
                // Advance the clock to the deadline so callers observe a
                // consistent "simulated through `deadline`" view.
                if deadline != SimTime::MAX {
                    self.now = self.now.max(deadline);
                }
                break;
            }
            let ev = self.heap.pop().expect("peeked");
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.at >= self.now, "event queue must be monotone");
            self.now = ev.at;
            self.executed += 1;
            (ev.action)(world, self);
        }
        if self.heap.is_empty() && deadline != SimTime::MAX && self.now < deadline {
            self.now = deadline;
        }
        self.executed - start_count
    }

    /// Execute exactly one event if any is pending. Returns the time the
    /// event fired at.
    pub fn step(&mut self, world: &mut W) -> Option<SimTime> {
        loop {
            let ev = self.heap.pop()?;
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.now = ev.at;
            self.executed += 1;
            (ev.action)(world, self);
            return Some(self.now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct W {
        log: Vec<(u64, &'static str)>,
    }

    fn record(tag: &'static str) -> impl FnOnce(&mut W, &mut Sim<W>) {
        move |w, sim| w.log.push((sim.now().as_nanos(), tag))
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_nanos(30), record("c"));
        sim.schedule_at(SimTime::from_nanos(10), record("a"));
        sim.schedule_at(SimTime::from_nanos(20), record("b"));
        sim.run(&mut w);
        assert_eq!(w.log, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut sim = Sim::new();
        let mut w = W::default();
        let t = SimTime::from_nanos(5);
        sim.schedule_at(t, record("first"));
        sim.schedule_at(t, record("second"));
        sim.schedule_at(t, record("third"));
        sim.run(&mut w);
        assert_eq!(
            w.log.iter().map(|(_, s)| *s).collect::<Vec<_>>(),
            vec!["first", "second", "third"]
        );
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut sim = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_nanos(100), |w: &mut W, sim: &mut Sim<W>| {
            // Try to schedule 50ns in the past; must fire at t=100, not 50.
            sim.schedule_at(SimTime::from_nanos(50), record("late"));
            w.log.push((sim.now().as_nanos(), "outer"));
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(100, "outer"), (100, "late")]);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Sim::new();
        let mut w = W::default();
        let id = sim.schedule_at(SimTime::from_nanos(10), record("dropped"));
        sim.schedule_at(SimTime::from_nanos(20), record("kept"));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel is a no-op");
        sim.run(&mut w);
        assert_eq!(w.log, vec![(20, "kept")]);
    }

    #[test]
    fn run_until_respects_deadline_and_resumes() {
        let mut sim = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_secs(1), record("one"));
        sim.schedule_at(SimTime::from_secs(3), record("three"));
        let n = sim.run_until(&mut w, SimTime::from_secs(2));
        assert_eq!(n, 1);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        let n = sim.run_until(&mut w, SimTime::from_secs(10));
        assert_eq!(n, 1);
        assert_eq!(
            w.log,
            vec![(1_000_000_000, "one"), (3_000_000_000, "three")]
        );
        // Queue empty: clock advances to the deadline.
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn periodic_event_stops_when_action_returns_false() {
        let mut sim = Sim::new();
        let counter = Rc::new(RefCell::new(0));
        let c = counter.clone();
        let mut w = W::default();
        sim.schedule_every(SimDuration::from_secs(1), move |_w, _sim| {
            *c.borrow_mut() += 1;
            *c.borrow() < 5
        });
        sim.run(&mut w);
        assert_eq!(*counter.borrow(), 5);
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn step_executes_single_event() {
        let mut sim = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_nanos(1), record("a"));
        sim.schedule_at(SimTime::from_nanos(2), record("b"));
        assert_eq!(sim.step(&mut w), Some(SimTime::from_nanos(1)));
        assert_eq!(w.log.len(), 1);
        assert_eq!(sim.step(&mut w), Some(SimTime::from_nanos(2)));
        assert_eq!(sim.step(&mut w), None);
    }

    #[test]
    fn nested_scheduling_from_handlers() {
        let mut sim = Sim::new();
        let mut w = W::default();
        sim.schedule_at(SimTime::from_nanos(10), |_: &mut W, sim: &mut Sim<W>| {
            sim.schedule_in(SimDuration::from_nanos(5), record("nested"));
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(15, "nested")]);
    }

    #[test]
    fn pending_count_tracks_cancellations() {
        let mut sim: Sim<W> = Sim::new();
        let a = sim.schedule_at(SimTime::from_nanos(1), record("a"));
        sim.schedule_at(SimTime::from_nanos(2), record("b"));
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
    }
}
