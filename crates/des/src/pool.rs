//! A pinned worker-thread pool: the scatter half of the scatter–gather
//! actor pattern shared by the directory shard runtime and the platform's
//! parallel agent pump.
//!
//! ## Shape
//!
//! `WorkerPool<T>` owns `count` OS threads, each with its own
//! Mutex/Condvar-guarded FIFO inbox. A task sent to worker `w` is
//! processed by that worker in send order — the pool never work-steals,
//! so "lane `i` is pinned to worker `i % count`" routing gives every
//! lane a total order over its tasks no matter how threads are
//! scheduled. The pool itself carries no completion signal: callers pair
//! it with a [`JoinPoint`](crate::JoinPoint) per lane (the gather half),
//! marked by the worker body after each task.
//!
//! A pool with `count = 0` spawns nothing; callers are expected to keep
//! an inline degenerate path (apply the task on the producer thread) so
//! zero-worker runs stay byte-identical to the pre-pool code.
//!
//! Dropping the pool enqueues a shutdown marker behind any queued work
//! and joins every thread, so worker bodies observe all sent tasks.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

enum PoolMsg<T> {
    Work(T),
    Shutdown,
}

/// A worker's inbox: FIFO over every task pinned to it. Single producer
/// (the owning thread), single consumer (the worker) — the mutex is the
/// queue's memory fence, never contended for long.
struct Inbox<T> {
    q: Mutex<VecDeque<PoolMsg<T>>>,
    cv: Condvar,
}

struct Worker<T> {
    inbox: Arc<Inbox<T>>,
    handle: Option<JoinHandle<()>>,
}

/// Pinned worker threads over per-worker FIFO inboxes (0 = no threads).
pub struct WorkerPool<T: Send + 'static> {
    workers: Vec<Worker<T>>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawn `count` workers named `name`. `make_body(index)` builds each
    /// worker's task handler; the handler runs on the worker thread for
    /// every task sent to that index, in send order.
    pub fn new<F>(count: usize, name: &str, mut make_body: impl FnMut(usize) -> F) -> Self
    where
        F: FnMut(T) + Send + 'static,
    {
        let workers = (0..count)
            .map(|index| {
                let inbox = Arc::new(Inbox {
                    q: Mutex::new(VecDeque::new()),
                    cv: Condvar::new(),
                });
                let handle = {
                    let inbox = Arc::clone(&inbox);
                    let mut body = make_body(index);
                    std::thread::Builder::new()
                        .name(name.into())
                        .spawn(move || loop {
                            let msg = {
                                let mut q = inbox.q.lock().expect("inbox poisoned");
                                loop {
                                    if let Some(m) = q.pop_front() {
                                        break m;
                                    }
                                    q = inbox.cv.wait(q).expect("inbox poisoned");
                                }
                            };
                            match msg {
                                PoolMsg::Work(task) => body(task),
                                PoolMsg::Shutdown => return,
                            }
                        })
                        .expect("spawn pool worker")
                };
                Worker {
                    inbox,
                    handle: Some(handle),
                }
            })
            .collect();
        WorkerPool { workers }
    }

    /// Worker threads in the pool (0 = caller must run tasks inline).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// True when no threads exist and the caller owns every lane.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Enqueue `task` on worker `index`'s inbox (fire-and-forget; FIFO
    /// per worker). Panics if the pool is empty or `index` out of range.
    pub fn send(&self, index: usize, task: T) {
        let w = &self.workers[index];
        let mut q = w.inbox.q.lock().expect("inbox poisoned");
        q.push_back(PoolMsg::Work(task));
        drop(q);
        w.inbox.cv.notify_one();
    }
}

impl<T: Send + 'static> fmt::Debug for WorkerPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        for w in &mut self.workers {
            {
                let mut q = w.inbox.q.lock().expect("inbox poisoned");
                q.push_back(PoolMsg::Shutdown);
            }
            w.inbox.cv.notify_one();
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JoinPoint;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Tasks sent to one worker run in send order; the JoinPoint gather
    /// protocol observes every task before the counter read.
    #[test]
    fn per_worker_fifo_and_join() {
        let lanes: Arc<Vec<(AtomicU64, JoinPoint)>> = Arc::new(
            (0..3)
                .map(|_| (AtomicU64::new(0), JoinPoint::new()))
                .collect(),
        );
        let pool: WorkerPool<(usize, u64)> = WorkerPool::new(2, "pool-test", |_| {
            let lanes = Arc::clone(&lanes);
            let mut applied = vec![0u64; lanes.len()];
            move |(lane, val): (usize, u64)| {
                // FIFO per lane: values arrive strictly increasing.
                let prev = lanes[lane].0.swap(val, Ordering::Relaxed);
                assert!(prev < val, "lane {lane}: {prev} then {val}");
                applied[lane] += 1;
                lanes[lane].1.mark(applied[lane]);
            }
        });
        let mut sent = vec![0u64; lanes.len()];
        for round in 1..=100u64 {
            for (lane, n) in sent.iter_mut().enumerate() {
                pool.send(lane % pool.worker_count(), (lane, round));
                *n += 1;
            }
        }
        for (lane, &n) in sent.iter().enumerate() {
            lanes[lane].1.wait(n);
            assert_eq!(lanes[lane].0.load(Ordering::Relaxed), 100);
        }
    }

    /// Dropping the pool drains queued work before the threads exit.
    #[test]
    fn drop_drains_queued_work() {
        let hits = Arc::new(AtomicU64::new(0));
        {
            let hits = Arc::clone(&hits);
            let pool: WorkerPool<u64> = WorkerPool::new(1, "pool-drop", move |_| {
                let hits = Arc::clone(&hits);
                move |v| {
                    hits.fetch_add(v, Ordering::Relaxed);
                }
            });
            for v in 1..=64u64 {
                pool.send(0, v);
            }
        }
        assert_eq!(hits.load(Ordering::Relaxed), (1..=64).sum::<u64>());
    }

    /// A zero-worker pool is inert: no threads, callers go inline.
    #[test]
    fn empty_pool_is_inline_marker() {
        let pool: WorkerPool<u64> = WorkerPool::new(0, "pool-empty", |_| |_v| {});
        assert!(pool.is_empty());
        assert_eq!(pool.worker_count(), 0);
    }
}
