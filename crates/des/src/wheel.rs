//! Hierarchical timer wheel: the simulator's priority queue.
//!
//! Seven levels of 64 slots each (6 bits of the nanosecond clock per
//! level) cover the next ~73 simulated minutes (`2^42` ns) exactly;
//! anything further out sits in a small far-future overflow heap and is
//! promoted into the wheel when the clock gets close. Wheel entries are
//! nodes in one arena, threaded through per-slot intrusive singly-linked
//! lists: the arena grows to the high-water pending count and is then
//! recycled through an internal free list, so the warm schedule→fire
//! cycle performs **zero** allocations no matter which slots the cursor
//! rotates into. Each node is five words — `(time, seq, slot, gen,
//! next)` — pointing at its payload in the event slab.
//!
//! ## Placement and ordering
//!
//! An entry for time `t` lives at the level of the *highest 6-bit group
//! in which `t` differs from the current wheel time* (`level_of(t ^
//! now)`), in the slot indexed by `t`'s group at that level. Because the
//! higher groups agree with `now`, slot ranges within a level are
//! disjoint and increasing from the cursor, and every level-`l` range is
//! finer than (and precedes) the remaining level-`l+1` ranges — so the
//! earliest pending entry is found by scanning levels bottom-up and
//! taking the first occupied slot at or after the cursor (a bitmap scan)
//! then the minimum `(time, seq)` within that slot's list. Entries in a
//! level-0 slot share one exact timestamp; the minimum `seq` among them
//! preserves the global `(time, seq)` FIFO tie-break **bit-identically**
//! with the old binary heap, including events cascading in from outer
//! levels next to events scheduled directly at the same instant.
//!
//! ## Advancing
//!
//! The wheel time only moves at a real event firing (`advance_to`);
//! peeks and stale-entry pops never move it, so late inserts below a
//! `run_until` deadline stay correctly placed. On advance, each level
//! whose cursor moved re-files the entries of its *new* cursor slot into
//! finer levels (relinking nodes — no copies, no allocation); slots
//! skipped over are provably empty because the firing time is the global
//! minimum. Cancelled entries are recognised by their stale generation
//! stamp when they surface and are dropped then — cancellation itself is
//! O(1) in the slab and never touches the wheel.

/// Bits of the clock consumed per wheel level.
const BITS: u32 = 6;
/// Slots per level (`2^BITS`).
const SLOTS: usize = 1 << BITS;
/// Number of wheel levels; beyond them lies the overflow heap.
const LEVELS: usize = 7;
/// Horizon of the wheel proper: times with `t ^ now >= SPAN` overflow.
const SPAN: u64 = 1 << (BITS * LEVELS as u32);
/// Null link / empty slot marker.
const NIL: u32 = u32::MAX;

/// A pending entry: when, FIFO tie-break, and the slab slot + generation
/// stamp of its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WheelEntry {
    pub at: u64,
    pub seq: u64,
    pub slot: u32,
    pub gen: u32,
}

/// Arena node: a [`WheelEntry`] threaded into its slot's list (or the
/// free list when vacant).
struct Node {
    at: u64,
    seq: u64,
    slot: u32,
    gen: u32,
    next: u32,
}

/// Far-future entries, min-ordered by `(at, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Overflow {
    at: u64,
    seq: u64,
    slot: u32,
    gen: u32,
}

pub(crate) struct TimerWheel {
    /// Wheel time: the timestamp of the last fired entry (never ahead of
    /// the earliest pending entry).
    now: u64,
    /// Node arena; grows to the pending high-water mark, then recycles.
    nodes: Vec<Node>,
    /// Head of the intrusive free list through `Node::next`.
    free_head: u32,
    /// Per-level, per-slot list heads into the arena.
    heads: [[u32; SLOTS]; LEVELS],
    /// Per-level occupancy bitmaps (bit `s` ⇔ slot `s` non-empty).
    occupied: [u64; LEVELS],
    overflow: std::collections::BinaryHeap<std::cmp::Reverse<Overflow>>,
    /// Total entries held (live + stale), wheel and overflow.
    len: usize,
}

impl TimerWheel {
    pub(crate) fn new() -> Self {
        TimerWheel {
            now: 0,
            nodes: Vec::new(),
            free_head: NIL,
            heads: [[NIL; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            overflow: std::collections::BinaryHeap::new(),
            len: 0,
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an entry with `at >= self.now` (callers schedule at or after
    /// the clock; the simulator clamps past times).
    pub(crate) fn insert(&mut self, e: WheelEntry) {
        debug_assert!(e.at >= self.now, "wheel inserts never predate the clock");
        self.len += 1;
        if e.at ^ self.now >= SPAN {
            self.overflow.push(std::cmp::Reverse(Overflow {
                at: e.at,
                seq: e.seq,
                slot: e.slot,
                gen: e.gen,
            }));
            return;
        }
        let i = self.alloc_node(e);
        self.link(i);
    }

    fn alloc_node(&mut self, e: WheelEntry) -> u32 {
        let node = Node {
            at: e.at,
            seq: e.seq,
            slot: e.slot,
            gen: e.gen,
            next: NIL,
        };
        if self.free_head != NIL {
            let i = self.free_head;
            self.free_head = self.nodes[i as usize].next;
            self.nodes[i as usize] = node;
            i
        } else {
            let i = self.nodes.len() as u32;
            self.nodes.push(node);
            i
        }
    }

    fn free_node(&mut self, i: u32) {
        self.nodes[i as usize].next = self.free_head;
        self.free_head = i;
    }

    /// Thread node `i` into the slot its time selects relative to the
    /// current wheel time. List order within a slot is irrelevant: the
    /// minimum `(at, seq)` is located by scan.
    fn link(&mut self, i: u32) {
        let at = self.nodes[i as usize].at;
        let diff = at ^ self.now;
        debug_assert!(diff < SPAN, "linked entries lie within the wheel horizon");
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / BITS) as usize
        };
        let slot = ((at >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.nodes[i as usize].next = self.heads[level][slot];
        self.heads[level][slot] = i;
        self.occupied[level] |= 1 << slot;
    }

    /// Pull overflow entries whose time now falls inside the wheel horizon.
    fn promote(&mut self) {
        while let Some(std::cmp::Reverse(head)) = self.overflow.peek() {
            if head.at ^ self.now >= SPAN {
                break;
            }
            let std::cmp::Reverse(o) = self.overflow.pop().expect("peeked");
            let i = self.alloc_node(WheelEntry {
                at: o.at,
                seq: o.seq,
                slot: o.slot,
                gen: o.gen,
            });
            self.link(i);
        }
    }

    /// Locate the earliest wheel entry: `(level, slot, prev-node, node)`,
    /// with `prev == NIL` when the node is its list's head.
    fn find_min(&self) -> Option<(usize, usize, u32, u32)> {
        for level in 0..LEVELS {
            let cursor = ((self.now >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as u32;
            debug_assert_eq!(
                self.occupied[level] & !(u64::MAX << cursor),
                0,
                "no occupied slot may trail the cursor"
            );
            let mask = self.occupied[level] & (u64::MAX << cursor);
            if mask == 0 {
                continue;
            }
            let slot = mask.trailing_zeros() as usize;
            let head = self.heads[level][slot];
            debug_assert_ne!(head, NIL);
            let (mut best, mut best_prev) = (head, NIL);
            let mut prev = head;
            let mut cur = self.nodes[head as usize].next;
            while cur != NIL {
                let c = &self.nodes[cur as usize];
                let b = &self.nodes[best as usize];
                if (c.at, c.seq) < (b.at, b.seq) {
                    best = cur;
                    best_prev = prev;
                }
                prev = cur;
                cur = c.next;
            }
            return Some((level, slot, best_prev, best));
        }
        None
    }

    /// The earliest pending entry (stale ones included), if any. Promotes
    /// due overflow entries first; never advances the wheel time.
    pub(crate) fn peek(&mut self) -> Option<WheelEntry> {
        self.promote();
        if let Some((_, _, _, i)) = self.find_min() {
            let n = &self.nodes[i as usize];
            return Some(WheelEntry {
                at: n.at,
                seq: n.seq,
                slot: n.slot,
                gen: n.gen,
            });
        }
        self.overflow.peek().map(|std::cmp::Reverse(o)| WheelEntry {
            at: o.at,
            seq: o.seq,
            slot: o.slot,
            gen: o.gen,
        })
    }

    /// Remove and return the earliest entry. Never advances the wheel time
    /// (the simulator calls [`Self::advance_to`] only when it *fires* the
    /// entry, so discarding stale entries leaves placement untouched).
    pub(crate) fn pop(&mut self) -> Option<WheelEntry> {
        self.promote();
        if let Some((level, slot, prev, i)) = self.find_min() {
            let next = self.nodes[i as usize].next;
            if prev == NIL {
                self.heads[level][slot] = next;
                if next == NIL {
                    self.occupied[level] &= !(1 << slot);
                }
            } else {
                self.nodes[prev as usize].next = next;
            }
            let n = &self.nodes[i as usize];
            let e = WheelEntry {
                at: n.at,
                seq: n.seq,
                slot: n.slot,
                gen: n.gen,
            };
            self.free_node(i);
            self.len -= 1;
            return Some(e);
        }
        self.overflow.pop().map(|std::cmp::Reverse(o)| {
            self.len -= 1;
            WheelEntry {
                at: o.at,
                seq: o.seq,
                slot: o.slot,
                gen: o.gen,
            }
        })
    }

    /// Move the wheel time to `t` (the timestamp of the entry being fired,
    /// i.e. the global minimum) and cascade each level's new cursor slot
    /// into finer levels.
    pub(crate) fn advance_to(&mut self, t: u64) {
        let prev = self.now;
        if t <= prev {
            return;
        }
        self.now = t;
        // Descending: nodes re-filed from level l land strictly below l and
        // never on a lower level's new cursor slot, so one pass suffices.
        for level in (1..LEVELS).rev() {
            let shift = BITS * level as u32;
            if (prev >> shift) == (t >> shift) {
                continue;
            }
            let slot = ((t >> shift) & (SLOTS as u64 - 1)) as usize;
            // Detach the slot's whole list and relink each node relative to
            // the new wheel time (pointer surgery only — no allocation).
            let mut cur = self.heads[level][slot];
            if cur == NIL {
                continue;
            }
            self.heads[level][slot] = NIL;
            self.occupied[level] &= !(1 << slot);
            while cur != NIL {
                let next = self.nodes[cur as usize].next;
                debug_assert!(self.nodes[cur as usize].at >= t);
                self.link(cur);
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(at: u64, seq: u64) -> WheelEntry {
        WheelEntry {
            at,
            seq,
            slot: seq as u32,
            gen: 0,
        }
    }

    /// Drain the wheel the way the simulator does: pop the minimum, then
    /// advance to its time.
    fn drain(w: &mut TimerWheel) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(ev) = w.pop() {
            w.advance_to(ev.at);
            out.push((ev.at, ev.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order_across_levels() {
        let mut w = TimerWheel::new();
        // Spread across level 0 (3), level 2 (40_000), level 5 (2^31),
        // overflow (2^50), plus same-time seq ties.
        let mut ins = vec![
            e(3, 0),
            e(40_000, 1),
            e(1 << 31, 2),
            e(1 << 50, 3),
            e(3, 4),
            e(40_000, 5),
            e(1 << 50, 6),
        ];
        for ev in ins.drain(..) {
            w.insert(ev);
        }
        assert_eq!(
            drain(&mut w),
            vec![
                (3, 0),
                (3, 4),
                (40_000, 1),
                (40_000, 5),
                (1 << 31, 2),
                (1 << 50, 3),
                (1 << 50, 6),
            ]
        );
    }

    #[test]
    fn same_instant_fifo_across_wheel_levels() {
        // seq 0 is filed at level 2 (T is far from 0); firing at T-5 —
        // which shares T's 64 ns block — cascades it down to level 0,
        // where seq 2 is then filed directly for the same instant. The
        // cascade must not let the direct insert overtake it.
        const T: u64 = 0x1045; // level 2 when seen from t=0
        let mut w = TimerWheel::new();
        w.insert(e(T, 0));
        w.insert(e(T - 5, 1));
        let first = w.pop().expect("nearest");
        assert_eq!((first.at, first.seq), (T - 5, 1));
        w.advance_to(T - 5);
        // Scheduled directly into level 0 alongside the cascaded entry.
        w.insert(e(T, 2));
        assert_eq!(drain(&mut w), vec![(T, 0), (T, 2)]);
    }

    #[test]
    fn far_future_overflow_promotes_before_nearer_wheel_entries() {
        let mut w = TimerWheel::new();
        // Both beyond the 2^42 horizon from t=0: overflow.
        w.insert(e(SPAN + 1, 0));
        w.insert(e(SPAN + 10, 1));
        // Fire the first overflow entry; the clock lands in its epoch.
        let m = w.pop().expect("overflow head");
        assert_eq!((m.at, m.seq), (SPAN + 1, 0));
        w.advance_to(SPAN + 1);
        // A *later* same-epoch event goes straight into the wheel; the
        // remaining overflow entry (earlier) must be promoted past it.
        w.insert(e(SPAN + 50, 2));
        assert_eq!(drain(&mut w), vec![(SPAN + 10, 1), (SPAN + 50, 2)]);
    }

    #[test]
    fn u64_max_horizon_event_fires() {
        let mut w = TimerWheel::new();
        w.insert(e(5, 0));
        w.insert(e(u64::MAX, 1));
        assert_eq!(drain(&mut w), vec![(5, 0), (u64::MAX, 1)]);
        assert!(w.is_empty());
    }

    #[test]
    fn peek_does_not_advance_placement() {
        let mut w = TimerWheel::new();
        w.insert(e(100_000, 0));
        assert_eq!(w.peek().map(|x| x.seq), Some(0));
        // Peeking must not have moved the wheel time: an earlier insert
        // still surfaces first.
        w.insert(e(7, 1));
        assert_eq!(drain(&mut w), vec![(7, 1), (100_000, 0)]);
    }

    #[test]
    fn mirrors_sorted_order_on_dense_random_load() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let mut w = TimerWheel::new();
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut now = 0u64;
        for seq in 0..2_000u64 {
            // Mixed horizons: same instant, near, mid, far, overflow.
            let dt = match rng.gen_range(0..5) {
                0 => 0,
                1 => rng.gen_range(0..64),
                2 => rng.gen_range(0..1 << 18),
                3 => rng.gen_range(0..1 << 30),
                _ => rng.gen_range(0..u64::MAX - now),
            };
            w.insert(e(now + dt, seq));
            model.push((now + dt, seq));
            // Occasionally fire a few.
            if rng.gen_bool(0.4) {
                model.sort_unstable();
                for _ in 0..rng.gen_range(1..4) {
                    if model.is_empty() {
                        break;
                    }
                    let (at, s) = model.remove(0);
                    let got = w.pop().expect("model non-empty");
                    assert_eq!((got.at, got.seq), (at, s));
                    w.advance_to(at);
                    now = at;
                }
            }
        }
        model.sort_unstable();
        assert_eq!(drain(&mut w), model);
    }
}
