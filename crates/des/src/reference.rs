//! The original heap-backed event queue, kept as a reference oracle.
//!
//! [`HeapSim`] is the pre-wheel implementation of the simulator verbatim:
//! a `BinaryHeap` of boxed `FnOnce` closures ordered by `(time, seq)` with
//! a `HashSet` cancellation side-table. It exists for two jobs only:
//!
//! * the equivalence proptest in this crate runs it side-by-side with the
//!   slab + timer-wheel [`Sim`](crate::Sim) under random schedule / cancel /
//!   `run_until` interleavings and asserts identical fire logs and clocks;
//! * the `des_core` criterion group and `bench_gate` use it as the
//!   boxed-heap cost baseline the typed-event path must beat.
//!
//! It deliberately preserves the old `cancel` wart — cancelling an
//! already-fired id returns `true` and leaks a `cancelled` entry — because
//! that is the behaviour the oracle documents; the proptest constrains its
//! comparisons accordingly. Do not "fix" this module: its value is being
//! frozen.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Identifier for an event scheduled on a [`HeapSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HeapEventId(u64);

type Action<W> = Box<dyn FnOnce(&mut W, &mut HeapSim<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The frozen heap-backed simulator (see module docs). API mirrors
/// [`Sim`](crate::Sim) minus typed events.
pub struct HeapSim<W> {
    now: SimTime,
    heap: BinaryHeap<Scheduled<W>>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    executed: u64,
}

impl<W> Default for HeapSim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> HeapSim<W> {
    /// A fresh simulator with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        HeapSim {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Approximate pending count (the documented old wart: cancelled-after-
    /// fire entries make this undercount).
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len().min(self.heap.len())
    }

    /// Schedule `action` at absolute time `at`, clamping past times to now.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut HeapSim<W>) + 'static,
    ) -> HeapEventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            at,
            seq,
            action: Box::new(action),
        });
        HeapEventId(seq)
    }

    /// Schedule `action` after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut HeapSim<W>) + 'static,
    ) -> HeapEventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Old cancel semantics, wart included: any allocated id — fired or not —
    /// inserts into the side-table and returns whether it was newly inserted.
    pub fn cancel(&mut self, id: HeapEventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Run until the queue drains.
    pub fn run(&mut self, world: &mut W) -> u64 {
        self.run_until(world, SimTime::MAX)
    }

    /// Run until the queue drains or the next event lies strictly after
    /// `deadline` (old implementation verbatim).
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> u64 {
        let start_count = self.executed;
        while let Some(ev) = self.heap.peek() {
            if ev.at > deadline {
                if deadline != SimTime::MAX {
                    self.now = self.now.max(deadline);
                }
                break;
            }
            let ev = self.heap.pop().expect("peeked");
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.at >= self.now, "event queue must be monotone");
            self.now = ev.at;
            self.executed += 1;
            (ev.action)(world, self);
        }
        if self.heap.is_empty() && deadline != SimTime::MAX && self.now < deadline {
            self.now = deadline;
        }
        self.executed - start_count
    }

    /// Execute exactly one event if any is pending.
    pub fn step(&mut self, world: &mut W) -> Option<SimTime> {
        loop {
            let ev = self.heap.pop()?;
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.now = ev.at;
            self.executed += 1;
            (ev.action)(world, self);
            return Some(self.now);
        }
    }
}
