//! Statistics collectors used throughout the simulation.
//!
//! Three collectors cover the paper's reporting needs:
//!
//! - [`TimeWeighted`] — utilization-style metrics where the *duration* a value
//!   was held matters (GPU utilization averaged over six weeks is the
//!   integral of instantaneous utilization over time, not a sample mean).
//! - [`Online`] — Welford running mean/variance for sampled quantities
//!   (migration downtime, scheduling latency).
//! - [`Histogram`] — log-bucketed percentile estimation (p50/p95/p99 latency).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Time-weighted average of a piecewise-constant signal.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the collector
/// integrates value × duration between changes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    total_time: f64,
    min: f64,
    max: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// New collector; the signal is undefined until the first `set`.
    pub fn new() -> Self {
        TimeWeighted {
            last_time: SimTime::ZERO,
            last_value: 0.0,
            weighted_sum: 0.0,
            total_time: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            started: false,
        }
    }

    /// Record that the signal takes value `v` from time `now` onward.
    pub fn set(&mut self, now: SimTime, v: f64) {
        if self.started {
            let dt = now.since(self.last_time).as_secs_f64();
            self.weighted_sum += self.last_value * dt;
            self.total_time += dt;
        }
        self.started = true;
        self.last_time = now;
        self.last_value = v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Close the integration window at `now` without changing the value.
    pub fn finish(&mut self, now: SimTime) {
        let v = self.last_value;
        self.set(now, v);
    }

    /// Time-weighted mean over the observed window, or `None` before any
    /// interval has elapsed.
    pub fn mean(&self) -> Option<f64> {
        if self.total_time > 0.0 {
            Some(self.weighted_sum / self.total_time)
        } else {
            None
        }
    }

    /// Smallest value ever set.
    pub fn min(&self) -> Option<f64> {
        self.started.then_some(self.min)
    }

    /// Largest value ever set.
    pub fn max(&self) -> Option<f64> {
        self.started.then_some(self.max)
    }

    /// Total integrated time in seconds.
    pub fn observed_secs(&self) -> f64 {
        self.total_time
    }

    /// The most recently set value.
    pub fn current(&self) -> Option<f64> {
        self.started.then_some(self.last_value)
    }
}

/// Welford online mean / variance / extrema for sampled values.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Online {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Online {
    /// New empty collector.
    pub fn new() -> Self {
        Online {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..Default::default()
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration sample in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (None when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Unbiased sample standard deviation (None with fewer than 2 samples).
    pub fn stddev(&self) -> Option<f64> {
        (self.n >= 2).then(|| (self.m2 / (self.n - 1) as f64).sqrt())
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another collector into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Online) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Log-bucketed histogram for non-negative samples spanning many decades
/// (nanoseconds to hours). 16 buckets per decade over a configurable range.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    buckets_per_decade: usize,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// A histogram covering `[lo, lo * 10^decades)`.
    pub fn new(lo: f64, decades: usize) -> Self {
        assert!(lo > 0.0 && decades > 0);
        let buckets_per_decade = 16;
        Histogram {
            lo,
            buckets_per_decade,
            counts: vec![0; buckets_per_decade * decades],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// A histogram suited to latencies: 1 µs .. 1000 s (9 decades), in seconds.
    pub fn for_latency() -> Self {
        Histogram::new(1e-6, 9)
    }

    fn index(&self, x: f64) -> Option<usize> {
        if x < self.lo {
            return None;
        }
        let pos = (x / self.lo).log10() * self.buckets_per_decade as f64;
        let i = pos as usize;
        (i < self.counts.len()).then_some(i)
    }

    /// Record one sample. Values outside the range land in under/overflow.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else {
            match self.index(x) {
                Some(i) => self.counts[i] += 1,
                None => self.overflow += 1,
            }
        }
    }

    /// Record a duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate quantile (0.0–1.0). Returns the lower edge of the bucket
    /// containing the quantile. None when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(0.0);
        }
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo * 10f64.powf(i as f64 / self.buckets_per_decade as f64));
            }
        }
        Some(self.lo * 10f64.powi((self.counts.len() / self.buckets_per_decade) as i32))
    }

    /// p50 shorthand.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_integrates_correctly() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::from_secs(0), 0.0);
        tw.set(SimTime::from_secs(10), 1.0); // 0.0 held for 10s
        tw.set(SimTime::from_secs(30), 0.5); // 1.0 held for 20s
        tw.finish(SimTime::from_secs(40)); // 0.5 held for 10s

        // mean = (0*10 + 1*20 + 0.5*10) / 40 = 25/40
        assert!((tw.mean().unwrap() - 0.625).abs() < 1e-12);
        assert_eq!(tw.min(), Some(0.0));
        assert_eq!(tw.max(), Some(1.0));
        assert_eq!(tw.observed_secs(), 40.0);
    }

    #[test]
    fn time_weighted_empty() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean(), None);
        assert_eq!(tw.current(), None);
    }

    #[test]
    fn online_welford_matches_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut o = Online::new();
        for &x in &xs {
            o.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((o.mean().unwrap() - mean).abs() < 1e-12);
        assert!((o.stddev().unwrap() - var.sqrt()).abs() < 1e-12);
        assert_eq!(o.min(), Some(1.0));
        assert_eq!(o.max(), Some(9.0));
    }

    #[test]
    fn online_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Online::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Online::new();
        let mut b = Online::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((a.stddev().unwrap() - whole.stddev().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bracketing() {
        let mut h = Histogram::for_latency();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0); // 1ms .. 1s uniform
        }
        let p50 = h.median().unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 < p99);
        assert!(p50 > 0.3 && p50 < 0.7, "p50 {p50}");
        assert!(p99 > 0.8, "p99 {p99}");
    }

    #[test]
    fn histogram_under_overflow() {
        let mut h = Histogram::new(1.0, 2); // [1, 100)
        h.record(0.5);
        h.record(1_000.0);
        h.record(10.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), Some(0.0)); // underflow bucket
    }
}
