//! Simulation time: a nanosecond-resolution virtual clock.
//!
//! All GPUnion substrates (network, GPUs, containers, scheduler) share a single
//! virtual clock driven by the event queue in [`crate::sim`]. Time is stored as
//! nanoseconds in a `u64`, which covers ~584 years of simulated time — far more
//! than the six-week campus deployment the paper evaluates.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (lossy for very large times).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Returns [`SimDuration::ZERO`] if
    /// `earlier` is in the future (saturating, never panics).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }

    /// Saturating addition (clamps at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * 1_000_000_000)
    }

    /// Construct from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400 * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative and non-finite inputs clamp
    /// to zero; values beyond the representable range clamp to [`SimDuration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a non-negative float (used for scaling transfer times by
    /// bandwidth share). Non-finite or negative factors yield zero.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * f)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    /// Ratio of two durations.
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.as_secs_f64() / rhs.as_secs_f64()
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.0 / 1_000_000;
        let ms = total_ms % 1_000;
        let s = (total_ms / 1_000) % 60;
        let m = (total_ms / 60_000) % 60;
        let h = total_ms / 3_600_000;
        write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e6)
        } else if self.0 < 60 * 1_000_000_000 {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else if self.0 < 3_600 * 1_000_000_000 {
            write!(f, "{:.1}min", self.as_secs_f64() / 60.0)
        } else {
            write!(f, "{:.2}h", self.as_secs_f64() / 3_600.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!((t + d).as_secs_f64(), 13.0);
        assert_eq!((t - d).as_secs_f64(), 7.0);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), SimDuration::ZERO, "saturates, not panics");
    }

    #[test]
    fn duration_from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
        assert_eq!(SimDuration::from_secs_f64(1e300), SimDuration::MAX);
    }

    #[test]
    fn duration_ratio() {
        let a = SimDuration::from_secs(30);
        let b = SimDuration::from_secs(60);
        assert!((a / b - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(3_661).to_string(), "01:01:01.000");
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(3).to_string(), "3.0us");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250.0ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.00s");
        assert_eq!(SimDuration::from_mins(90).to_string(), "1.50h");
    }

    #[test]
    fn saturation_at_extremes() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
        assert_eq!(SimTime::ZERO.checked_sub(SimDuration::from_nanos(1)), None);
    }

    #[test]
    fn mul_f64_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
    }
}
