//! Token-bucket rate limiting over simulation time.
//!
//! One shared limiter type for every admission front door: the agent's REST
//! surface throttles provider-facing requests with it, and the coordinator's
//! DES admission path sheds non-critical job submissions with the identical
//! arithmetic. Refill is computed lazily from elapsed [`SimTime`], so the
//! bucket costs nothing while idle and never needs a timer.

use crate::time::{SimDuration, SimTime};

/// A token bucket: `capacity` tokens max, refilled continuously at
/// `refill_per_sec`. Each admitted request takes one token; a request that
/// arrives to an empty bucket is rejected (shed / 429).
///
/// Token arithmetic is integer nanosecond-exact: the bucket tracks spent
/// tokens as a nanosecond-scaled deficit, so two buckets fed the same
/// `(now, try_take)` sequence always agree — required for deterministic
/// replay in the simulator.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Maximum burst, in tokens.
    capacity: u64,
    /// Refill rate, tokens per second.
    refill_per_sec: u64,
    /// Available tokens, scaled by `SCALE` for fractional refill.
    scaled_tokens: u64,
    /// Last refill instant.
    last: SimTime,
}

/// Fixed-point scale: 1 token = 1e9 units (nanosecond-per-second symmetry,
/// so refill is `elapsed_ns * refill_per_sec` with no division).
const SCALE: u64 = 1_000_000_000;

impl TokenBucket {
    /// A full bucket created at `now`.
    pub fn new(capacity: u64, refill_per_sec: u64, now: SimTime) -> Self {
        TokenBucket {
            capacity,
            refill_per_sec,
            scaled_tokens: capacity.saturating_mul(SCALE),
            last: now,
        }
    }

    /// Burst capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Refill rate in tokens per second.
    pub fn refill_per_sec(&self) -> u64 {
        self.refill_per_sec
    }

    fn refill(&mut self, now: SimTime) {
        if now <= self.last {
            return;
        }
        let elapsed_ns = now.since(self.last).as_nanos();
        self.last = now;
        let added = elapsed_ns.saturating_mul(self.refill_per_sec);
        self.scaled_tokens = self
            .scaled_tokens
            .saturating_add(added)
            .min(self.capacity.saturating_mul(SCALE));
    }

    /// Whole tokens currently available at `now` (refills first).
    pub fn available(&mut self, now: SimTime) -> u64 {
        self.refill(now);
        self.scaled_tokens / SCALE
    }

    /// Try to take one token at `now`. Returns `true` when admitted.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.scaled_tokens >= SCALE {
            self.scaled_tokens -= SCALE;
            true
        } else {
            false
        }
    }

    /// How long until the next token is available, from `now`. Zero when a
    /// token is already available; `None` when the refill rate is zero and
    /// the bucket is empty (it will never refill).
    pub fn time_to_next(&mut self, now: SimTime) -> Option<SimDuration> {
        self.refill(now);
        if self.scaled_tokens >= SCALE {
            return Some(SimDuration::ZERO);
        }
        if self.refill_per_sec == 0 {
            return None;
        }
        let deficit = SCALE - self.scaled_tokens;
        Some(SimDuration::from_nanos(
            deficit.div_ceil(self.refill_per_sec),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn burst_then_shed() {
        let mut b = TokenBucket::new(3, 1, t(0));
        assert!(b.try_take(t(0)));
        assert!(b.try_take(t(0)));
        assert!(b.try_take(t(0)));
        assert!(!b.try_take(t(0)), "burst exhausted");
    }

    #[test]
    fn refills_at_rate() {
        let mut b = TokenBucket::new(10, 2, t(0));
        for _ in 0..10 {
            assert!(b.try_take(t(0)));
        }
        assert!(!b.try_take(t(0)));
        // 1 second at 2/s -> 2 tokens.
        assert!(b.try_take(t(1)));
        assert!(b.try_take(t(1)));
        assert!(!b.try_take(t(1)));
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut b = TokenBucket::new(5, 100, t(0));
        assert_eq!(b.available(t(1000)), 5);
    }

    #[test]
    fn fractional_refill_is_exact() {
        // 1 token per 4 seconds (0.25/s can't be expressed; use the
        // ns-exact path: 1/s with a take every 250 ms admits 1 in 4).
        let mut b = TokenBucket::new(1, 1, t(0));
        assert!(b.try_take(t(0)));
        let mut admitted = 0;
        for ms in (250..=2000).step_by(250) {
            if b.try_take(SimTime::from_millis(ms)) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 2, "2 whole tokens refill over 2 s at 1/s");
    }

    #[test]
    fn time_to_next_token() {
        let mut b = TokenBucket::new(1, 2, t(0));
        assert_eq!(b.time_to_next(t(0)), Some(SimDuration::ZERO));
        assert!(b.try_take(t(0)));
        // 2 tokens/s -> next token in 500 ms.
        assert_eq!(b.time_to_next(t(0)), Some(SimDuration::from_millis(500)));
        let mut dead = TokenBucket::new(1, 0, t(0));
        assert!(dead.try_take(t(0)));
        assert_eq!(dead.time_to_next(t(0)), None);
    }

    #[test]
    fn deterministic_replay() {
        let mut a = TokenBucket::new(4, 3, t(0));
        let mut b = TokenBucket::new(4, 3, t(0));
        for i in 0..200u64 {
            let now = SimTime::from_millis(i * 137);
            assert_eq!(a.try_take(now), b.try_take(now), "step {i}");
        }
    }
}
