//! # gpunion-des — discrete-event simulation kernel
//!
//! The foundation of the GPUnion reproduction: a deterministic
//! discrete-event simulator with a nanosecond virtual clock, cancellable
//! timers, named reproducible RNG streams, and the statistics collectors the
//! paper's evaluation metrics are computed from.
//!
//! Everything above this crate — the campus network, GPU servers, container
//! runtime, provider agents, and the central scheduler — advances by
//! scheduling closures on a [`Sim`].
//!
//! ## Determinism contract
//!
//! * Events at equal timestamps fire in scheduling order.
//! * All randomness flows through [`RngPool`] streams derived from one master
//!   seed, so runs are bit-reproducible and baselines can be compared on
//!   identical traces.

pub mod join;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;

pub use join::{drain_order, JoinPoint};
pub use rng::{chance, exponential, log_normal, RngPool};
pub use sim::{EventId, Sim};
pub use stats::{Histogram, Online, TimeWeighted};
pub use time::{SimDuration, SimTime};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always execute in non-decreasing time order, regardless of
        /// the order they were scheduled in.
        #[test]
        fn event_order_is_monotone(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut sim: Sim<Vec<u64>> = Sim::new();
            let mut world: Vec<u64> = Vec::new();
            for t in &times {
                sim.schedule_at(SimTime::from_nanos(*t), |w: &mut Vec<u64>, s: &mut Sim<Vec<u64>>| {
                    w.push(s.now().as_nanos());
                });
            }
            sim.run(&mut world);
            prop_assert_eq!(world.len(), times.len());
            for pair in world.windows(2) {
                prop_assert!(pair[0] <= pair[1]);
            }
        }

        /// run_until never advances the clock past the deadline while events
        /// remain, and executes exactly the events at or before it.
        #[test]
        fn run_until_deadline_boundary(times in proptest::collection::vec(0u64..1_000, 1..100), cut in 0u64..1_000) {
            let mut sim: Sim<u32> = Sim::new();
            let mut world: u32 = 0;
            for t in &times {
                sim.schedule_at(SimTime::from_nanos(*t), |w: &mut u32, _: &mut Sim<u32>| *w += 1);
            }
            let deadline = SimTime::from_nanos(cut);
            let executed = sim.run_until(&mut world, deadline);
            let expected = times.iter().filter(|t| **t <= cut).count() as u64;
            prop_assert_eq!(executed, expected);
            prop_assert!(sim.now() <= deadline);
        }

        /// TimeWeighted mean always lies within [min, max].
        #[test]
        fn time_weighted_mean_bounded(values in proptest::collection::vec(0.0f64..100.0, 2..50)) {
            let mut tw = TimeWeighted::new();
            for (i, v) in values.iter().enumerate() {
                tw.set(SimTime::from_secs(i as u64), *v);
            }
            tw.finish(SimTime::from_secs(values.len() as u64));
            let mean = tw.mean().unwrap();
            prop_assert!(mean >= tw.min().unwrap() - 1e-9);
            prop_assert!(mean <= tw.max().unwrap() + 1e-9);
        }

        /// Histogram quantiles are monotone in q.
        #[test]
        fn histogram_quantiles_monotone(samples in proptest::collection::vec(1e-6f64..1e3, 1..300)) {
            let mut h = Histogram::for_latency();
            for s in &samples {
                h.record(*s);
            }
            let qs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99];
            let vals: Vec<f64> = qs.iter().map(|q| h.quantile(*q).unwrap()).collect();
            for pair in vals.windows(2) {
                prop_assert!(pair[0] <= pair[1] + 1e-12);
            }
        }

        /// RNG streams are reproducible: same pool+name ⇒ same sequence.
        #[test]
        fn rng_streams_reproducible(seed in any::<u64>(), name in "[a-z]{1,12}") {
            use rand::Rng;
            let pool = RngPool::new(seed);
            let a: Vec<u64> = pool.stream(&name).sample_iter(rand::distributions::Standard).take(4).collect();
            let b: Vec<u64> = pool.stream(&name).sample_iter(rand::distributions::Standard).take(4).collect();
            prop_assert_eq!(a, b);
            let mut s = pool.stream(&name);
            let _ = s.gen::<u64>();
        }
    }
}
