//! # gpunion-des — discrete-event simulation kernel
//!
//! The foundation of the GPUnion reproduction: a deterministic
//! discrete-event simulator with a nanosecond virtual clock, cancellable
//! timers, named reproducible RNG streams, and the statistics collectors the
//! paper's evaluation metrics are computed from.
//!
//! Everything above this crate — the campus network, GPU servers, container
//! runtime, provider agents, and the central scheduler — advances by
//! scheduling closures on a [`Sim`].
//!
//! ## Determinism contract
//!
//! * Events at equal timestamps fire in scheduling order.
//! * All randomness flows through [`RngPool`] streams derived from one master
//!   seed, so runs are bit-reproducible and baselines can be compared on
//!   identical traces.

pub mod event;
pub mod join;
pub mod pool;
pub mod ratelimit;
pub mod reference;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
mod wheel;

pub use event::{EventId, Never, TypedEvent};
pub use join::{drain_order, JoinPoint};
pub use pool::WorkerPool;
pub use ratelimit::TokenBucket;
pub use reference::{HeapEventId, HeapSim};
pub use rng::{chance, exponential, log_normal, RngPool};
pub use sim::Sim;
pub use stats::{Histogram, Online, TimeWeighted};
pub use time::{SimDuration, SimTime};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// One step of the equivalence workload driven against both queues.
    #[derive(Debug, Clone)]
    enum Op {
        /// Near-horizon event (exercises wheel levels 0–3).
        Schedule { dt: u64 },
        /// Far-future event (exercises the overflow heap + promotion).
        ScheduleFar { dt: u64 },
        /// Event whose handler schedules a follow-up (insert-during-fire).
        Chained { dt: u64, child_dt: u64 },
        /// Cancel one previously returned id (fired, pending, or repeat).
        Cancel { pick: usize },
        /// Bounded run with a relative deadline.
        RunUntil { dt: u64 },
        /// Fire exactly one event.
        Step,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // The vendored prop_oneof! picks uniformly; repeated arms bias the
        // mix toward scheduling so runs stay event-rich.
        prop_oneof![
            (0u64..1 << 20).prop_map(|dt| Op::Schedule { dt }),
            (0u64..1 << 20).prop_map(|dt| Op::Schedule { dt }),
            (0u64..64).prop_map(|dt| Op::Schedule { dt }),
            (1u64 << 41..1 << 45).prop_map(|dt| Op::ScheduleFar { dt }),
            (0u64..1 << 14, 0u64..1 << 14).prop_map(|(dt, child_dt)| Op::Chained { dt, child_dt }),
            any::<u64>().prop_map(|pick| Op::Cancel {
                pick: pick as usize
            }),
            any::<u64>().prop_map(|pick| Op::Cancel {
                pick: pick as usize
            }),
            (0u64..1 << 21).prop_map(|dt| Op::RunUntil { dt }),
            (0u64..1 << 21).prop_map(|dt| Op::RunUntil { dt }),
            Just(Op::Step),
        ]
    }

    /// Fire log: (event label, fire time).
    type Log = Vec<(u64, u64)>;
    /// Labels ≥ this mark chained children (scheduled mid-fire).
    const CHILD: u64 = 1 << 32;

    fn recorder_new(label: u64) -> impl FnOnce(&mut Log, &mut Sim<Log>) {
        move |w, s| w.push((label, s.now().as_nanos()))
    }
    fn recorder_ref(label: u64) -> impl FnOnce(&mut Log, &mut HeapSim<Log>) {
        move |w, s| w.push((label, s.now().as_nanos()))
    }

    proptest! {
        /// The slab + timer-wheel [`Sim`] is observationally identical to the
        /// frozen heap-backed [`HeapSim`] oracle under random interleavings
        /// of schedule / far-schedule / chained-schedule / cancel /
        /// `run_until` / `step`: same fire logs (so the exact `(time, seq)`
        /// FIFO tie-break), same clock, same executed counts. `cancel`
        /// return values match wherever the old semantics were sound; for
        /// already-fired ids — the old leak — the new queue must refuse, and
        /// `pending()` must equal the exact live count throughout.
        #[test]
        fn wheel_matches_heap_oracle(ops in proptest::collection::vec(op_strategy(), 1..60)) {
            let mut sim: Sim<Log> = Sim::new();
            let mut oracle: HeapSim<Log> = HeapSim::new();
            let (mut wn, mut wo): (Log, Log) = (Vec::new(), Vec::new());
            // Parallel id tables: (label, new id, oracle id, is chain parent).
            let mut ids: Vec<(u64, EventId, HeapEventId, bool)> = Vec::new();
            let mut label = 0u64;
            let mut cancelled_ok = 0usize;
            let mut cancelled_labels = std::collections::HashSet::new();
            for op in ops {
                match op {
                    Op::Schedule { dt } | Op::ScheduleFar { dt } => {
                        let l = label;
                        label += 1;
                        let at = sim.now() + SimDuration::from_nanos(dt);
                        let a = sim.schedule_at(at, recorder_new(l));
                        let b = oracle.schedule_at(at, recorder_ref(l));
                        ids.push((l, a, b, false));
                    }
                    Op::Chained { dt, child_dt } => {
                        let l = label;
                        label += 1;
                        let at = sim.now() + SimDuration::from_nanos(dt);
                        let d = SimDuration::from_nanos(child_dt);
                        let a = sim.schedule_at(at, move |w: &mut Log, s: &mut Sim<Log>| {
                            w.push((l, s.now().as_nanos()));
                            s.schedule_in(d, recorder_new(l + CHILD));
                        });
                        let b = oracle.schedule_at(at, move |w: &mut Log, s: &mut HeapSim<Log>| {
                            w.push((l, s.now().as_nanos()));
                            s.schedule_in(d, recorder_ref(l + CHILD));
                        });
                        ids.push((l, a, b, true));
                    }
                    Op::Cancel { pick } => {
                        if ids.is_empty() {
                            continue;
                        }
                        let (l, a, b, _) = ids[pick % ids.len()];
                        let fired = wn.iter().any(|(fl, _)| *fl == l);
                        let r_new = sim.cancel(a);
                        let r_ref = oracle.cancel(b);
                        if fired || cancelled_labels.contains(&l) {
                            // Retired ids: the old queue could still answer
                            // `true` here (cancel-after-fire leaks into the
                            // side-table; re-cancel after the entry popped
                            // re-inserts) — the warts this PR fixes. The new
                            // queue must refuse.
                            prop_assert!(!r_new, "cancel of retired id {l} must fail");
                        } else {
                            // Genuinely live: both must cancel it.
                            prop_assert!(r_new, "cancel of live id {l} must succeed");
                            prop_assert!(r_ref, "oracle refused a live id {l}");
                            cancelled_labels.insert(l);
                        }
                        cancelled_ok += usize::from(r_new);
                    }
                    Op::RunUntil { dt } => {
                        let deadline = sim.now() + SimDuration::from_nanos(dt);
                        let n = sim.run_until(&mut wn, deadline);
                        let m = oracle.run_until(&mut wo, deadline);
                        prop_assert_eq!(n, m, "run_until executed counts diverged");
                    }
                    Op::Step => {
                        prop_assert_eq!(sim.step(&mut wn), oracle.step(&mut wo));
                    }
                }
                prop_assert_eq!(sim.now(), oracle.now());
                prop_assert_eq!(&wn, &wo);
                // Every fired chain parent scheduled exactly one child.
                let chain_parents = wn
                    .iter()
                    .filter(|(fl, _)| *fl < CHILD && ids.iter().any(|(l, _, _, c)| l == fl && *c))
                    .count();
                let scheduled = label as usize + chain_parents;
                prop_assert_eq!(
                    sim.pending(),
                    scheduled - wn.len() - cancelled_ok,
                    "pending() must be the exact live count"
                );
            }
            sim.run(&mut wn);
            oracle.run(&mut wo);
            prop_assert_eq!(&wn, &wo);
            prop_assert_eq!(sim.now(), oracle.now());
            prop_assert_eq!(sim.events_executed(), oracle.events_executed());
            prop_assert_eq!(sim.pending(), 0usize);
        }
    }

    proptest! {
        /// Events always execute in non-decreasing time order, regardless of
        /// the order they were scheduled in.
        #[test]
        fn event_order_is_monotone(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut sim: Sim<Vec<u64>> = Sim::new();
            let mut world: Vec<u64> = Vec::new();
            for t in &times {
                sim.schedule_at(SimTime::from_nanos(*t), |w: &mut Vec<u64>, s: &mut Sim<Vec<u64>>| {
                    w.push(s.now().as_nanos());
                });
            }
            sim.run(&mut world);
            prop_assert_eq!(world.len(), times.len());
            for pair in world.windows(2) {
                prop_assert!(pair[0] <= pair[1]);
            }
        }

        /// run_until never advances the clock past the deadline while events
        /// remain, and executes exactly the events at or before it.
        #[test]
        fn run_until_deadline_boundary(times in proptest::collection::vec(0u64..1_000, 1..100), cut in 0u64..1_000) {
            let mut sim: Sim<u32> = Sim::new();
            let mut world: u32 = 0;
            for t in &times {
                sim.schedule_at(SimTime::from_nanos(*t), |w: &mut u32, _: &mut Sim<u32>| *w += 1);
            }
            let deadline = SimTime::from_nanos(cut);
            let executed = sim.run_until(&mut world, deadline);
            let expected = times.iter().filter(|t| **t <= cut).count() as u64;
            prop_assert_eq!(executed, expected);
            prop_assert!(sim.now() <= deadline);
        }

        /// TimeWeighted mean always lies within [min, max].
        #[test]
        fn time_weighted_mean_bounded(values in proptest::collection::vec(0.0f64..100.0, 2..50)) {
            let mut tw = TimeWeighted::new();
            for (i, v) in values.iter().enumerate() {
                tw.set(SimTime::from_secs(i as u64), *v);
            }
            tw.finish(SimTime::from_secs(values.len() as u64));
            let mean = tw.mean().unwrap();
            prop_assert!(mean >= tw.min().unwrap() - 1e-9);
            prop_assert!(mean <= tw.max().unwrap() + 1e-9);
        }

        /// Histogram quantiles are monotone in q.
        #[test]
        fn histogram_quantiles_monotone(samples in proptest::collection::vec(1e-6f64..1e3, 1..300)) {
            let mut h = Histogram::for_latency();
            for s in &samples {
                h.record(*s);
            }
            let qs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99];
            let vals: Vec<f64> = qs.iter().map(|q| h.quantile(*q).unwrap()).collect();
            for pair in vals.windows(2) {
                prop_assert!(pair[0] <= pair[1] + 1e-12);
            }
        }

        /// RNG streams are reproducible: same pool+name ⇒ same sequence.
        #[test]
        fn rng_streams_reproducible(seed in any::<u64>(), name in "[a-z]{1,12}") {
            use rand::Rng;
            let pool = RngPool::new(seed);
            let a: Vec<u64> = pool.stream(&name).sample_iter(rand::distributions::Standard).take(4).collect();
            let b: Vec<u64> = pool.stream(&name).sample_iter(rand::distributions::Standard).take(4).collect();
            prop_assert_eq!(a, b);
            let mut s = pool.stream(&name);
            let _ = s.gen::<u64>();
        }
    }
}
