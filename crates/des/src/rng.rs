//! Deterministic random-number streams.
//!
//! Every stochastic component in the simulation (trace generator, fault
//! injector, provider behaviour models…) draws from its own named stream
//! derived from a single master seed. Adding a new consumer therefore never
//! perturbs the draws seen by existing ones — a property the reproduction
//! relies on when comparing GPUnion against baselines on *identical*
//! workload traces.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// splitmix64 — the standard seed-spreading finalizer (Steele et al.).
/// Used to derive independent stream seeds from (master, name-hash).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a stream name, for seed derivation only (not security).
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A factory for independent, reproducible RNG streams.
#[derive(Debug, Clone)]
pub struct RngPool {
    master: u64,
}

impl RngPool {
    /// Create a pool from a master seed.
    pub fn new(master_seed: u64) -> Self {
        RngPool {
            master: master_seed,
        }
    }

    /// Derive the RNG stream for `name`. The same (seed, name) pair always
    /// yields an identical stream.
    pub fn stream(&self, name: &str) -> SmallRng {
        let seed = splitmix64(self.master ^ splitmix64(fnv1a(name)));
        SmallRng::seed_from_u64(seed)
    }

    /// Derive a stream from a name and numeric discriminator (e.g. per-node).
    pub fn stream_n(&self, name: &str, n: u64) -> SmallRng {
        let seed = splitmix64(self.master ^ splitmix64(fnv1a(name).wrapping_add(splitmix64(n))));
        SmallRng::seed_from_u64(seed)
    }

    /// The master seed this pool was built from.
    pub fn master_seed(&self) -> u64 {
        self.master
    }
}

/// Draw from an exponential distribution with the given rate (events per
/// unit). Used for Poisson arrival processes (job arrivals, provider
/// interruptions). Returns the inter-arrival gap.
pub fn exponential(rng: &mut impl Rng, rate_per_unit: f64) -> f64 {
    assert!(rate_per_unit > 0.0, "rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate_per_unit
}

/// Draw from a log-normal distribution parameterised by the *median* and a
/// multiplicative spread sigma (in log-space). Session durations and job
/// sizes in campus traces are heavy-tailed; log-normal is the conventional
/// fit.
pub fn log_normal(rng: &mut impl Rng, median: f64, sigma: f64) -> f64 {
    // Box-Muller transform.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    median * (sigma * z).exp()
}

/// Bernoulli draw.
pub fn chance(rng: &mut impl Rng, p: f64) -> bool {
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let pool = RngPool::new(42);
        let a: Vec<u32> = pool
            .stream("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = pool
            .stream("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let pool = RngPool::new(42);
        let a: Vec<u32> = pool
            .stream("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = pool
            .stream("y")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<u32> = RngPool::new(1)
            .stream("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = RngPool::new(2)
            .stream("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn numeric_discriminators_are_independent() {
        let pool = RngPool::new(7);
        let a: Vec<u32> = pool
            .stream_n("node", 0)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = pool
            .stream_n("node", 1)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = RngPool::new(9).stream("exp");
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn log_normal_median_close() {
        let mut rng = RngPool::new(9).stream("ln");
        let mut v: Vec<f64> = (0..10_001)
            .map(|_| log_normal(&mut rng, 30.0, 0.8))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((median - 30.0).abs() / 30.0 < 0.1, "median {median}");
    }

    #[test]
    fn chance_edges() {
        let mut rng = RngPool::new(1).stream("c");
        assert!(!chance(&mut rng, 0.0));
        assert!(!chance(&mut rng, -1.0));
        assert!(chance(&mut rng, 1.0));
        assert!(chance(&mut rng, 2.0));
    }
}
