//! Join point: the quiescence primitive that makes worker-lane actors
//! DES-visible in a deterministic order.
//!
//! The simulation kernel is single-threaded and deterministic; subsystems
//! that fan work out to worker threads (the scheduler's directory-shard
//! actors) must re-join the simulated world without letting OS scheduling
//! leak into any observable order. The contract here is the standard
//! single-producer sequence pair:
//!
//! * the **producer** (the DES-side actor) counts how many intents it has
//!   sent down a lane — a plain local `u64`, never shared;
//! * the **consumer** (the worker owning the lane) applies intents in FIFO
//!   order and publishes its progress through a [`JoinPoint`] with a
//!   release store;
//! * before the producer reads any state the lane guards, it calls
//!   [`JoinPoint::wait`] with its own sent count. Once that returns, every
//!   effect of every sent intent is visible (acquire/release pairing), and
//!   the lane is idle until the producer sends again.
//!
//! Because each lane applies its own intents in send order and the
//! producer quiesces *every* lane before reading, the observable state at
//! a join point is a pure function of the intent streams — independent of
//! thread count, scheduling, or the order lanes happen to finish in.
//! [`drain_order`] produces seeded permutations of lane indices so tests
//! can prove that last property by joining (and gathering replies) in
//! adversarial orders.

use std::sync::atomic::{AtomicU64, Ordering};

/// One lane's applied-intent counter: the consumer side of a
/// sent/applied sequence pair (see the module docs for the protocol).
#[derive(Debug, Default)]
pub struct JoinPoint {
    applied: AtomicU64,
}

impl JoinPoint {
    /// A lane with nothing applied yet.
    pub const fn new() -> Self {
        JoinPoint {
            applied: AtomicU64::new(0),
        }
    }

    /// Publish that every intent up to `upto` (cumulative count) has been
    /// applied. Consumer side; release ordering makes all effects of
    /// those intents visible to a [`Self::wait`] that observes the count.
    pub fn mark(&self, upto: u64) {
        self.applied.store(upto, Ordering::Release);
    }

    /// Applied count (acquire).
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    /// Has the lane caught up with a producer that sent `sent` intents?
    pub fn is_quiescent(&self, sent: u64) -> bool {
        self.applied() >= sent
    }

    /// Block (spin briefly, then yield) until the lane has applied `sent`
    /// intents. The common case — the lane is already idle — is a single
    /// acquire load.
    pub fn wait(&self, sent: u64) {
        let mut spins = 0u32;
        while !self.is_quiescent(sent) {
            spins += 1;
            if spins < 16 {
                std::hint::spin_loop();
            } else {
                // On oversubscribed hosts the worker needs the core;
                // yielding beats burning the quantum.
                std::thread::yield_now();
            }
        }
    }
}

/// A seeded permutation of `0..lanes`: the order a test harness joins
/// lanes (and gathers their replies) in. SplitMix64-driven Fisher–Yates,
/// so the same seed always produces the same schedule — interleaving
/// tests stay reproducible while covering adversarial arrival orders.
pub fn drain_order(seed: u64, lanes: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..lanes).collect();
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..order.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn quiescent_when_caught_up() {
        let jp = JoinPoint::new();
        assert!(jp.is_quiescent(0));
        assert!(!jp.is_quiescent(3));
        jp.mark(3);
        assert!(jp.is_quiescent(3));
        jp.wait(3); // returns immediately
        assert_eq!(jp.applied(), 3);
    }

    #[test]
    fn wait_observes_worker_progress() {
        let jp = Arc::new(JoinPoint::new());
        let worker = {
            let jp = Arc::clone(&jp);
            std::thread::spawn(move || {
                for i in 1..=1000u64 {
                    jp.mark(i);
                }
            })
        };
        jp.wait(1000);
        assert!(jp.is_quiescent(1000));
        worker.join().unwrap();
    }

    #[test]
    fn drain_order_is_a_reproducible_permutation() {
        for lanes in [0usize, 1, 2, 7, 16] {
            for seed in [0u64, 1, 0xDEAD_BEEF] {
                let a = drain_order(seed, lanes);
                let b = drain_order(seed, lanes);
                assert_eq!(a, b, "same seed ⇒ same schedule");
                let mut sorted = a.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..lanes).collect::<Vec<_>>(), "permutation");
            }
        }
        // Different seeds actually shuffle (not a fixed identity).
        assert_ne!(drain_order(1, 16), drain_order(2, 16));
    }
}
