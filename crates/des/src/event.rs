//! Typed events and the generation-stamped event slab.
//!
//! Every scheduled event lives in a slot of an `EventSlab`; the timer
//! wheel holds only small copyable `(time, seq, slot, gen)` records. An
//! [`EventId`] is a `(slot, generation)` pair: cancelling is an O(1) slot
//! invalidation (bump the generation, free the slot), and a stale wheel
//! record is detected by a generation mismatch when it surfaces — no
//! side-table, no leak, and `pending()` is exact.
//!
//! The payload distinguishes the hot recurring kinds from one-off scenario
//! actions:
//!
//! * [`TypedEvent`] values (`Payload::Typed`) are plain enum data fired by
//!   value — the warm schedule→fire path for pump wakes, periodic timers,
//!   and harness injections performs **zero heap allocations** (pinned by
//!   `tests/alloc.rs`).
//! * `Payload::Once` is the boxed-closure fallback, API-compatible with the
//!   old simulator.
//! * `Payload::Every` holds a periodic `FnMut` action plus its period; each
//!   firing re-schedules the *same* box, so periodic timers no longer rebox
//!   per tick.

use crate::sim::Sim;
use crate::time::SimDuration;

/// Identifier for a scheduled event, used to cancel pending timers.
///
/// A generation-stamped slab slot: ids of fired or cancelled events go
/// stale (the slot's generation advances) and are rejected by
/// [`Sim::cancel`] in O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    pub(crate) slot: u32,
    pub(crate) gen: u32,
}

/// A typed simulation event: plain data fired by value.
///
/// Implement this on an enum of your world's hot recurring event kinds and
/// schedule values with [`Sim::schedule_typed_at`]; the warm path allocates
/// nothing. Worlds that only use the boxed-closure API leave the parameter
/// at its default, the uninhabited [`Never`].
pub trait TypedEvent<W>: Sized {
    /// Consume the event, mutating the world and/or scheduling follow-ups.
    fn fire(self, world: &mut W, sim: &mut Sim<W, Self>);

    /// Static label for per-kind fired counters
    /// ([`Sim::profile_events`](crate::Sim::profile_events)). The default
    /// lumps every typed event under one bucket; worlds with hot event
    /// enums override it per variant so profiles show where the event
    /// budget goes.
    fn kind(&self) -> &'static str {
        "typed"
    }
}

/// The uninhabited default event type: `Sim<W>` (no second parameter) is a
/// purely closure-driven simulator, exactly like the old heap-backed one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Never {}

impl<W> TypedEvent<W> for Never {
    fn fire(self, _world: &mut W, _sim: &mut Sim<W, Self>) {
        match self {}
    }
}

/// A one-off boxed event closure.
pub(crate) type OnceAction<W, E> = Box<dyn FnOnce(&mut W, &mut Sim<W, E>)>;
/// A periodic boxed event action; re-armed while it returns `true`.
pub(crate) type EveryAction<W, E> = Box<dyn FnMut(&mut W, &mut Sim<W, E>) -> bool>;

/// What a slab slot holds while its event is pending.
pub(crate) enum Payload<W, E> {
    /// A typed event value — the allocation-free hot path.
    Typed(E),
    /// One-off boxed closure (the compatibility fallback).
    Once(OnceAction<W, E>),
    /// Periodic action; re-armed with the same box while it returns `true`.
    Every {
        action: EveryAction<W, E>,
        period: SimDuration,
    },
}

struct Slot<W, E> {
    /// Advances every time the slot is freed (fire or cancel); an id or
    /// wheel record whose stamp disagrees is stale.
    gen: u32,
    payload: Option<Payload<W, E>>,
}

/// Slab of pending-event payloads with a free list; slots are reused, so
/// the steady-state schedule→fire cycle touches no allocator.
pub(crate) struct EventSlab<W, E> {
    slots: Vec<Slot<W, E>>,
    free: Vec<u32>,
    live: usize,
}

impl<W, E> EventSlab<W, E> {
    pub(crate) fn new() -> Self {
        EventSlab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live (pending) events — exact, by construction.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Store a payload, returning its `(slot, generation)` id.
    pub(crate) fn insert(&mut self, payload: Payload<W, E>) -> EventId {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.payload.is_none());
            s.payload = Some(payload);
            EventId { slot, gen: s.gen }
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                payload: Some(payload),
            });
            EventId { slot, gen: 0 }
        }
    }

    /// Is the `(slot, gen)` stamp still the live incarnation of its slot?
    pub(crate) fn is_live(&self, slot: u32, gen: u32) -> bool {
        self.slots[slot as usize].gen == gen
    }

    /// Take the payload out and retire the slot (generation bump + free
    /// list). Returns `None` if the stamp is stale.
    pub(crate) fn take(&mut self, slot: u32, gen: u32) -> Option<Payload<W, E>> {
        let s = &mut self.slots[slot as usize];
        if s.gen != gen {
            return None;
        }
        let payload = s.payload.take().expect("live slot has a payload");
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        Some(payload)
    }
}
