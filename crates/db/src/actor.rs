//! The SystemDb write-queue actor (DESIGN.md §3b).
//!
//! §5.2 warns that "beyond 200 nodes, heartbeat monitoring and database
//! contention could become bottlenecks". Earlier revisions *modelled* that
//! wall with a closed-form M/M/1 formula ([`crate::contention`]); this
//! module makes it **emergent**: the database is an actor owning
//! [`SystemDb`] + WAL behind a bounded inbox of typed [`WriteIntent`]s.
//! Writers fire-and-forget an intent; the single-server queue drains one
//! intent per (stochastic) service time, and a write's latency is simply
//! when its turn comes — real queue depth, not a formula. The formula
//! survives as the validation oracle: the tests at the bottom drive the
//! actor with Poisson traffic and assert the emergent sojourn time tracks
//! `ContentionModel::transaction_latency` below the knee and blows up past
//! it.
//!
//! The actor is passive like every other component (DESIGN.md §1): the
//! embedding turn loop calls [`DbActor::next_wake`] / [`DbActor::advance`]
//! exactly as it does for the coordinator's timers, so intents complete as
//! ordinary DES events and no new scheduling machinery is needed.

use crate::store::{JobState, NodeRecord, NodeState, QueueDiscipline, SystemDb};
use gpunion_des::{exponential, Online, SimDuration, SimTime};
use gpunion_protocol::{JobId, NodeUid, UserId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// A typed write transaction bound for the system database.
///
/// Everything that mutates [`SystemDb`] travels as one of these; readers
/// use the snapshot accessors ([`DbActor::state`]) and never hold
/// references across a turn.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteIntent {
    /// Insert or replace a node row (registration).
    UpsertNode(NodeRecord),
    /// Flip a node's liveness state.
    SetNodeState(NodeUid, NodeState),
    /// Heartbeat status write: refresh the node's `last_seen` column.
    /// Sheddable — the next heartbeat carries fresher data anyway.
    NodeSeen(NodeUid),
    /// Insert a job row and enqueue it as pending.
    SubmitJob {
        /// Job id (assigned by the coordinator).
        job: JobId,
        /// Submission time recorded in the row.
        submitted_at: SimTime,
        /// Dispatch priority.
        priority: u8,
        /// Submitting user (fair-share accounting key).
        user: UserId,
        /// Requested demand (VRAM bytes × GPUs) charged to the user's
        /// fair-share tag under [`crate::QueueDiscipline::WeightedFairShare`].
        demand: u64,
    },
    /// Set a user's fair-share weight (weighted max-min currency; only
    /// observable under [`crate::QueueDiscipline::WeightedFairShare`]).
    SetUserWeight {
        /// The user.
        user: UserId,
        /// Relative weight (0 is clamped to 1).
        weight: u64,
    },
    /// Update a job's lifecycle state.
    SetJobState(JobId, JobState),
    /// Remove a job from the pending queue (dispatched or cancelled).
    TakePending(JobId),
    /// Re-enqueue a displaced job at the back of its priority class.
    RequeueJob(JobId),
    /// Record an allocation (job leaves pending).
    Allocate {
        /// The job.
        job: JobId,
        /// Hosting node.
        node: NodeUid,
        /// GPU indices bound on that node.
        gpu_indices: Vec<u8>,
        /// Allocation time recorded in the row.
        at: SimTime,
    },
    /// Remove an allocation (job finished or torn down).
    Deallocate(JobId),
}

/// Write-queue actor parameters.
#[derive(Debug, Clone, Copy)]
pub struct DbActorConfig {
    /// Mean service time of one write transaction (row update + fsync).
    /// Matches [`crate::ContentionModel::default`] so the oracle comparison
    /// is like-for-like.
    pub mean_service_time: SimDuration,
    /// Inbox bound. Sheddable intents submitted past this depth are
    /// dropped (and counted). Critical intents are never dropped: writers
    /// probe [`DbActor::would_block`] and defer their own turn while the
    /// inbox is at bound — the DES analogue of a blocking database client
    /// (admissions past the bound are counted, never shed).
    pub inbox_capacity: usize,
    /// Pending-queue ordering discipline. `Fifo` (default) reproduces the
    /// pre-fair-share order bit-exactly.
    pub discipline: QueueDiscipline,
}

impl Default for DbActorConfig {
    fn default() -> Self {
        DbActorConfig {
            // 12 ms per write: row update + WAL fsync on commodity SSD.
            mean_service_time: SimDuration::from_millis(12),
            inbox_capacity: 1024,
            discipline: QueueDiscipline::Fifo,
        }
    }
}

/// A queued write: accepted at `submitted`, applies at `applies_at`.
#[derive(Debug)]
struct QueuedWrite {
    submitted: SimTime,
    applies_at: SimTime,
    intent: WriteIntent,
}

/// The database actor: [`SystemDb`] + WAL behind a bounded write queue.
///
/// Single-server FIFO: an intent submitted at `t` begins service at
/// `max(t, busy_until)` and completes one exponential service draw later.
/// [`DbActor::submit`] returns that emergent sojourn time, which is what
/// callers quote as "database transaction latency" — the §5.2 quantity.
#[derive(Debug)]
pub struct DbActor {
    db: SystemDb,
    config: DbActorConfig,
    rng: SmallRng,
    inbox: VecDeque<QueuedWrite>,
    /// When the write currently in (or last to finish) service completes.
    busy_until: SimTime,
    /// Queued intents that can add pending jobs (SubmitJob / RequeueJob).
    /// A scheduling pass that runs while one is in flight cannot see the
    /// job yet, so the pass re-arms while this is non-zero.
    queued_enqueues: usize,
    depth_peak: usize,
    applied: u64,
    shed: u64,
    /// Critical intents admitted while the inbox was already at its bound.
    /// A writer that honours [`DbActor::would_block`] keeps this at zero up
    /// to the handful of writes a single deferred turn may still commit.
    over_bound: u64,
    sojourn: Online,
}

impl DbActor {
    /// An empty database behind an idle write queue. `seed` drives the
    /// service-time draws (deterministic given submission order).
    pub fn new(config: DbActorConfig, seed: u64) -> Self {
        DbActor {
            db: SystemDb::with_discipline(config.discipline),
            config,
            rng: SmallRng::seed_from_u64(seed),
            inbox: VecDeque::new(),
            busy_until: SimTime::ZERO,
            queued_enqueues: 0,
            depth_peak: 0,
            applied: 0,
            shed: 0,
            over_bound: 0,
            sojourn: Online::new(),
        }
    }

    /// Read snapshot of the tables. Valid only within the current turn —
    /// callers must not hold it across [`DbActor::advance`].
    pub fn state(&self) -> &SystemDb {
        &self.db
    }

    /// Writes queued but not yet applied.
    pub fn depth(&self) -> usize {
        self.inbox.len()
    }

    /// In-flight writes that will add pending jobs once applied
    /// ([`WriteIntent::SubmitJob`] / [`WriteIntent::RequeueJob`]). While
    /// non-zero, a scheduling pass has more queue than it can see.
    pub fn pending_enqueues(&self) -> usize {
        self.queued_enqueues
    }

    /// Deepest the queue has been since the last telemetry reset.
    pub fn depth_peak(&self) -> usize {
        self.depth_peak
    }

    /// Writes applied to the tables so far.
    pub fn applied_writes(&self) -> u64 {
        self.applied
    }

    /// Sheddable writes dropped because the inbox was full.
    pub fn shed_writes(&self) -> u64 {
        self.shed
    }

    /// Whether a critical write submitted now would over-fill the bounded
    /// inbox. Critical intents are never dropped, so admission control is
    /// the *caller's* job: a writer that sees `true` must defer its turn
    /// (re-arm a timer and retry once a slot frees) instead of submitting —
    /// the DES-visible analogue of a blocking database client. The probe is
    /// how the coordinator actor implements critical-write backpressure.
    pub fn would_block(&self) -> bool {
        self.inbox.len() >= self.config.inbox_capacity
    }

    /// Critical intents admitted while [`DbActor::would_block`] was already
    /// `true`. A single deferred turn may still commit a couple of writes
    /// past the bound (it cannot tear its own transaction in half), so this
    /// stays within a small constant of zero under a well-behaved caller —
    /// the inbox-bound tests pin that.
    pub fn over_bound_writes(&self) -> u64 {
        self.over_bound
    }

    /// Sojourn-time statistics (submit → apply, in seconds) since the last
    /// telemetry reset. This is the measured counterpart of
    /// [`crate::ContentionModel::transaction_latency`].
    pub fn sojourn(&self) -> &Online {
        &self.sojourn
    }

    /// Clear the latency/backlog telemetry (steady-state measurements
    /// after a warm-up phase). The queue contents are untouched.
    pub fn reset_telemetry(&mut self) {
        self.depth_peak = self.inbox.len();
        self.shed = 0;
        self.over_bound = 0;
        self.sojourn = Online::new();
    }

    /// Latency a write submitted at `now` would see: residual backlog plus
    /// one mean service time. Used to pace work that must observe its own
    /// preceding writes (e.g. arming a scheduling pass).
    pub fn write_latency_estimate(&self, now: SimTime) -> SimDuration {
        self.busy_until.since(now) + self.config.mean_service_time
    }

    /// When the write at the head of the queue completes.
    pub fn next_wake(&self) -> Option<SimTime> {
        self.inbox.front().map(|w| w.applies_at)
    }

    fn service_draw(&mut self) -> SimDuration {
        let rate = 1.0 / self.config.mean_service_time.as_secs_f64();
        SimDuration::from_secs_f64(exponential(&mut self.rng, rate))
    }

    /// Enqueue a critical write. Returns the emergent sojourn time (queue
    /// wait + service) the write will experience. Critical intents are
    /// never dropped; callers are expected to probe
    /// [`DbActor::would_block`] first and defer their turn when the inbox
    /// is at bound (admissions past it are counted in
    /// [`DbActor::over_bound_writes`]).
    pub fn submit(&mut self, now: SimTime, intent: WriteIntent) -> SimDuration {
        if self.inbox.len() >= self.config.inbox_capacity {
            self.over_bound += 1;
        }
        let start = self.busy_until.max(now);
        let applies_at = start + self.service_draw();
        self.busy_until = applies_at;
        if matches!(
            intent,
            WriteIntent::SubmitJob { .. } | WriteIntent::RequeueJob(_)
        ) {
            self.queued_enqueues += 1;
        }
        self.inbox.push_back(QueuedWrite {
            submitted: now,
            applies_at,
            intent,
        });
        self.depth_peak = self.depth_peak.max(self.inbox.len());
        let latency = applies_at.since(now);
        self.sojourn.record(latency.as_secs_f64());
        latency
    }

    /// Enqueue a sheddable write (heartbeat/status traffic). Returns
    /// `None` — and drops the intent — when the inbox is at capacity;
    /// this is the backpressure the §5.2 experiment measures.
    pub fn try_submit(&mut self, now: SimTime, intent: WriteIntent) -> Option<SimDuration> {
        if self.inbox.len() >= self.config.inbox_capacity {
            self.shed += 1;
            return None;
        }
        Some(self.submit(now, intent))
    }

    /// Apply every write whose service completed by `now`. Returns how
    /// many were applied. The embedding turn loop calls this before any
    /// reads at the same instant, so a turn observes all of its due
    /// writes.
    pub fn advance(&mut self, now: SimTime) -> usize {
        let mut n = 0;
        while let Some(w) = self.inbox.front() {
            if w.applies_at > now {
                break;
            }
            let w = self.inbox.pop_front().expect("just peeked");
            if matches!(
                w.intent,
                WriteIntent::SubmitJob { .. } | WriteIntent::RequeueJob(_)
            ) {
                self.queued_enqueues -= 1;
            }
            Self::apply(&mut self.db, w.submitted, w.intent);
            self.applied += 1;
            n += 1;
        }
        n
    }

    fn apply(db: &mut SystemDb, submitted: SimTime, intent: WriteIntent) {
        match intent {
            WriteIntent::UpsertNode(rec) => db.upsert_node(rec),
            WriteIntent::SetNodeState(uid, state) => {
                db.set_node_state(uid, state);
            }
            WriteIntent::NodeSeen(uid) => {
                db.record_heartbeat(uid, submitted);
            }
            WriteIntent::SubmitJob {
                job,
                submitted_at,
                priority,
                user,
                demand,
            } => db.submit_job_for(job, submitted_at, priority, user, demand),
            WriteIntent::SetUserWeight { user, weight } => {
                db.set_user_weight(user, weight);
            }
            WriteIntent::SetJobState(job, state) => {
                db.set_job_state(job, state);
            }
            WriteIntent::TakePending(job) => {
                db.take_pending(job);
            }
            WriteIntent::RequeueJob(job) => {
                db.requeue_job(job);
            }
            WriteIntent::Allocate {
                job,
                node,
                gpu_indices,
                at,
            } => db.allocate(job, node, gpu_indices, at),
            WriteIntent::Deallocate(job) => {
                db.deallocate(job);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn writes_apply_after_service_delay_in_order() {
        let mut a = DbActor::new(DbActorConfig::default(), 7);
        let l1 = a.submit(
            t(1),
            WriteIntent::SubmitJob {
                job: JobId(1),
                submitted_at: t(1),
                priority: 1,
                user: UserId::SYSTEM,
                demand: 0,
            },
        );
        let l2 = a.submit(
            t(1),
            WriteIntent::SubmitJob {
                job: JobId(2),
                submitted_at: t(1),
                priority: 1,
                user: UserId::SYSTEM,
                demand: 0,
            },
        );
        assert!(l2 > l1, "second write queues behind the first");
        // Nothing visible before the service completes.
        a.advance(t(1));
        assert_eq!(a.state().pending_count(), 0);
        assert_eq!(a.depth(), 2);
        // Both visible once their completions pass.
        a.advance(t(1) + l2);
        assert_eq!(a.state().pending_count(), 2);
        assert_eq!(a.depth(), 0);
        assert_eq!(a.applied_writes(), 2);
    }

    #[test]
    fn next_wake_tracks_head_of_queue() {
        let mut a = DbActor::new(DbActorConfig::default(), 7);
        assert_eq!(a.next_wake(), None);
        let l = a.submit(t(2), WriteIntent::NodeSeen(NodeUid(1)));
        assert_eq!(a.next_wake(), Some(t(2) + l));
        a.advance(t(2) + l);
        assert_eq!(a.next_wake(), None);
    }

    #[test]
    fn sheddable_writes_drop_at_capacity() {
        let mut a = DbActor::new(
            DbActorConfig {
                inbox_capacity: 2,
                ..Default::default()
            },
            7,
        );
        assert!(a
            .try_submit(t(1), WriteIntent::NodeSeen(NodeUid(1)))
            .is_some());
        assert!(a
            .try_submit(t(1), WriteIntent::NodeSeen(NodeUid(2)))
            .is_some());
        assert!(a
            .try_submit(t(1), WriteIntent::NodeSeen(NodeUid(3)))
            .is_none());
        assert_eq!(a.shed_writes(), 1);
        // Critical writes are never shed.
        a.submit(
            t(1),
            WriteIntent::SubmitJob {
                job: JobId(1),
                submitted_at: t(1),
                priority: 1,
                user: UserId::SYSTEM,
                demand: 0,
            },
        );
        assert_eq!(a.depth(), 3);
        assert_eq!(a.depth_peak(), 3);
    }

    #[test]
    fn latency_estimate_covers_backlog() {
        let mut a = DbActor::new(DbActorConfig::default(), 7);
        let idle = a.write_latency_estimate(t(1));
        assert_eq!(idle, a.config.mean_service_time);
        let mut last = SimDuration::ZERO;
        for i in 0..50 {
            last = a.submit(t(1), WriteIntent::NodeSeen(NodeUid(i)));
        }
        // A new write waits behind all fifty.
        assert!(a.write_latency_estimate(t(1)) > last - a.config.mean_service_time);
    }

    #[test]
    fn heartbeat_write_refreshes_last_seen() {
        let mut a = DbActor::new(DbActorConfig::default(), 7);
        let rec = NodeRecord {
            uid: NodeUid(9),
            hostname: "ws-9".into(),
            gpu_count: 1,
            registered_at: t(0),
            last_seen: t(0),
            state: NodeState::Active,
        };
        let l1 = a.submit(t(1), WriteIntent::UpsertNode(rec));
        a.advance(t(1) + l1);
        let l2 = a.submit(t(5), WriteIntent::NodeSeen(NodeUid(9)));
        a.advance(t(5) + l2);
        assert_eq!(a.state().node(NodeUid(9)).unwrap().last_seen, t(5));
    }

    #[test]
    fn would_block_tracks_the_bound_and_over_admissions_are_counted() {
        let mut a = DbActor::new(
            DbActorConfig {
                inbox_capacity: 2,
                ..Default::default()
            },
            7,
        );
        assert!(!a.would_block());
        let submit = |a: &mut DbActor, j: u64| {
            a.submit(
                t(1),
                WriteIntent::SubmitJob {
                    job: JobId(j),
                    submitted_at: t(1),
                    priority: 1,
                    user: UserId::SYSTEM,
                    demand: 0,
                },
            )
        };
        submit(&mut a, 1);
        assert!(!a.would_block());
        submit(&mut a, 2);
        assert!(a.would_block(), "at the bound a critical write must defer");
        assert_eq!(a.over_bound_writes(), 0, "honouring the probe is free");
        // A caller that ignores the probe is tolerated (never dropped)
        // but the over-admission is visible.
        let l = submit(&mut a, 3);
        assert_eq!(a.over_bound_writes(), 1);
        assert_eq!(a.depth(), 3);
        // Draining past the bound re-opens admission.
        a.advance(t(1) + l);
        assert!(!a.would_block());
        assert_eq!(a.state().pending_count(), 3, "nothing critical was shed");
    }

    // ---- the M/M/1 validation oracle -----------------------------------
    //
    // `ContentionModel::transaction_latency` used to BE the latency; now
    // it predicts what the queue should produce. Drive the actor with
    // Poisson arrivals (exponential interarrivals) so the arrival process
    // matches the model's assumptions, and compare mean sojourn times.

    fn mm1_emergent_mean(rho: f64, seed: u64, samples: u64) -> f64 {
        let config = DbActorConfig {
            // Effectively unbounded: shedding would bias the mean down.
            inbox_capacity: usize::MAX,
            ..Default::default()
        };
        let s = config.mean_service_time.as_secs_f64();
        let lambda = rho / s;
        let mut actor = DbActor::new(config, seed);
        let mut arrivals = SmallRng::seed_from_u64(seed ^ 0xA11);
        let mut now = SimTime::ZERO;
        for i in 0..samples {
            now += SimDuration::from_secs_f64(exponential(&mut arrivals, lambda));
            actor.advance(now);
            actor.submit(now, WriteIntent::NodeSeen(NodeUid(i)));
        }
        actor.sojourn().mean().expect("samples recorded")
    }

    #[test]
    fn emergent_latency_tracks_mm1_below_knee() {
        let model = crate::ContentionModel::default();
        let s = model.service_time.as_secs_f64();
        for rho in [0.2, 0.5] {
            let predicted = model.transaction_latency(rho / s).as_secs_f64();
            let measured = mm1_emergent_mean(rho, 42, 40_000);
            let err = (measured - predicted).abs() / predicted;
            assert!(
                err < 0.15,
                "rho={rho}: emergent {measured:.4}s vs M/M/1 {predicted:.4}s (err {err:.3})"
            );
        }
    }

    #[test]
    fn emergent_latency_exhibits_the_knee() {
        let low = mm1_emergent_mean(0.3, 42, 40_000);
        let hot = mm1_emergent_mean(0.9, 42, 40_000);
        // M/M/1 predicts 7×; require a clear blow-up without pinning the
        // stochastic tail.
        assert!(
            hot > 4.0 * low,
            "no knee: sojourn {hot:.4}s at rho=0.9 vs {low:.4}s at rho=0.3"
        );
    }

    /// Seed-randomized variant (loose bounds): the oracle holds for any
    /// seed, not just the pinned one. The vendored proptest does not
    /// shrink; failures print the drawn seed and reproduce exactly.
    #[test]
    fn emergent_latency_tracks_mm1_across_seeds() {
        let model = crate::ContentionModel::default();
        let s = model.service_time.as_secs_f64();
        let predicted = model.transaction_latency(0.3 / s).as_secs_f64();
        let mut seeds = SmallRng::seed_from_u64(0xDB);
        for _ in 0..5 {
            let seed: u64 = seeds.gen();
            let measured = mm1_emergent_mean(0.3, seed, 30_000);
            let err = (measured - predicted).abs() / predicted;
            assert!(
                err < 0.30,
                "seed {seed}: emergent {measured:.4}s vs M/M/1 {predicted:.4}s"
            );
        }
    }
}
