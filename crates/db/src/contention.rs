//! Database contention model — the validation oracle.
//!
//! §5.2: "the central coordinator handles up to 50 nodes with sub-second
//! scheduling latency. However, beyond 200 nodes, heartbeat monitoring and
//! database contention could become bottlenecks." The database is a single
//! shared resource; heartbeat writes and scheduling transactions queue on
//! it. An M/M/1 waiting-time model captures the knee: latency is flat while
//! utilization is low and explodes as the write rate approaches the service
//! rate.
//!
//! This formula used to *be* the latency the coordinator paid. Since the
//! DbActor split (DESIGN.md §3b) latency is **emergent** from the actor's
//! real write queue ([`crate::actor`]); nothing on a behavioural path calls
//! [`ContentionModel::transaction_latency`] anymore. It survives as the
//! oracle the actor is regression-tested against: under Poisson traffic the
//! emergent sojourn time must track this curve below the knee and blow up
//! past it (`actor::tests::emergent_latency_*`).

use gpunion_des::SimDuration;
use serde::{Deserialize, Serialize};

/// Contention model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionModel {
    /// Mean service time of one write transaction (row update + fsync).
    pub service_time: SimDuration,
    /// Latency cap once saturated (requests time out rather than queueing
    /// forever).
    pub saturation_cap: SimDuration,
}

impl Default for ContentionModel {
    fn default() -> Self {
        ContentionModel {
            // 12 ms per write: row update + WAL fsync on commodity SSD.
            service_time: SimDuration::from_millis(12),
            saturation_cap: SimDuration::from_secs(30),
        }
    }
}

impl ContentionModel {
    /// Expected sojourn time (wait + service) of one transaction when
    /// writes arrive at `write_rate_hz`. M/M/1: `T = s / (1 − ρ)`.
    /// At ρ ≥ 1 the cap applies.
    pub fn transaction_latency(&self, write_rate_hz: f64) -> SimDuration {
        let s = self.service_time.as_secs_f64();
        let rho = write_rate_hz * s;
        if rho >= 0.999 {
            return self.saturation_cap;
        }
        let t = s / (1.0 - rho);
        SimDuration::from_secs_f64(t).min(self.saturation_cap)
    }

    /// Utilization of the database at a write rate.
    pub fn utilization(&self, write_rate_hz: f64) -> f64 {
        write_rate_hz * self.service_time.as_secs_f64()
    }

    /// The write rate produced by `n_nodes` heartbeating every
    /// `heartbeat_period` (each heartbeat is one status write) plus
    /// `extra_hz` of scheduling/monitoring traffic.
    pub fn heartbeat_write_rate(
        n_nodes: usize,
        heartbeat_period: SimDuration,
        extra_hz: f64,
    ) -> f64 {
        n_nodes as f64 / heartbeat_period.as_secs_f64() + extra_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_flat_at_low_load() {
        let m = ContentionModel::default();
        let idle = m.transaction_latency(0.0);
        let light = m.transaction_latency(5.0); // ρ = 0.06
        assert_eq!(idle, m.service_time);
        assert!(light < m.service_time * 2);
    }

    #[test]
    fn latency_explodes_near_saturation() {
        let m = ContentionModel::default();
        // ρ = 0.96 ⇒ 25× service time.
        let hot = m.transaction_latency(80.0);
        assert!(hot > m.service_time * 20, "{hot}");
        // Beyond saturation: capped.
        assert_eq!(m.transaction_latency(200.0), m.saturation_cap);
    }

    #[test]
    fn paper_scalability_shape() {
        // 50 nodes @ 5 s heartbeats + 2 Hz scheduler traffic: sub-second.
        let m = ContentionModel::default();
        let rate50 = ContentionModel::heartbeat_write_rate(50, SimDuration::from_secs(5), 2.0);
        assert!(m.transaction_latency(rate50).as_secs_f64() < 0.05);
        // 200 nodes: utilization over 50 %, latency rising.
        let rate200 = ContentionModel::heartbeat_write_rate(200, SimDuration::from_secs(5), 8.0);
        assert!(m.utilization(rate200) > 0.5);
        // 400 nodes: saturated or near-saturated.
        let rate400 = ContentionModel::heartbeat_write_rate(400, SimDuration::from_secs(5), 16.0);
        assert!(m.utilization(rate400) > 1.0);
        assert_eq!(m.transaction_latency(rate400), m.saturation_cap);
    }

    #[test]
    fn latency_monotone_in_rate() {
        let m = ContentionModel::default();
        let mut last = SimDuration::ZERO;
        for hz in [0.0, 10.0, 20.0, 40.0, 60.0, 80.0, 83.0] {
            let t = m.transaction_latency(hz);
            assert!(t >= last, "{hz} Hz: {t} < {last}");
            last = t;
        }
    }
}
