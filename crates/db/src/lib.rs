//! # gpunion-db — the coordinator's system database
//!
//! "State persistence is handled through a centralized database that
//! maintains node registrations, resource allocations, and historical
//! monitoring data" (§3.2). Three pieces:
//!
//! * [`wal`] — checksummed write-ahead log with torn-tail recovery.
//! * [`store`] — typed tables (nodes, jobs, allocations) plus the pending
//!   priority queue the round-robin scheduler consumes (§3.5).
//! * [`actor`] — the write-queue actor (DESIGN.md §3b): every mutation is
//!   a typed [`WriteIntent`] through a bounded inbox, so §5.2's write
//!   latency is emergent from real queue depth.
//! * [`contention`] — the M/M/1 formula, demoted from mechanism to
//!   validation oracle for the actor's emergent latency.

pub mod actor;
pub mod contention;
pub mod store;
pub mod wal;

pub use actor::{DbActor, DbActorConfig, WriteIntent};
pub use contention::ContentionModel;
pub use store::{
    AllocationRecord, JobRecord, JobState, NodeRecord, NodeState, QueueDiscipline, SystemDb,
};
pub use wal::{crc32, Lsn, Recovery, Wal};
