//! # gpunion-db — the coordinator's system database
//!
//! "State persistence is handled through a centralized database that
//! maintains node registrations, resource allocations, and historical
//! monitoring data" (§3.2). Three pieces:
//!
//! * [`wal`] — checksummed write-ahead log with torn-tail recovery.
//! * [`store`] — typed tables (nodes, jobs, allocations) plus the pending
//!   priority queue the round-robin scheduler consumes (§3.5).
//! * [`contention`] — the M/M/1 latency model behind §5.2's scalability
//!   limits (fine at 50 nodes, knee near 200).

pub mod contention;
pub mod store;
pub mod wal;

pub use contention::ContentionModel;
pub use store::{AllocationRecord, JobRecord, JobState, NodeRecord, NodeState, SystemDb};
pub use wal::{crc32, Lsn, Recovery, Wal};
