//! Write-ahead log with checksummed, length-prefixed records.
//!
//! The coordinator's database persists "node registrations, resource
//! allocations, and historical monitoring data" (§3.2). Durability here is
//! modelled over an in-memory byte log (the simulator has no real disk), but
//! the format is the real thing: `[len u32][crc32 u32][payload]` records,
//! torn-tail tolerance on recovery, and corruption detection — the
//! properties a WAL actually has to provide.

use std::fmt;

/// Log sequence number of an appended record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lsn(pub u64);

/// Recovery outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Intact records, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of trailing garbage discarded (torn final write), if any.
    pub torn_tail_bytes: usize,
    /// Whether a checksum mismatch was found (corruption mid-log stops
    /// recovery at the last good record).
    pub corruption_detected: bool,
}

/// CRC-32 (IEEE 802.3, reflected) — implemented inline; small and standard.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The write-ahead log.
#[derive(Debug, Default, Clone)]
pub struct Wal {
    buf: Vec<u8>,
    next_lsn: u64,
}

/// Maximum record payload (1 MiB — DB rows are small).
const MAX_RECORD: usize = 1 << 20;

/// Append error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordTooLarge {
    /// Attempted size.
    pub size: usize,
}

impl fmt::Display for RecordTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WAL record of {} bytes exceeds {MAX_RECORD}", self.size)
    }
}

impl std::error::Error for RecordTooLarge {}

impl Wal {
    /// Fresh empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Records appended so far.
    pub fn record_count(&self) -> u64 {
        self.next_lsn
    }

    /// Append one record, returning its LSN.
    pub fn append(&mut self, payload: &[u8]) -> Result<Lsn, RecordTooLarge> {
        if payload.len() > MAX_RECORD {
            return Err(RecordTooLarge {
                size: payload.len(),
            });
        }
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
        let lsn = Lsn(self.next_lsn);
        self.next_lsn += 1;
        Ok(lsn)
    }

    /// Raw bytes (what would be on disk) — for recovery tests and snapshots.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Recover records from raw log bytes. A short/torn tail is tolerated
    /// (reported, not fatal); a checksum mismatch stops recovery at the last
    /// good record and flags corruption.
    pub fn recover(bytes: &[u8]) -> Recovery {
        let mut records = Vec::new();
        let mut pos = 0usize;
        loop {
            if pos + 8 > bytes.len() {
                return Recovery {
                    torn_tail_bytes: bytes.len() - pos,
                    records,
                    corruption_detected: false,
                };
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if len > MAX_RECORD {
                // Garbage length ⇒ treat as corruption.
                return Recovery {
                    records,
                    torn_tail_bytes: 0,
                    corruption_detected: true,
                };
            }
            if pos + 8 + len > bytes.len() {
                return Recovery {
                    torn_tail_bytes: bytes.len() - pos,
                    records,
                    corruption_detected: false,
                };
            }
            let payload = &bytes[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                return Recovery {
                    records,
                    torn_tail_bytes: 0,
                    corruption_detected: true,
                };
            }
            records.push(payload.to_vec());
            pos += 8 + len;
        }
    }

    /// Truncate the log after a snapshot (compaction).
    pub fn truncate(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_and_recover_all() {
        let mut wal = Wal::new();
        let payloads: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; (i as usize + 1) * 3]).collect();
        for p in &payloads {
            wal.append(p).unwrap();
        }
        let rec = Wal::recover(wal.bytes());
        assert_eq!(rec.records, payloads);
        assert_eq!(rec.torn_tail_bytes, 0);
        assert!(!rec.corruption_detected);
        assert_eq!(wal.record_count(), 10);
    }

    #[test]
    fn torn_tail_tolerated() {
        let mut wal = Wal::new();
        wal.append(b"complete").unwrap();
        wal.append(b"will-be-torn").unwrap();
        let bytes = wal.bytes();
        let torn = &bytes[..bytes.len() - 5];
        let rec = Wal::recover(torn);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0], b"complete");
        assert!(rec.torn_tail_bytes > 0);
        assert!(!rec.corruption_detected);
    }

    #[test]
    fn corruption_detected_and_stops() {
        let mut wal = Wal::new();
        wal.append(b"good-one").unwrap();
        wal.append(b"corrupt-me").unwrap();
        wal.append(b"after").unwrap();
        let mut bytes = wal.bytes().to_vec();
        // Flip a byte inside record 2's payload.
        let pos = 8 + 8 + 8 + 3;
        bytes[pos] ^= 0xFF;
        let rec = Wal::recover(&bytes);
        assert_eq!(rec.records.len(), 1);
        assert!(rec.corruption_detected);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut wal = Wal::new();
        let huge = vec![0u8; MAX_RECORD + 1];
        assert!(wal.append(&huge).is_err());
        assert_eq!(wal.record_count(), 0);
    }

    #[test]
    fn truncate_compacts() {
        let mut wal = Wal::new();
        wal.append(b"x").unwrap();
        assert!(wal.len_bytes() > 0);
        wal.truncate();
        assert_eq!(wal.len_bytes(), 0);
        // LSNs keep increasing after compaction.
        assert_eq!(wal.append(b"y").unwrap(), Lsn(1));
    }

    #[test]
    fn empty_log_recovers_empty() {
        let rec = Wal::recover(&[]);
        assert!(rec.records.is_empty());
        assert!(!rec.corruption_detected);
    }
}
