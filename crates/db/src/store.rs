//! The coordinator's system database: typed tables + the pending-request
//! priority queue.
//!
//! §3.5: allocation works through "a round-robin scheduler (which processes
//! pending resource requests from a priority queue stored in the central
//! database)". This module provides that queue plus the node / job /
//! allocation tables, all WAL-backed so the coordinator can recover its
//! state after a restart.

use crate::wal::Wal;
use gpunion_des::SimTime;
use gpunion_protocol::{JobId, NodeUid, UserId};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Liveness state of a registered node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Heartbeating and accepting work.
    Active,
    /// Provider paused new allocations (existing workloads keep running).
    Paused,
    /// Missed heartbeats / announced departure.
    Unavailable,
    /// Gracefully departed (may return).
    Departed,
}

/// A registered node row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeRecord {
    /// Uid assigned at registration.
    pub uid: NodeUid,
    /// Hostname.
    pub hostname: String,
    /// GPU count (inventory detail lives with the scheduler's directory).
    pub gpu_count: u8,
    /// Registration time.
    pub registered_at: SimTime,
    /// Last heartbeat status write (§3.2 monitoring; refreshed by
    /// [`SystemDb::record_heartbeat`]).
    pub last_seen: SimTime,
    /// Current liveness.
    pub state: NodeState,
}

/// A job row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job id.
    pub job: JobId,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Priority (higher first).
    pub priority: u8,
    /// Submitting user (fair-share accounting key).
    pub user: UserId,
    /// Resource demand proxy charged against the user's share (requested
    /// VRAM bytes × GPUs; the weighted max-min currency).
    pub demand: u64,
    /// Wire-state of the job.
    pub state: JobState,
}

/// Ordering policy of the pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// Priority DESC, then FIFO — the seed behavior, bit-identical goldens.
    #[default]
    Fifo,
    /// Priority DESC, then weighted max-min fair share across users
    /// (start-time fair queuing over the demand proxy), then FIFO.
    WeightedFairShare,
}

/// Per-user fair-share ledger.
#[derive(Debug, Clone)]
struct UserShare {
    /// Relative weight (max-min shares are proportional to this).
    weight: u64,
    /// Virtual start tag handed to this user's next submission: cumulative
    /// charged demand scaled by `TAG_SCALE / weight`.
    vnext: u128,
}

/// Fixed-point scale for virtual-time tags (precision of the
/// demand/weight division).
const TAG_SCALE: u128 = 1_000_000;

/// Job lifecycle as the database sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// In the pending queue.
    Pending,
    /// Placed on a node.
    Allocated,
    /// Finished.
    Completed,
    /// Failed permanently.
    Failed,
    /// Cancelled by user or provider with no requeue.
    Cancelled,
}

/// An allocation row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationRecord {
    /// Job.
    pub job: JobId,
    /// Node the job runs on.
    pub node: NodeUid,
    /// GPU indices bound on that node.
    pub gpu_indices: Vec<u8>,
    /// When the allocation was made.
    pub at: SimTime,
}

/// The system database.
#[derive(Debug, Default)]
pub struct SystemDb {
    nodes: BTreeMap<NodeUid, NodeRecord>,
    jobs: BTreeMap<JobId, JobRecord>,
    allocations: BTreeMap<JobId, AllocationRecord>,
    /// Dispatch order is the natural set order: priority DESC (via
    /// `Reverse`), then the fair-share virtual start tag (always 0 under
    /// [`QueueDiscipline::Fifo`], so Fifo order is exactly priority DESC +
    /// FIFO sequence ASC), then FIFO sequence ASC.
    pending: BTreeSet<(Reverse<u8>, u128, u64, JobId)>,
    /// Each pending job's key, so removal is O(log n) instead of a scan
    /// (the batched scheduling pass dequeues and requeues in bulk).
    pending_pos: HashMap<JobId, (Reverse<u8>, u128, u64)>,
    pending_seq: u64,
    discipline: QueueDiscipline,
    /// Per-user weights + virtual-time ledger (fair-share mode only).
    users: HashMap<UserId, UserShare>,
    wal: Wal,
    /// Write operations performed (contention-model input).
    writes: u64,
}

impl SystemDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty database with an explicit pending-queue discipline.
    pub fn with_discipline(discipline: QueueDiscipline) -> Self {
        SystemDb {
            discipline,
            ..Self::default()
        }
    }

    /// The active pending-queue discipline.
    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// Set a user's fair-share weight (default 1). A weight of 0 is clamped
    /// to 1. Takes effect for subsequent submissions; already-queued jobs
    /// keep their tags.
    pub fn set_user_weight(&mut self, user: UserId, weight: u64) {
        let weight = weight.max(1);
        self.users
            .entry(user)
            .and_modify(|s| s.weight = weight)
            .or_insert(UserShare { weight, vnext: 0 });
        self.writes += 1;
    }

    /// Total write operations (inserts/updates) performed.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// WAL size in bytes.
    pub fn wal_bytes(&self) -> usize {
        self.wal.len_bytes()
    }

    fn log(&mut self, tag: &str, key: u64) {
        // Durability record: tag + key. Payload content is secondary for the
        // simulation; the WAL's framing/recovery machinery is the real part.
        let mut payload = Vec::with_capacity(tag.len() + 8);
        payload.extend_from_slice(tag.as_bytes());
        payload.extend_from_slice(&key.to_le_bytes());
        self.wal.append(&payload).expect("small record");
        self.writes += 1;
    }

    // ---- nodes ----

    /// Insert or replace a node row.
    pub fn upsert_node(&mut self, rec: NodeRecord) {
        self.log("node", rec.uid.0);
        self.nodes.insert(rec.uid, rec);
    }

    /// Fetch a node row.
    pub fn node(&self, uid: NodeUid) -> Option<&NodeRecord> {
        self.nodes.get(&uid)
    }

    /// Set a node's liveness state. Returns false if unknown.
    pub fn set_node_state(&mut self, uid: NodeUid, state: NodeState) -> bool {
        let Some(n) = self.nodes.get_mut(&uid) else {
            return false;
        };
        n.state = state;
        self.writes += 1;
        true
    }

    /// Heartbeat status write: refresh a node's `last_seen` column.
    /// Monitoring churn is not WAL-logged (it needs no durability — the
    /// next heartbeat supersedes it), but it is a write transaction and
    /// counts as one. Returns false if the node is unknown.
    pub fn record_heartbeat(&mut self, uid: NodeUid, at: SimTime) -> bool {
        let Some(n) = self.nodes.get_mut(&uid) else {
            return false;
        };
        n.last_seen = at;
        self.writes += 1;
        true
    }

    /// All nodes in a given state, in uid order. Returns an iterator —
    /// this sits on monitoring paths that must not allocate per call.
    pub fn nodes_in_state(&self, state: NodeState) -> impl Iterator<Item = &NodeRecord> + '_ {
        self.nodes.values().filter(move |n| n.state == state)
    }

    /// Count of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    // ---- jobs + pending queue ----

    /// Insert a job and enqueue it as pending, attributed to the system
    /// user with zero demand (internal submissions; order is FIFO within
    /// the priority class under either discipline).
    pub fn submit_job(&mut self, job: JobId, submitted_at: SimTime, priority: u8) {
        self.submit_job_for(job, submitted_at, priority, UserId::SYSTEM, 0);
    }

    /// Insert a job and enqueue it as pending, charged to `user`'s share.
    /// `demand` is the max-min currency (requested VRAM bytes × GPUs);
    /// ignored under [`QueueDiscipline::Fifo`].
    pub fn submit_job_for(
        &mut self,
        job: JobId,
        submitted_at: SimTime,
        priority: u8,
        user: UserId,
        demand: u64,
    ) {
        self.log("job", job.0);
        self.jobs.insert(
            job,
            JobRecord {
                job,
                submitted_at,
                priority,
                user,
                demand,
                state: JobState::Pending,
            },
        );
        self.enqueue(job, priority, user, demand);
    }

    /// The fair-share virtual start tag for this submission: the user's
    /// cumulative charged demand over weight. Tags are fixed at enqueue
    /// (start-time fair queuing), so queue keys never need rebalancing.
    fn charge_tag(&mut self, user: UserId, demand: u64) -> u128 {
        if self.discipline == QueueDiscipline::Fifo {
            return 0;
        }
        let share = self.users.entry(user).or_insert(UserShare {
            weight: 1,
            vnext: 0,
        });
        let tag = share.vnext;
        share.vnext += demand as u128 * TAG_SCALE / share.weight as u128;
        tag
    }

    fn enqueue(&mut self, job: JobId, priority: u8, user: UserId, demand: u64) {
        // A job can be pending at most once.
        self.dequeue(job);
        let tag = self.charge_tag(user, demand);
        let key = (Reverse(priority), tag, self.pending_seq);
        self.pending_seq += 1;
        self.pending.insert((key.0, key.1, key.2, job));
        self.pending_pos.insert(job, key);
    }

    fn dequeue(&mut self, job: JobId) -> bool {
        match self.pending_pos.remove(&job) {
            Some((p, tag, seq)) => {
                self.pending.remove(&(p, tag, seq, job));
                true
            }
            None => false,
        }
    }

    /// Fetch a job row.
    pub fn job(&self, job: JobId) -> Option<&JobRecord> {
        self.jobs.get(&job)
    }

    /// Number of pending jobs.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Peek the next pending job: highest priority first, then fair-share
    /// tag (Fifo: always 0), then FIFO.
    pub fn peek_pending(&self) -> Option<JobId> {
        self.pending.first().map(|(_, _, _, j)| *j)
    }

    /// Pending jobs in dispatch order (highest priority, then fair-share
    /// tag, then FIFO). The queue's natural order — one in-order walk, no
    /// sorting.
    pub fn pending_in_order(&self) -> Vec<JobId> {
        self.pending.iter().map(|(_, _, _, j)| *j).collect()
    }

    /// Remove a job from the pending queue (it was allocated or cancelled).
    /// Keyed lookup, O(log n). Returns false when it was not pending.
    pub fn take_pending(&mut self, job: JobId) -> bool {
        let removed = self.dequeue(job);
        if removed {
            self.writes += 1;
        }
        removed
    }

    /// Re-enqueue a job (migration after node loss, or an index miss in a
    /// batched pass). Keeps its priority but goes to the back of its class
    /// — under fair share it takes a fresh tag at the user's current
    /// virtual time, so a migrating user is charged again for the re-run
    /// (migration consumes real capacity twice).
    pub fn requeue_job(&mut self, job: JobId) -> bool {
        let Some(rec) = self.jobs.get_mut(&job) else {
            return false;
        };
        rec.state = JobState::Pending;
        let (priority, user, demand) = (rec.priority, rec.user, rec.demand);
        self.allocations.remove(&job);
        self.enqueue(job, priority, user, demand);
        self.log("requeue", job.0);
        true
    }

    /// Update a job's state.
    pub fn set_job_state(&mut self, job: JobId, state: JobState) -> bool {
        let Some(rec) = self.jobs.get_mut(&job) else {
            return false;
        };
        rec.state = state;
        self.writes += 1;
        true
    }

    // ---- allocations ----

    /// Record an allocation (job leaves pending).
    pub fn allocate(&mut self, job: JobId, node: NodeUid, gpu_indices: Vec<u8>, at: SimTime) {
        self.take_pending(job);
        self.set_job_state(job, JobState::Allocated);
        self.log("alloc", job.0);
        self.allocations.insert(
            job,
            AllocationRecord {
                job,
                node,
                gpu_indices,
                at,
            },
        );
    }

    /// The allocation of a job, if placed.
    pub fn allocation(&self, job: JobId) -> Option<&AllocationRecord> {
        self.allocations.get(&job)
    }

    /// Jobs currently allocated on a node, in job-id order. Returns an
    /// iterator — node-loss sweeps call this per lost node and must not
    /// allocate per call.
    pub fn jobs_on_node(&self, node: NodeUid) -> impl Iterator<Item = JobId> + '_ {
        self.allocations
            .values()
            .filter(move |a| a.node == node)
            .map(|a| a.job)
    }

    /// Remove an allocation (job finished or was torn down). Durable:
    /// recovery must not resurrect a freed slot, so the removal is
    /// WAL-logged like the allocation was.
    pub fn deallocate(&mut self, job: JobId) -> bool {
        let existed = self.allocations.remove(&job).is_some();
        if existed {
            self.log("dealloc", job.0);
        }
        existed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn node(uid: u64) -> NodeRecord {
        NodeRecord {
            uid: NodeUid(uid),
            hostname: format!("ws-{uid}"),
            gpu_count: 1,
            registered_at: t(0),
            last_seen: t(0),
            state: NodeState::Active,
        }
    }

    #[test]
    fn node_crud() {
        let mut db = SystemDb::new();
        db.upsert_node(node(1));
        db.upsert_node(node(2));
        assert_eq!(db.node_count(), 2);
        assert_eq!(db.node(NodeUid(1)).unwrap().hostname, "ws-1");
        assert!(db.set_node_state(NodeUid(2), NodeState::Unavailable));
        assert_eq!(db.nodes_in_state(NodeState::Active).count(), 1);
        assert_eq!(db.nodes_in_state(NodeState::Unavailable).count(), 1);
        assert!(!db.set_node_state(NodeUid(9), NodeState::Active));
    }

    #[test]
    fn heartbeat_write_updates_last_seen_only() {
        let mut db = SystemDb::new();
        db.upsert_node(node(1));
        let wal0 = db.wal_bytes();
        let w0 = db.write_count();
        assert!(db.record_heartbeat(NodeUid(1), t(42)));
        assert_eq!(db.node(NodeUid(1)).unwrap().last_seen, t(42));
        assert_eq!(db.write_count(), w0 + 1, "status write counted");
        assert_eq!(db.wal_bytes(), wal0, "monitoring churn is not WAL-logged");
        assert!(!db.record_heartbeat(NodeUid(9), t(42)), "unknown node");
    }

    #[test]
    fn pending_queue_priority_then_fifo() {
        let mut db = SystemDb::new();
        db.submit_job(JobId(1), t(0), 1);
        db.submit_job(JobId(2), t(1), 5);
        db.submit_job(JobId(3), t(2), 1);
        db.submit_job(JobId(4), t(3), 5);
        assert_eq!(
            db.pending_in_order(),
            vec![JobId(2), JobId(4), JobId(1), JobId(3)]
        );
        assert_eq!(db.peek_pending(), Some(JobId(2)));
    }

    #[test]
    fn allocate_removes_from_pending() {
        let mut db = SystemDb::new();
        db.submit_job(JobId(1), t(0), 1);
        assert_eq!(db.pending_count(), 1);
        db.allocate(JobId(1), NodeUid(3), vec![0], t(5));
        assert_eq!(db.pending_count(), 0);
        assert_eq!(db.job(JobId(1)).unwrap().state, JobState::Allocated);
        let a = db.allocation(JobId(1)).unwrap();
        assert_eq!(a.node, NodeUid(3));
        assert_eq!(
            db.jobs_on_node(NodeUid(3)).collect::<Vec<_>>(),
            vec![JobId(1)]
        );
    }

    #[test]
    fn requeue_after_node_loss() {
        let mut db = SystemDb::new();
        db.submit_job(JobId(1), t(0), 3);
        db.allocate(JobId(1), NodeUid(3), vec![0], t(5));
        assert!(db.requeue_job(JobId(1)));
        assert_eq!(db.pending_count(), 1);
        assert_eq!(db.job(JobId(1)).unwrap().state, JobState::Pending);
        assert!(db.allocation(JobId(1)).is_none());
        // Priority preserved.
        assert_eq!(db.peek_pending(), Some(JobId(1)));
    }

    #[test]
    fn requeue_goes_behind_same_priority_peers() {
        let mut db = SystemDb::new();
        db.submit_job(JobId(1), t(0), 1);
        db.submit_job(JobId(2), t(1), 1);
        db.allocate(JobId(1), NodeUid(3), vec![0], t(5));
        db.requeue_job(JobId(1));
        assert_eq!(db.pending_in_order(), vec![JobId(2), JobId(1)]);
    }

    #[test]
    fn take_pending_unknown_is_false() {
        let mut db = SystemDb::new();
        assert!(!db.take_pending(JobId(404)));
        assert!(!db.requeue_job(JobId(404)));
    }

    /// Failure paths must not leave partial state behind: an unknown-job
    /// take/requeue/deallocate is a clean no-op (no write counted, no WAL
    /// growth, no phantom queue entry).
    #[test]
    fn unknown_job_operations_leave_no_trace() {
        let mut db = SystemDb::new();
        db.submit_job(JobId(1), t(0), 1);
        let w0 = db.write_count();
        let wal0 = db.wal_bytes();
        assert!(!db.take_pending(JobId(404)));
        assert!(!db.requeue_job(JobId(404)));
        assert!(!db.deallocate(JobId(404)));
        assert!(!db.set_job_state(JobId(404), JobState::Failed));
        assert_eq!(db.write_count(), w0, "no write counted for no-ops");
        assert_eq!(db.wal_bytes(), wal0, "no WAL growth for no-ops");
        assert_eq!(db.pending_count(), 1, "real queue entry untouched");
    }

    /// WAL byte accounting across the allocation lifecycle: allocate and
    /// deallocate are both durable, and a second deallocate appends
    /// nothing.
    #[test]
    fn wal_accounts_deallocate_once() {
        let mut db = SystemDb::new();
        db.submit_job(JobId(1), t(0), 1);
        db.allocate(JobId(1), NodeUid(3), vec![0], t(5));
        let after_alloc = db.wal_bytes();
        assert!(db.deallocate(JobId(1)));
        let after_dealloc = db.wal_bytes();
        assert!(
            after_dealloc > after_alloc,
            "deallocate must be WAL-logged (recovery must not resurrect the slot)"
        );
        assert!(!db.deallocate(JobId(1)), "already gone");
        assert_eq!(db.wal_bytes(), after_dealloc, "double-free appends nothing");
        assert!(db.jobs_on_node(NodeUid(3)).next().is_none());
    }

    #[test]
    fn requeue_while_pending_does_not_duplicate() {
        let mut db = SystemDb::new();
        db.submit_job(JobId(1), t(0), 1);
        db.submit_job(JobId(2), t(1), 1);
        assert!(db.requeue_job(JobId(1)), "requeue of a pending job");
        assert_eq!(db.pending_count(), 2, "no duplicate entry");
        // It moved behind its peer.
        assert_eq!(db.pending_in_order(), vec![JobId(2), JobId(1)]);
        assert!(db.take_pending(JobId(1)));
        assert!(!db.take_pending(JobId(1)), "single entry to take");
    }

    #[test]
    fn bulk_drain_preserves_dispatch_order() {
        let mut db = SystemDb::new();
        for i in 0..100u64 {
            db.submit_job(JobId(i), t(i), (i % 3) as u8);
        }
        let order = db.pending_in_order();
        assert_eq!(order.len(), 100);
        // Priority classes descend; FIFO inside each class.
        let prio = |j: &JobId| db.job(*j).unwrap().priority;
        for w in order.windows(2) {
            assert!(
                prio(&w[0]) > prio(&w[1]) || (prio(&w[0]) == prio(&w[1]) && w[0].0 < w[1].0),
                "order violated at {w:?}"
            );
        }
        for j in order {
            assert!(db.take_pending(j));
        }
        assert_eq!(db.pending_count(), 0);
    }

    #[test]
    fn writes_counted_and_wal_grows() {
        let mut db = SystemDb::new();
        let w0 = db.write_count();
        db.upsert_node(node(1));
        db.submit_job(JobId(1), t(0), 1);
        db.allocate(JobId(1), NodeUid(1), vec![0], t(1));
        assert!(db.write_count() > w0);
        assert!(db.wal_bytes() > 0);
    }

    #[test]
    fn fair_share_interleaves_users() {
        let mut db = SystemDb::with_discipline(QueueDiscipline::WeightedFairShare);
        // User 1 floods 4 jobs, then user 2 submits 2. Equal weights and
        // demands: the drain must interleave instead of draining user 1
        // first.
        for i in 0..4u64 {
            db.submit_job_for(JobId(i), t(i), 1, UserId(1), 100);
        }
        for i in 4..6u64 {
            db.submit_job_for(JobId(i), t(i), 1, UserId(2), 100);
        }
        let order = db.pending_in_order();
        // Tags: u1 jobs at 0,100,200,300; u2 at 0,100. Merge by (tag, seq):
        // j0(u1,0) j4(u2,0) j1(u1,100) j5(u2,100) j2(u1,200) j3(u1,300).
        assert_eq!(
            order,
            vec![JobId(0), JobId(4), JobId(1), JobId(5), JobId(2), JobId(3)]
        );
    }

    #[test]
    fn fair_share_respects_weights() {
        let mut db = SystemDb::with_discipline(QueueDiscipline::WeightedFairShare);
        db.set_user_weight(UserId(1), 2);
        db.set_user_weight(UserId(2), 1);
        for i in 0..4u64 {
            db.submit_job_for(JobId(i), t(i), 1, UserId(1), 100);
        }
        for i in 4..8u64 {
            db.submit_job_for(JobId(i), t(i), 1, UserId(2), 100);
        }
        // u1 tags: 0,50,100,150; u2 tags: 0,100,200,300. Weight-2 user gets
        // 2 grants per weight-1 grant while both are backlogged.
        assert_eq!(
            db.pending_in_order(),
            vec![
                JobId(0),
                JobId(4),
                JobId(1),
                JobId(2),
                JobId(5),
                JobId(3),
                JobId(6),
                JobId(7)
            ]
        );
    }

    #[test]
    fn fair_share_priority_still_dominates() {
        let mut db = SystemDb::with_discipline(QueueDiscipline::WeightedFairShare);
        db.submit_job_for(JobId(1), t(0), 0, UserId(1), 1);
        db.submit_job_for(JobId(2), t(1), 5, UserId(1), 1_000_000);
        assert_eq!(db.pending_in_order(), vec![JobId(2), JobId(1)]);
    }

    #[test]
    fn fifo_mode_ignores_users_and_demand() {
        let mut db = SystemDb::new();
        db.submit_job_for(JobId(1), t(0), 1, UserId(9), 1 << 40);
        db.submit_job_for(JobId(2), t(1), 1, UserId(1), 1);
        db.submit_job(JobId(3), t(2), 1);
        assert_eq!(db.pending_in_order(), vec![JobId(1), JobId(2), JobId(3)]);
    }
}

#[cfg(test)]
mod fair_share_oracle {
    use super::*;
    use proptest::prelude::*;

    /// Brute-force weighted max-min: repeatedly grant the head-of-line job
    /// of the user with the smallest charged-demand/weight virtual time
    /// (ties: earliest submitted head-of-line job first — the queue's FIFO
    /// sequence), then charge the job's demand to that user. Charging uses
    /// the queue's exact fixed-point step (`demand * TAG_SCALE / weight`
    /// per job) so the comparison is arithmetic-identical, not just
    /// approximately fair. This is the definitional schedule the queue's
    /// start-time tags must reproduce.
    fn oracle_order(jobs: &[(u64, JobId, u64)], weights: &HashMap<UserId, u64>) -> Vec<JobId> {
        // jobs: (user, job, demand), submitted in slice order (so a job's
        // index is its FIFO sequence); per-user FIFO is slice order too.
        let mut heads: BTreeMap<u64, usize> = BTreeMap::new();
        let mut vtime: BTreeMap<u64, u128> = BTreeMap::new();
        for (user, _, _) in jobs {
            heads.entry(*user).or_insert(0);
            vtime.entry(*user).or_insert(0);
        }
        let user_jobs = |user: u64| -> Vec<(usize, JobId, u64)> {
            jobs.iter()
                .enumerate()
                .filter(|(_, (u, _, _))| *u == user)
                .map(|(seq, (_, j, d))| (seq, *j, *d))
                .collect()
        };
        let mut out = Vec::with_capacity(jobs.len());
        while out.len() < jobs.len() {
            // (vtime, head seq, user, head job, head demand) of the best
            // candidate.
            let mut best: Option<(u128, usize, u64, JobId, u64)> = None;
            for (&user, &head) in &heads {
                let Some(&(seq, job, demand)) = user_jobs(user).get(head) else {
                    continue; // user drained
                };
                let v = vtime[&user];
                if best.is_none() || (v, seq) < (best.unwrap().0, best.unwrap().1) {
                    best = Some((v, seq, user, job, demand));
                }
            }
            let (_, _, user, job, demand) = best.expect("some job remains");
            out.push(job);
            *heads.get_mut(&user).unwrap() += 1;
            let w = *weights.get(&UserId(user)).unwrap_or(&1) as u128;
            *vtime.get_mut(&user).unwrap() += demand as u128 * TAG_SCALE / w;
        }
        out
    }

    proptest! {
        /// The fair-share queue's drain order equals the brute-force
        /// weighted max-min oracle for random (user, weight, demand)
        /// populations — including the single-user degenerate case (the
        /// user range collapses) and all-equal-weight populations.
        #[test]
        fn prop_fair_share_matches_max_min_oracle(
            jobs in proptest::collection::vec((0u64..6, 1u64..1_000), 1..40),
            weights in proptest::collection::vec(1u64..8, 6),
            equal_weights in any::<bool>(),
            single_user in any::<bool>(),
        ) {
            let mut db = SystemDb::with_discipline(QueueDiscipline::WeightedFairShare);
            let mut wmap = HashMap::new();
            for (i, w) in weights.iter().enumerate() {
                let w = if equal_weights { 1 } else { *w };
                db.set_user_weight(UserId(i as u64), w);
                wmap.insert(UserId(i as u64), w);
            }
            let spec: Vec<(u64, JobId, u64)> = jobs
                .iter()
                .enumerate()
                .map(|(i, (user, demand))| {
                    let user = if single_user { 0 } else { *user };
                    (user, JobId(i as u64), *demand)
                })
                .collect();
            for (user, job, demand) in &spec {
                db.submit_job_for(*job, SimTime::from_secs(job.0), 1, UserId(*user), *demand);
            }
            let expected = oracle_order(&spec, &wmap);
            prop_assert_eq!(db.pending_in_order(), expected);
        }

        /// Under Fifo discipline the same populations drain in pure
        /// submission order regardless of users, weights, or demand.
        #[test]
        fn prop_fifo_ignores_fair_share_inputs(
            jobs in proptest::collection::vec((0u64..6, 1u64..1_000), 1..40),
        ) {
            let mut db = SystemDb::new();
            for (i, (user, demand)) in jobs.iter().enumerate() {
                db.submit_job_for(JobId(i as u64), SimTime::from_secs(i as u64), 1, UserId(*user), *demand);
            }
            let expected: Vec<JobId> = (0..jobs.len() as u64).map(JobId).collect();
            prop_assert_eq!(db.pending_in_order(), expected);
        }
    }
}
