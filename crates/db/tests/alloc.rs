//! Allocation discipline of the hot-path queries.
//!
//! `nodes_in_state` and `jobs_on_node` sit on the coordinator's sweep and
//! node-loss paths; they used to build a `Vec` per call. This test pins
//! the fix — both return lazy iterators — by counting real heap
//! allocations around the calls with a counting global allocator. It
//! lives alone in its own test binary so no concurrent test can perturb
//! the counter.

use gpunion_db::{JobState, NodeRecord, NodeState, SystemDb};
use gpunion_des::SimTime;
use gpunion_protocol::{JobId, NodeUid};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[test]
fn state_and_node_queries_do_not_allocate() {
    let mut db = SystemDb::new();
    for uid in 0..64u64 {
        db.upsert_node(NodeRecord {
            uid: NodeUid(uid),
            hostname: format!("ws-{uid}"),
            gpu_count: 1,
            registered_at: SimTime::ZERO,
            last_seen: SimTime::ZERO,
            state: if uid % 2 == 0 {
                NodeState::Active
            } else {
                NodeState::Paused
            },
        });
    }
    for job in 0..64u64 {
        db.submit_job(JobId(job), SimTime::ZERO, 1);
        db.allocate(JobId(job), NodeUid(job % 8), vec![0], SimTime::ZERO);
    }
    // Warm up any lazy statics outside the measured window.
    assert_eq!(db.nodes_in_state(NodeState::Active).count(), 32);
    assert_eq!(db.jobs_on_node(NodeUid(3)).count(), 8);
    assert_eq!(
        db.jobs_on_node(NodeUid(3)).fold(0u64, |acc, j| acc + j.0),
        3 + 11 + 19 + 27 + 35 + 43 + 51 + 59
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let active = db.nodes_in_state(NodeState::Active).count();
    let on_node = db.jobs_on_node(NodeUid(3)).count();
    let sum: u64 = db.jobs_on_node(NodeUid(5)).map(|j| j.0).sum();
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(active, 32);
    assert_eq!(on_node, 8);
    assert!(sum > 0);
    assert_eq!(
        after - before,
        0,
        "hot-path queries allocated {} times per sweep",
        after - before
    );
    // Keep terminal states exercised through the same non-allocating path.
    db.set_job_state(JobId(1), JobState::Completed);
}
