//! # gpunion-agent — the provider agent
//!
//! "Each participating node runs a lightweight agent that implements the
//! provider supremacy model through local control mechanisms and real-time
//! monitoring" (§3.2). The agent here is a passive, event-driven state
//! machine:
//!
//! * [`Agent`] — registration, heartbeats with NVML-style telemetry,
//!   workload lifecycle (pull → verify → start → run → checkpoint →
//!   complete), application-level checkpointing, and the three provider
//!   powers: kill-switch, pause, and graceful/emergency departure.
//! * [`rest`] — the local HTTP control panel (`/kill-switch`, `/pause`,
//!   `/depart`, `/status`, `/metrics`).
//!
//! The agent returns [`Action`]s instead of touching the network, so the
//! identical logic drives both the simulated campus and real TCP sockets.

pub mod agent;
pub mod config;
pub mod rest;

pub use agent::{Action, Agent, AgentPhase, FlowPeer, FlowPurpose};
pub use config::{generate_machine_id, AgentConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use gpunion_container::standard_catalogue;
    use gpunion_des::SimTime;
    use gpunion_gpu::{GpuModel, GpuServer, ServerSpec};
    use gpunion_protocol::{
        AuthToken, Control, DepartureMode, DispatchSpec, ExecMode, HttpRequest, JobId, KillReason,
        Message, Method, NodeUid, UserId, Work, WorkloadState,
    };
    use gpunion_workload::{ModelClass, TrainingJobSpec, TrainingRun};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn new_agent() -> Agent {
        let mut rng = SmallRng::seed_from_u64(1);
        let config = AgentConfig::new("ws-1", &mut rng);
        let server = GpuServer::new(ServerSpec::workstation("ws-1", GpuModel::Rtx3090));
        Agent::new(config, server)
    }

    fn registered_agent() -> (
        Agent,
        gpunion_container::ImageRegistry,
        Vec<gpunion_container::ImageRef>,
    ) {
        let (registry, refs) = standard_catalogue();
        let mut agent = new_agent();
        let actions = agent.start_registration(t(0));
        assert_eq!(actions.len(), 1);
        let ack = Control::RegisterAck {
            node: NodeUid(7),
            token: AuthToken([9; 16]),
            heartbeat_period_ms: 5_000,
        }
        .into();
        let actions = agent.handle_message(t(1), ack, &registry);
        assert!(matches!(
            actions[0],
            Action::Send(Message::Control(Control::Heartbeat { .. }))
        ));
        assert_eq!(agent.phase(), AgentPhase::Active);
        (agent, registry, refs)
    }

    fn dispatch_spec(refs: &[gpunion_container::ImageRef], job: u64) -> DispatchSpec {
        DispatchSpec {
            job: JobId(job),
            image_repo: refs[0].repository.clone(),
            image_tag: refs[0].tag.clone(),
            image_digest: refs[0].digest.0,
            gpus: 1,
            gpu_mem_bytes: 6 << 30,
            min_cc: None,
            mode: ExecMode::Batch {
                entrypoint: vec!["python".into(), "train.py".into()],
            },
            checkpoint_interval_secs: 600,
            storage_nodes: vec![],
            state_bytes_hint: 100 << 20,
            restore_from_seq: None,
            priority: 1,
            user: UserId::SYSTEM,
        }
    }

    /// Run an agent forward through its timers until `until`, collecting
    /// actions; completes pending verifications after each wake.
    fn drive(
        agent: &mut Agent,
        registry: &gpunion_container::ImageRegistry,
        until: SimTime,
    ) -> Vec<Action> {
        let mut all = Vec::new();
        while let Some(at) = agent.next_wake() {
            if at > until {
                break;
            }
            all.extend(agent.on_wake(at));
            all.extend(agent.complete_verifications(at, registry));
        }
        all
    }

    #[test]
    fn registration_handshake() {
        let (agent, _, _) = registered_agent();
        assert_eq!(agent.uid(), Some(NodeUid(7)));
        assert_eq!(agent.token(), AuthToken([9; 16]));
    }

    #[test]
    fn heartbeats_fire_periodically() {
        let (mut agent, registry, _) = registered_agent();
        let actions = drive(&mut agent, &registry, t(26));
        let beats = actions
            .iter()
            .filter(|a| matches!(a, Action::Send(Message::Control(Control::Heartbeat { .. }))))
            .count();
        // Heartbeats at 6, 11, 16, 21, 26 (first was at ack time).
        assert_eq!(beats, 5);
    }

    #[test]
    fn dispatch_pipeline_reaches_running() {
        let (mut agent, registry, refs) = registered_agent();
        let spec = dispatch_spec(&refs, 42);
        let actions = agent.handle_message(t(2), Work::Dispatch { spec }.into(), &registry);
        // Accepted + image pull flow.
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send(Message::Work(Work::DispatchReply { accepted: true, .. }))
        )));
        let flow = actions.iter().find_map(|a| match a {
            Action::StartFlow {
                bytes,
                purpose,
                inbound,
                ..
            } => Some((*bytes, *purpose, *inbound)),
            _ => None,
        });
        let (bytes, purpose, inbound) = flow.expect("image pull flow");
        assert!(inbound);
        assert!(bytes > 1_000_000_000, "pull is GBs: {bytes}");
        assert!(matches!(purpose, FlowPurpose::ImagePull { job: JobId(42) }));

        // Attach the canonical run, then finish the pull.
        agent.attach_run(
            JobId(42),
            TrainingRun::new(TrainingJobSpec::new(ModelClass::CnnSmall, 50_000)),
        );
        let actions = agent.on_flow_done(t(60), purpose, true, &registry);
        assert!(actions.is_empty(), "verify timer armed instead");
        // Verification + container start.
        let actions = drive(&mut agent, &registry, t(90));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send(Message::Work(Work::WorkloadUpdate {
                status: gpunion_protocol::WorkloadStatus {
                    state: WorkloadState::Running,
                    ..
                },
                ..
            }))
        )));
        assert_eq!(agent.workload_count(), 1);
        // The GPU is now allocated and busy.
        assert!(
            agent
                .server()
                .device(gpunion_gpu::GpuIndex(0))
                .unwrap()
                .used_bytes()
                > 0
        );
    }

    #[test]
    fn dispatch_rejected_when_paused() {
        let (mut agent, registry, refs) = registered_agent();
        agent.set_paused(true);
        let actions = agent.handle_message(
            t(2),
            Work::Dispatch {
                spec: dispatch_spec(&refs, 1),
            }
            .into(),
            &registry,
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send(Message::Work(Work::DispatchReply {
                accepted: false,
                ..
            }))
        )));
    }

    #[test]
    fn dispatch_rejected_without_vram() {
        let (mut agent, registry, refs) = registered_agent();
        let mut spec = dispatch_spec(&refs, 1);
        spec.gpu_mem_bytes = 100 << 30; // > 24 GB
        let actions = agent.handle_message(t(2), Work::Dispatch { spec }.into(), &registry);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send(Message::Work(Work::DispatchReply {
                accepted: false,
                ..
            }))
        )));
        assert_eq!(agent.workload_count(), 0);
    }

    #[test]
    fn kill_switch_frees_everything() {
        let (mut agent, registry, refs) = registered_agent();
        let spec = dispatch_spec(&refs, 5);
        agent.handle_message(t(2), Work::Dispatch { spec }.into(), &registry);
        agent.attach_run(
            JobId(5),
            TrainingRun::new(TrainingJobSpec::new(ModelClass::CnnSmall, 50_000)),
        );
        let purpose = FlowPurpose::ImagePull { job: JobId(5) };
        agent.on_flow_done(t(60), purpose, true, &registry);
        drive(&mut agent, &registry, t(90));

        let req = HttpRequest::new(Method::Post, "/kill-switch");
        let (resp, actions) = rest::handle(&mut agent, t(100), &req);
        assert_eq!(resp.status, 200);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send(Message::Work(Work::WorkloadUpdate {
                status: gpunion_protocol::WorkloadStatus {
                    state: WorkloadState::Killed,
                    ..
                },
                ..
            }))
        )));
        // GPU memory released.
        assert_eq!(
            agent
                .server()
                .device(gpunion_gpu::GpuIndex(0))
                .unwrap()
                .used_bytes(),
            0
        );
    }

    #[test]
    fn graceful_departure_checkpoints_then_leaves() {
        let (mut agent, registry, refs) = registered_agent();
        agent.handle_message(
            t(2),
            Work::Dispatch {
                spec: dispatch_spec(&refs, 9),
            }
            .into(),
            &registry,
        );
        agent.attach_run(
            JobId(9),
            TrainingRun::new(TrainingJobSpec::new(ModelClass::CnnSmall, 500_000)),
        );
        agent.on_flow_done(
            t(60),
            FlowPurpose::ImagePull { job: JobId(9) },
            true,
            &registry,
        );
        drive(&mut agent, &registry, t(90));

        let req = HttpRequest::new(Method::Post, "/depart?mode=graceful");
        let (resp, actions) = rest::handle(&mut agent, t(100), &req);
        assert_eq!(resp.status, 202);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send(Message::Control(Control::DepartureNotice {
                mode: DepartureMode::Graceful { .. },
                ..
            }))
        )));
        assert_eq!(agent.phase(), AgentPhase::Departing);

        // Capture completes (CNN-small: ~1.5 s overhead + serialize).
        let actions = drive(&mut agent, &registry, t(110));
        let upload = actions.iter().find_map(|a| match a {
            Action::StartFlow {
                purpose: FlowPurpose::CheckpointUpload { job, seq },
                bytes,
                ..
            } => Some((*job, *seq, *bytes)),
            _ => None,
        });
        let (job, seq, bytes) = upload.expect("departure checkpoint upload");
        assert_eq!(job, JobId(9));
        assert!(bytes > 0);

        // Upload completes → CheckpointDone + departure finishes.
        let actions = agent.on_flow_done(
            t(120),
            FlowPurpose::CheckpointUpload { job, seq },
            true,
            &registry,
        );
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send(Message::Work(Work::CheckpointDone { .. })))));
        assert!(actions.iter().any(|a| matches!(a, Action::GoOffline)));
        assert_eq!(agent.phase(), AgentPhase::Departed);
    }

    #[test]
    fn emergency_departure_is_immediate() {
        let (mut agent, _registry, _) = registered_agent();
        let req = HttpRequest::new(Method::Post, "/depart?mode=emergency");
        let (resp, actions) = rest::handle(&mut agent, t(50), &req);
        assert_eq!(resp.status, 202);
        assert!(actions.iter().any(|a| matches!(a, Action::GoOffline)));
        assert_eq!(agent.phase(), AgentPhase::Departed);
    }

    #[test]
    fn departure_deadline_kills_stragglers() {
        let (mut agent, registry, refs) = registered_agent();
        // A memory-intensive job would need a long capture.
        let mut spec = dispatch_spec(&refs, 3);
        spec.state_bytes_hint = 14 << 30;
        spec.gpu_mem_bytes = 20 << 30;
        agent.handle_message(t(2), Work::Dispatch { spec }.into(), &registry);
        agent.attach_run(
            JobId(3),
            TrainingRun::new(TrainingJobSpec::new(ModelClass::MemoryIntensive, 500_000)),
        );
        agent.on_flow_done(
            t(60),
            FlowPurpose::ImagePull { job: JobId(3) },
            true,
            &registry,
        );
        drive(&mut agent, &registry, t(120));

        // Depart with a 1-second grace — far too short for a 14 GB capture.
        let actions = agent.depart(t(130), DepartureMode::Graceful { grace_secs: 1 });
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send(Message::Control(Control::DepartureNotice { .. }))
        )));
        let actions = drive(&mut agent, &registry, t(140));
        assert!(
            actions.iter().any(|a| matches!(a, Action::GoOffline)),
            "deadline forces departure"
        );
        assert_eq!(agent.phase(), AgentPhase::Departed);
    }

    #[test]
    fn rest_status_and_metrics() {
        let (mut agent, _, _) = registered_agent();
        let (resp, _) = rest::handle(&mut agent, t(10), &HttpRequest::new(Method::Get, "/status"));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"phase\":\"Active\""), "{body}");
        let (resp, _) = rest::handle(
            &mut agent,
            t(10),
            &HttpRequest::new(Method::Get, "/metrics"),
        );
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("agent_heartbeats_total"), "{body}");
    }

    #[test]
    fn rest_pause_resume_cycle() {
        let (mut agent, _, _) = registered_agent();
        let (resp, actions) =
            rest::handle(&mut agent, t(5), &HttpRequest::new(Method::Post, "/pause"));
        assert_eq!(resp.status, 200);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send(Message::Control(Control::PauseScheduling {
                paused: true,
                ..
            }))
        )));
        assert_eq!(agent.phase(), AgentPhase::Paused);
        let (resp, _) = rest::handle(&mut agent, t(6), &HttpRequest::new(Method::Post, "/resume"));
        assert_eq!(resp.status, 200);
        assert_eq!(agent.phase(), AgentPhase::Active);
    }

    #[test]
    fn rest_rate_limit_429_with_retry_hint() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut config = AgentConfig::new("ws-1", &mut rng);
        config.rest_burst = 2;
        config.rest_rate_per_sec = 1;
        let server = GpuServer::new(ServerSpec::workstation("ws-1", GpuModel::Rtx3090));
        let mut agent = Agent::new(config, server);
        let status = HttpRequest::new(Method::Get, "/status");
        // Burst of 2 admitted; the third in the same instant is shed.
        assert_eq!(rest::handle(&mut agent, t(10), &status).0.status, 200);
        assert_eq!(rest::handle(&mut agent, t(10), &status).0.status, 200);
        let (resp, actions) = rest::handle(&mut agent, t(10), &status);
        assert_eq!(resp.status, 429);
        assert!(actions.is_empty(), "a shed request triggers nothing");
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"retry_after_ms\":1000"), "{body}");
        // One second later the bucket has refilled one token.
        assert_eq!(rest::handle(&mut agent, t(11), &status).0.status, 200);
        assert_eq!(rest::handle(&mut agent, t(11), &status).0.status, 429);
    }

    #[test]
    fn rest_unknown_route_404() {
        let (mut agent, _, _) = registered_agent();
        let (resp, _) = rest::handle(&mut agent, t(5), &HttpRequest::new(Method::Get, "/nope"));
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn rest_depart_requires_mode() {
        let (mut agent, _, _) = registered_agent();
        let (resp, _) = rest::handle(&mut agent, t(5), &HttpRequest::new(Method::Post, "/depart"));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn periodic_checkpoint_cycle_produces_uploads() {
        let (mut agent, registry, refs) = registered_agent();
        let mut spec = dispatch_spec(&refs, 11);
        spec.checkpoint_interval_secs = 60;
        agent.handle_message(t(2), Work::Dispatch { spec }.into(), &registry);
        agent.attach_run(
            JobId(11),
            TrainingRun::new(TrainingJobSpec::new(ModelClass::CnnLarge, 2_000_000)),
        );
        agent.on_flow_done(
            t(30),
            FlowPurpose::ImagePull { job: JobId(11) },
            true,
            &registry,
        );
        drive(&mut agent, &registry, t(40));
        // Two checkpoint intervals later there should be ≥ 2 uploads.
        let actions = drive(&mut agent, &registry, t(40 + 150));
        let uploads: Vec<u64> = actions
            .iter()
            .filter_map(|a| match a {
                Action::StartFlow {
                    purpose: FlowPurpose::CheckpointUpload { seq, .. },
                    ..
                } => Some(*seq),
                _ => None,
            })
            .collect();
        assert!(uploads.len() >= 2, "uploads: {uploads:?}");
        assert_eq!(uploads[0], 1);
    }

    #[test]
    fn job_completion_reports_and_cleans_up() {
        let (mut agent, registry, refs) = registered_agent();
        let mut spec = dispatch_spec(&refs, 21);
        spec.checkpoint_interval_secs = 0; // keep timers simple
        agent.handle_message(t(2), Work::Dispatch { spec }.into(), &registry);
        // Tiny job: finishes in seconds.
        agent.attach_run(
            JobId(21),
            TrainingRun::new(TrainingJobSpec::new(ModelClass::CnnSmall, 10)),
        );
        agent.on_flow_done(
            t(30),
            FlowPurpose::ImagePull { job: JobId(21) },
            true,
            &registry,
        );
        let actions = drive(&mut agent, &registry, t(600));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send(Message::Work(Work::WorkloadUpdate {
                status: gpunion_protocol::WorkloadStatus {
                    state: WorkloadState::Completed,
                    ..
                },
                exit_code: Some(0),
            }))
        )));
        assert_eq!(agent.workload_count(), 0);
        assert_eq!(
            agent
                .server()
                .device(gpunion_gpu::GpuIndex(0))
                .unwrap()
                .used_bytes(),
            0
        );
    }

    #[test]
    fn kill_single_workload_via_rest() {
        let (mut agent, registry, refs) = registered_agent();
        agent.handle_message(
            t(2),
            Work::Dispatch {
                spec: dispatch_spec(&refs, 30),
            }
            .into(),
            &registry,
        );
        agent.attach_run(
            JobId(30),
            TrainingRun::new(TrainingJobSpec::new(ModelClass::CnnSmall, 1_000_000)),
        );
        agent.on_flow_done(
            t(30),
            FlowPurpose::ImagePull { job: JobId(30) },
            true,
            &registry,
        );
        drive(&mut agent, &registry, t(60));
        let (resp, actions) = rest::handle(
            &mut agent,
            t(70),
            &HttpRequest::new(Method::Delete, "/workloads/30"),
        );
        assert_eq!(resp.status, 200);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send(Message::Work(Work::WorkloadUpdate { status, .. }))
                if status.state == WorkloadState::Killed
        )));
        let _ = KillReason::ProviderKillSwitch;
    }

    fn pull_agent(nack_backoff: bool) -> (Agent, gpunion_container::ImageRegistry) {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut config = AgentConfig::new("ws-1", &mut rng);
        config.pull_mode = true;
        config.nack_backoff = nack_backoff;
        let server = GpuServer::new(ServerSpec::workstation("ws-1", GpuModel::Rtx3090));
        let mut agent = Agent::new(config, server);
        let (registry, _) = standard_catalogue();
        agent.start_registration(t(0));
        let ack = Control::RegisterAck {
            node: NodeUid(7),
            token: AuthToken([9; 16]),
            heartbeat_period_ms: 5_000,
        }
        .into();
        let actions = agent.handle_message(t(1), ack, &registry);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::Send(Message::Work(Work::WorkRequest { .. })))),
            "pull-mode boot offers capacity"
        );
        (agent, registry)
    }

    fn count_offers(actions: &[Action]) -> usize {
        actions
            .iter()
            .filter(|a| matches!(a, Action::Send(Message::Work(Work::WorkRequest { .. }))))
            .count()
    }

    #[test]
    fn grant_nack_backoff_schedules_single_reoffer() {
        let (mut agent, registry) = pull_agent(true);
        // Two nacks in quick succession coalesce into one pending re-offer.
        for at in [10, 11] {
            let actions = agent.handle_message(
                t(at),
                Work::GrantNack {
                    node: NodeUid(7),
                    retry_after_ms: 2_500,
                }
                .into(),
                &registry,
            );
            assert_eq!(count_offers(&actions), 0, "the nack itself emits nothing");
        }
        // Nothing re-offers before the hint elapses (heartbeats still fire).
        let actions = drive(&mut agent, &registry, t(12));
        assert_eq!(count_offers(&actions), 0);
        // At t = 10 + 2.5 s the scheduled re-offer fires, exactly once.
        let actions = drive(&mut agent, &registry, t(13));
        assert_eq!(count_offers(&actions), 1);
    }

    #[test]
    fn grant_nack_ignored_when_backoff_disabled() {
        let (mut agent, registry) = pull_agent(false);
        agent.handle_message(
            t(10),
            Work::GrantNack {
                node: NodeUid(7),
                retry_after_ms: 2_500,
            }
            .into(),
            &registry,
        );
        let actions = drive(&mut agent, &registry, t(30));
        assert_eq!(count_offers(&actions), 0, "no re-offer without backoff");
    }

    #[test]
    fn reconnect_resets_identity() {
        let (mut agent, _, _) = registered_agent();
        let actions = agent.reconnect(t(500));
        assert_eq!(agent.phase(), AgentPhase::Registering);
        assert_eq!(agent.uid(), None);
        assert!(matches!(
            actions[0],
            Action::Send(Message::Control(Control::Register { .. }))
        ));
    }

    #[test]
    fn rolled_back_run_extractable_after_kill() {
        let (mut agent, registry, refs) = registered_agent();
        agent.handle_message(
            t(2),
            Work::Dispatch {
                spec: dispatch_spec(&refs, 40),
            }
            .into(),
            &registry,
        );
        agent.attach_run(
            JobId(40),
            TrainingRun::new(TrainingJobSpec::new(ModelClass::CnnSmall, 1_000_000)),
        );
        agent.on_flow_done(
            t(30),
            FlowPurpose::ImagePull { job: JobId(40) },
            true,
            &registry,
        );
        drive(&mut agent, &registry, t(60));
        // Run for a while, checkpoint once.
        let _ = drive(&mut agent, &registry, t(60 + 700));
        let mut kill_actions = Vec::new();
        agent.kill_workload(
            t(800),
            JobId(40),
            KillReason::ProviderKillSwitch,
            &mut kill_actions,
        );
        let run = agent.take_run(JobId(40)).expect("rolled-back run");
        assert_eq!(run.done_iters(), run.checkpointed_iters());
        agent.forget_workload(t(800), JobId(40));
        assert_eq!(agent.workload_count(), 0);
    }
}
