//! The agent's local REST API — the provider's control panel.
//!
//! §3.4: "The agent exposes REST APIs for resource advertisement, workload
//! lifecycle management, and emergency controls while maintaining absolute
//! provider authority through 'kill-switch' functionality."
//!
//! Endpoints:
//!
//! | Method | Path               | Effect                                   |
//! |--------|--------------------|------------------------------------------|
//! | GET    | `/status`          | Agent phase, workload count, GPU summary  |
//! | GET    | `/metrics`         | Prometheus exposition                     |
//! | POST   | `/kill-switch`     | Terminate every guest workload instantly  |
//! | POST   | `/pause`           | Stop accepting new allocations            |
//! | POST   | `/resume`          | Resume accepting                          |
//! | POST   | `/depart?mode=graceful\|emergency` | Leave the platform        |
//! | DELETE | `/workloads/{id}`  | Kill one workload                         |

use crate::agent::{Action, Agent, AgentPhase};
use gpunion_des::SimTime;
use gpunion_protocol::{DepartureMode, HttpRequest, HttpResponse, JobId, KillReason, Method};

/// Dispatch an HTTP request against the agent. Returns the response plus
/// any platform actions the provider's command triggered.
pub fn handle(agent: &mut Agent, now: SimTime, req: &HttpRequest) -> (HttpResponse, Vec<Action>) {
    // Control-panel rate limit (429 with a retry hint when the provider's
    // tooling hammers the API). Configured off by default.
    if let Err(retry_after_ms) = agent.rest_admit(now) {
        return (HttpResponse::too_many_requests(retry_after_ms), Vec::new());
    }
    match (req.method, req.path.as_str()) {
        (Method::Get, "/status") => (status_response(agent, now), Vec::new()),
        (Method::Get, "/metrics") => (
            HttpResponse {
                status: 200,
                reason: "OK",
                body: agent.metrics().render().into_bytes(),
                content_type: "text/plain; version=0.0.4",
            },
            Vec::new(),
        ),
        (Method::Post, "/kill-switch") => {
            let actions = agent.kill_switch(now);
            (
                HttpResponse::ok_json(format!(
                    "{{\"killed\":true,\"remaining_workloads\":{}}}",
                    agent.workload_count()
                )),
                actions,
            )
        }
        (Method::Post, "/pause") => {
            let actions = agent.set_paused(true);
            match agent.phase() {
                AgentPhase::Paused => (HttpResponse::ok_json("{\"paused\":true}"), actions),
                p => (
                    HttpResponse::conflict(&format!("cannot pause in phase {p:?}")),
                    actions,
                ),
            }
        }
        (Method::Post, "/resume") => {
            let actions = agent.set_paused(false);
            match agent.phase() {
                AgentPhase::Active => (HttpResponse::ok_json("{\"paused\":false}"), actions),
                p => (
                    HttpResponse::conflict(&format!("cannot resume in phase {p:?}")),
                    actions,
                ),
            }
        }
        (Method::Post, "/depart") => {
            let mode = match parse_mode(&req.query, agent) {
                Ok(m) => m,
                Err(resp) => return (resp, Vec::new()),
            };
            if matches!(agent.phase(), AgentPhase::Departing | AgentPhase::Departed) {
                return (
                    HttpResponse::conflict("departure already in progress"),
                    Vec::new(),
                );
            }
            let actions = agent.depart(now, mode);
            (
                HttpResponse::accepted(format!("{{\"departing\":\"{:?}\"}}", mode)),
                actions,
            )
        }
        (Method::Delete, path) if path.starts_with("/workloads/") => {
            match path["/workloads/".len()..].parse::<u64>() {
                Ok(id) => {
                    let mut actions = Vec::new();
                    agent.kill_workload(
                        now,
                        JobId(id),
                        KillReason::ProviderKillSwitch,
                        &mut actions,
                    );
                    (HttpResponse::ok_json("{\"killed\":true}"), actions)
                }
                Err(_) => (HttpResponse::bad_request("bad workload id"), Vec::new()),
            }
        }
        _ => (HttpResponse::not_found(), Vec::new()),
    }
}

fn parse_mode(query: &str, agent: &Agent) -> Result<DepartureMode, HttpResponse> {
    for pair in query.split('&') {
        if let Some(("mode", v)) = pair.split_once('=') {
            return match v {
                "graceful" => Ok(DepartureMode::Graceful {
                    grace_secs: agent.config().departure_grace.as_secs() as u32,
                }),
                "emergency" => Ok(DepartureMode::Emergency),
                other => Err(HttpResponse::bad_request(&format!(
                    "unknown departure mode '{other}'"
                ))),
            };
        }
    }
    Err(HttpResponse::bad_request(
        "missing mode=graceful|emergency query parameter",
    ))
}

fn status_response(agent: &mut Agent, now: SimTime) -> HttpResponse {
    let telemetry = agent.server_mut().telemetry(now);
    let gpu_lines: Vec<String> = telemetry
        .iter()
        .enumerate()
        .map(|(i, t)| {
            format!(
                "{{\"gpu\":{i},\"mem_used\":{},\"mem_total\":{},\"util\":{:.2},\"temp_c\":{:.1}}}",
                t.memory_used, t.memory_total, t.utilization, t.temperature_c
            )
        })
        .collect();
    HttpResponse::ok_json(format!(
        "{{\"phase\":\"{:?}\",\"workloads\":{},\"gpus\":[{}]}}",
        agent.phase(),
        agent.workload_count(),
        gpu_lines.join(",")
    ))
}
