//! The provider agent: a passive state machine implementing provider
//! supremacy.
//!
//! The agent owns the node's GPUs and container runtime and mediates between
//! three parties: the **provider** (absolute authority, via the REST API in
//! [`crate::rest`]), the **coordinator** (dispatch/kill/checkpoint messages),
//! and the **workloads** (training runs executing in containers).
//!
//! The embedding event loop drives it through four entry points —
//! [`Agent::handle_message`], [`Agent::on_wake`], [`Agent::on_flow_done`],
//! and the REST layer — and executes the returned [`Action`]s (send a
//! message, start a bulk transfer, disconnect). The agent never touches the
//! network itself, which is what lets the identical logic run over the
//! simulated campus LAN and over real TCP in live mode.

use crate::config::AgentConfig;
use gpunion_container::{ContainerConfigBuilder, ContainerId, ContainerRuntime, ImageRegistry};
use gpunion_des::{SimDuration, SimTime, TokenBucket};
use gpunion_gpu::{ComputeCapability, GpuIndex, GpuServer, MemAllocId};
use gpunion_protocol::{
    AuthToken, Control, DepartureMode, DispatchSpec, ExecMode, FreeSlice, JobId, KillReason,
    Message, NodeUid, Work, WorkloadState, WorkloadStatus,
};
use gpunion_storage::CheckpointCostModel;
use gpunion_telemetry::{labels, Registry};
use gpunion_workload::TrainingRun;
use std::collections::BTreeMap;

/// Where a bulk transfer goes / comes from, as the agent sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPeer {
    /// The coordinator node (also hosts the image registry and the campus
    /// shared filesystem in the paper's deployment).
    Coordinator,
    /// A specific provider node (user-designated checkpoint storage).
    Node(NodeUid),
}

/// Why a transfer is happening (returned in the completion callback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPurpose {
    /// Pulling the container image for a job.
    ImagePull {
        /// The job being provisioned.
        job: JobId,
    },
    /// Uploading a checkpoint (full or incremental).
    CheckpointUpload {
        /// Owning job.
        job: JobId,
        /// Snapshot sequence.
        seq: u64,
    },
    /// Fetching a checkpoint chain to restore a migrated job.
    RestoreFetch {
        /// The job being restored.
        job: JobId,
    },
}

/// Actions the embedding loop must perform on the agent's behalf.
#[derive(Debug)]
pub enum Action {
    /// Send a control message to the coordinator.
    Send(Message),
    /// Start a bulk transfer.
    StartFlow {
        /// Remote end.
        peer: FlowPeer,
        /// Direction: true = download to this node.
        inbound: bool,
        /// Bytes to move.
        bytes: u64,
        /// Purpose (echoed in [`Agent::on_flow_done`]).
        purpose: FlowPurpose,
    },
    /// Disconnect from the network (departure complete). The loop marks the
    /// node down.
    GoOffline,
}

/// Agent lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentPhase {
    /// Not yet registered with the coordinator.
    Unregistered,
    /// Registration sent, waiting for ack.
    Registering,
    /// Heartbeating, accepting workloads.
    Active,
    /// Provider paused new allocations (workloads keep running).
    Paused,
    /// Graceful departure under way (checkpoint grace window).
    Departing,
    /// Gone.
    Departed,
}

/// Per-workload execution phase inside the agent.
#[derive(Debug, Clone, Copy, PartialEq)]
enum WorkPhase {
    /// Image pull in progress.
    Pulling,
    /// SHA256 verification timer running.
    Verifying,
    /// Container start timer running.
    Starting,
    /// Restore fetch / deserialize in progress.
    Restoring,
    /// Training (or interactive session) executing since the given time.
    Running { since: SimTime },
    /// ALC capture blocking the training loop.
    Checkpointing,
    /// Waiting for the stop timer after a completion.
    Finished,
}

/// One workload under agent management.
struct Workload {
    spec: DispatchSpec,
    container: ContainerId,
    phase: WorkPhase,
    run: Option<TrainingRun>,
    gpus: Vec<(GpuIndex, MemAllocId)>,
    /// Pending upload bytes for the checkpoint currently being captured.
    pending_upload: Option<(u64, u64)>, // (seq, bytes)
    /// True once the coordinator ordered a pre-migration checkpoint.
    departing_checkpoint: bool,
}

/// Timer kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Timer {
    Heartbeat,
    VerifyDone(JobId),
    StartDone(JobId),
    RestoreDone(JobId),
    CheckpointDue(JobId),
    CaptureDone(JobId),
    JobComplete(JobId),
    DepartureDeadline,
    /// Pull mode: re-offer free capacity after a `GrantNack` backoff.
    ReOffer,
}

/// The provider agent.
pub struct Agent {
    config: AgentConfig,
    server: GpuServer,
    runtime: ContainerRuntime,
    cost: CheckpointCostModel,
    phase: AgentPhase,
    uid: Option<NodeUid>,
    token: AuthToken,
    heartbeat_seq: u64,
    /// Ordered by job id: heartbeat status vectors, kill-switch sweeps and
    /// departure checkpoints must iterate deterministically.
    workloads: BTreeMap<JobId, Workload>,
    timers: BTreeMap<(SimTime, u64), Timer>,
    timer_seq: u64,
    metrics: Registry,
    /// Set while a graceful departure is draining.
    departure_deadline: Option<SimTime>,
    /// Verifications that fired from a timer and await the image registry
    /// (drained by [`Agent::complete_verifications`]).
    pending_verifications: Vec<(SimTime, JobId, ContainerId)>,
    /// REST control-panel rate limiter (same [`TokenBucket`] the
    /// coordinator's admission gate uses). `None` when `rest_burst == 0`.
    rest_bucket: Option<TokenBucket>,
}

impl Agent {
    /// A new, unregistered agent on the given hardware.
    pub fn new(config: AgentConfig, server: GpuServer) -> Self {
        let rest_bucket = (config.rest_burst > 0)
            .then(|| TokenBucket::new(config.rest_burst, config.rest_rate_per_sec, SimTime::ZERO));
        Agent {
            config,
            server,
            runtime: ContainerRuntime::new(),
            cost: CheckpointCostModel::default(),
            phase: AgentPhase::Unregistered,
            uid: None,
            token: AuthToken::UNAUTHENTICATED,
            heartbeat_seq: 0,
            workloads: BTreeMap::new(),
            timers: BTreeMap::new(),
            timer_seq: 0,
            metrics: Registry::new(),
            departure_deadline: None,
            pending_verifications: Vec::new(),
            rest_bucket,
        }
    }

    /// REST admission: take one token from the control-panel bucket.
    /// Returns `Err(retry_after_ms)` when the limiter is dry.
    pub fn rest_admit(&mut self, now: SimTime) -> Result<(), u64> {
        let Some(bucket) = &mut self.rest_bucket else {
            return Ok(());
        };
        if bucket.try_take(now) {
            return Ok(());
        }
        let wait = bucket.time_to_next(now).map(|d| d.as_millis()).unwrap_or(0);
        Err(wait.max(1))
    }

    /// Current phase.
    pub fn phase(&self) -> AgentPhase {
        self.phase
    }

    /// Node uid once registered.
    pub fn uid(&self) -> Option<NodeUid> {
        self.uid
    }

    /// The auth token (for envelope construction by the embedding loop).
    pub fn token(&self) -> AuthToken {
        self.token
    }

    /// The agent's hardware.
    pub fn server(&self) -> &GpuServer {
        &self.server
    }

    /// Mutable hardware access (the embedding loop advances device clocks).
    pub fn server_mut(&mut self) -> &mut GpuServer {
        &mut self.server
    }

    /// Number of live workloads.
    pub fn workload_count(&self) -> usize {
        self.workloads.len()
    }

    /// The agent's Prometheus registry (scraped via `/metrics`).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The agent's config.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// Canonical run state of a job, if resident (simulation hook: the
    /// embedding loop extracts the restored run during migrations).
    pub fn take_run(&mut self, job: JobId) -> Option<TrainingRun> {
        self.workloads.get_mut(&job).and_then(|w| w.run.take())
    }

    // ---- timers -----------------------------------------------------

    fn arm(&mut self, at: SimTime, t: Timer) {
        self.timers.insert((at, self.timer_seq), t);
        self.timer_seq += 1;
    }

    fn disarm_job_timers(&mut self, job: JobId) {
        self.timers.retain(|_, t| {
            !matches!(t,
                Timer::VerifyDone(j) | Timer::StartDone(j) | Timer::RestoreDone(j)
                | Timer::CheckpointDue(j) | Timer::CaptureDone(j) | Timer::JobComplete(j)
                if *j == job
            )
        });
    }

    /// The next instant the agent needs waking.
    pub fn next_wake(&self) -> Option<SimTime> {
        self.timers.keys().next().map(|(t, _)| *t)
    }

    /// Fire all timers due at or before `now`.
    pub fn on_wake(&mut self, now: SimTime) -> Vec<Action> {
        let mut actions = Vec::new();
        while let Some((&(at, seq), _)) = self.timers.first_key_value() {
            if at > now {
                break;
            }
            let timer = self.timers.remove(&(at, seq)).expect("just observed");
            self.fire(now, timer, &mut actions);
        }
        actions
    }

    fn fire(&mut self, now: SimTime, timer: Timer, actions: &mut Vec<Action>) {
        match timer {
            Timer::Heartbeat => {
                if matches!(
                    self.phase,
                    AgentPhase::Active | AgentPhase::Paused | AgentPhase::Departing
                ) {
                    actions.push(Action::Send(self.heartbeat(now)));
                    self.arm(now + self.config.heartbeat_period, Timer::Heartbeat);
                }
            }
            Timer::VerifyDone(job) => self.verify_done(now, job, actions),
            Timer::StartDone(job) => self.start_done(now, job, actions),
            Timer::RestoreDone(job) => self.restore_done(now, job, actions),
            Timer::CheckpointDue(job) => self.checkpoint_due(now, job),
            Timer::CaptureDone(job) => self.capture_done(now, job, actions),
            Timer::JobComplete(job) => self.job_complete(now, job, actions),
            Timer::DepartureDeadline => self.departure_deadline_hit(now, actions),
            Timer::ReOffer => self.offer_capacity(actions),
        }
    }

    // ---- registration / heartbeat ------------------------------------

    /// Kick off registration (the embedding loop calls this once the node
    /// is connected).
    pub fn start_registration(&mut self, _now: SimTime) -> Vec<Action> {
        self.phase = AgentPhase::Registering;
        vec![Action::Send(
            Control::Register {
                machine_id: self.config.machine_id.clone(),
                hostname: self.config.hostname.clone(),
                gpus: self
                    .server
                    .spec()
                    .gpus
                    .iter()
                    .map(|m| (*m).into())
                    .collect(),
                agent_version: self.config.version,
            }
            .into(),
        )]
    }

    fn heartbeat(&mut self, now: SimTime) -> Message {
        self.heartbeat_seq += 1;
        let uid = self.uid.expect("heartbeat only after registration");
        let gpu_stats = self
            .server
            .telemetry(now)
            .into_iter()
            .map(Into::into)
            .collect();
        let workloads = self.workload_statuses(now);
        if let Ok(c) = self.metrics.counter(
            "agent_heartbeats_total",
            "heartbeats sent",
            labels([("node", self.config.hostname.as_str())]),
        ) {
            c.inc();
        }
        Control::Heartbeat {
            node: uid,
            seq: self.heartbeat_seq,
            accepting: self.phase == AgentPhase::Active,
            gpu_stats,
            workloads,
        }
        .into()
    }

    fn workload_statuses(&mut self, now: SimTime) -> Vec<WorkloadStatus> {
        self.advance_runs(now);
        self.workloads
            .iter()
            .map(|(job, w)| WorkloadStatus {
                job: *job,
                state: match w.phase {
                    WorkPhase::Pulling
                    | WorkPhase::Verifying
                    | WorkPhase::Starting
                    | WorkPhase::Restoring => WorkloadState::Provisioning,
                    WorkPhase::Running { .. } => WorkloadState::Running,
                    WorkPhase::Checkpointing => WorkloadState::Checkpointing,
                    WorkPhase::Finished => WorkloadState::Completed,
                },
                progress: w.run.as_ref().map(|r| r.progress()).unwrap_or(0.0),
                checkpoint_seq: w.run.as_ref().map(|r| r.checkpoint_seq()).unwrap_or(0),
            })
            .collect()
    }

    // ---- coordinator messages -----------------------------------------

    /// Process a message from the coordinator.
    pub fn handle_message(
        &mut self,
        now: SimTime,
        msg: Message,
        registry: &ImageRegistry,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        match msg {
            Message::Control(c) => self.handle_control(now, c, &mut actions),
            Message::Work(w) => self.handle_work(now, w, registry, &mut actions),
        }
        actions
    }

    fn handle_control(&mut self, now: SimTime, msg: Control, actions: &mut Vec<Action>) {
        match msg {
            Control::RegisterAck {
                node,
                token,
                heartbeat_period_ms,
            } => {
                self.uid = Some(node);
                self.token = token;
                self.config.heartbeat_period = SimDuration::from_millis(heartbeat_period_ms as u64);
                self.phase = AgentPhase::Active;
                // First heartbeat immediately; then periodic.
                actions.push(Action::Send(self.heartbeat(now)));
                self.arm(now + self.config.heartbeat_period, Timer::Heartbeat);
                // Pull mode: a freshly booted node is all free capacity.
                self.offer_capacity(actions);
            }
            Control::HeartbeatAck { .. } => {}
            _ => {
                actions.push(Action::Send(
                    Control::Error {
                        code: 400,
                        detail: "unexpected message for agent".into(),
                    }
                    .into(),
                ));
            }
        }
    }

    fn handle_work(
        &mut self,
        now: SimTime,
        msg: Work,
        registry: &ImageRegistry,
        actions: &mut Vec<Action>,
    ) {
        match msg {
            Work::Dispatch { spec } => self.dispatch(now, spec, registry, actions),
            // A grant is a dispatch the agent asked for; admission is
            // identical (the offer may have gone stale under the lease).
            Work::WorkGrant { spec, .. } => self.dispatch(now, spec, registry, actions),
            Work::GrantNack { retry_after_ms, .. } => {
                // Nothing matched our offer. Honour the coordinator's
                // backoff hint with a scheduled re-offer so a quiet node
                // does not wait for its next capacity-freeing event;
                // coalesce repeated nacks into a single pending timer.
                if self.config.nack_backoff
                    && self.config.pull_mode
                    && !self.timers.values().any(|t| matches!(t, Timer::ReOffer))
                {
                    let delay = SimDuration::from_millis(retry_after_ms.max(1) as u64);
                    self.arm(now + delay, Timer::ReOffer);
                }
            }
            Work::Kill { job, reason } => self.kill_workload(now, job, reason, actions),
            Work::CheckpointRequest { job } => {
                if let Some(w) = self.workloads.get(&job) {
                    if matches!(w.phase, WorkPhase::Running { .. }) {
                        self.disarm_checkpoint_timer(job);
                        self.begin_capture(now, job);
                    }
                }
            }
            _ => {
                actions.push(Action::Send(
                    Control::Error {
                        code: 400,
                        detail: "unexpected message for agent".into(),
                    }
                    .into(),
                ));
            }
        }
    }

    /// Pull-mode: advertise current free capacity to the coordinator.
    /// No-op unless `pull_mode` is on, the agent is active, and at least one
    /// GPU has free VRAM.
    fn offer_capacity(&mut self, actions: &mut Vec<Action>) {
        if !self.config.pull_mode || self.phase != AgentPhase::Active {
            return;
        }
        let Some(uid) = self.uid else {
            return;
        };
        let free_slices = self.free_slices();
        if free_slices.is_empty() {
            return;
        }
        actions.push(Action::Send(
            Work::WorkRequest {
                node: uid,
                free_slices,
                deadline_ms: self.config.offer_deadline_ms,
            }
            .into(),
        ));
    }

    /// Free capacity grouped by (free VRAM, compute capability) shape, one
    /// [`FreeSlice`] per distinct shape, deterministically ordered by GPU
    /// index.
    fn free_slices(&self) -> Vec<FreeSlice> {
        let mut slices: Vec<FreeSlice> = Vec::new();
        for (_, dev) in self.server.devices() {
            let free = dev.free_bytes();
            if free == 0 {
                continue;
            }
            let spec = dev.spec();
            let cc = spec.compute_capability;
            match slices
                .iter_mut()
                .find(|s| s.mem_bytes == free && s.cc_major == cc.major && s.cc_minor == cc.minor)
            {
                Some(s) => s.count = s.count.saturating_add(1),
                None => slices.push(FreeSlice {
                    count: 1,
                    mem_bytes: free,
                    cc_major: cc.major,
                    cc_minor: cc.minor,
                }),
            }
        }
        slices
    }

    fn disarm_checkpoint_timer(&mut self, job: JobId) {
        self.timers
            .retain(|_, t| !matches!(t, Timer::CheckpointDue(j) if *j == job));
    }

    fn dispatch(
        &mut self,
        now: SimTime,
        spec: DispatchSpec,
        registry: &ImageRegistry,
        actions: &mut Vec<Action>,
    ) {
        let job = spec.job;
        if self.phase != AgentPhase::Active {
            actions.push(Action::Send(
                Work::DispatchReply {
                    job,
                    accepted: false,
                    reason: format!("node not accepting (phase {:?})", self.phase),
                }
                .into(),
            ));
            return;
        }
        // Admission: GPUs available?
        let min_cc = spec.min_cc.map(|(a, b)| ComputeCapability::new(a, b));
        let candidates = self.server.find_gpus(spec.gpu_mem_bytes, min_cc);
        if candidates.len() < spec.gpus as usize {
            actions.push(Action::Send(
                Work::DispatchReply {
                    job,
                    accepted: false,
                    reason: format!(
                        "insufficient GPUs: need {}, have {}",
                        spec.gpus,
                        candidates.len()
                    ),
                }
                .into(),
            ));
            return;
        }
        // Build + validate the container config from the wire spec.
        let image_ref = match registry_lookup(registry, &spec) {
            Some(r) => r,
            None => {
                actions.push(Action::Send(
                    Work::DispatchReply {
                        job,
                        accepted: false,
                        reason: "image not in registry".into(),
                    }
                    .into(),
                ));
                return;
            }
        };
        let builder = ContainerConfigBuilder::new(image_ref).gpus(spec.gpus);
        let builder = match &spec.mode {
            ExecMode::Batch { entrypoint } => builder.entrypoint(entrypoint.clone()),
            ExecMode::Interactive { port } => builder.interactive(*port),
        };
        let config = match builder.build() {
            Ok(c) => c,
            Err(e) => {
                actions.push(Action::Send(
                    Work::DispatchReply {
                        job,
                        accepted: false,
                        reason: format!("config rejected: {e}"),
                    }
                    .into(),
                ));
                return;
            }
        };
        // Reserve the GPUs now (dispatch raced against local sessions
        // otherwise).
        let mut gpus = Vec::new();
        for idx in candidates.into_iter().take(spec.gpus as usize) {
            match self.server.alloc_on(idx, spec.gpu_mem_bytes) {
                Ok(alloc) => gpus.push((idx, alloc)),
                Err(e) => {
                    // Roll back partial reservations.
                    for (i, a) in gpus.drain(..) {
                        let _ = self.server.free_on(i, a);
                    }
                    actions.push(Action::Send(
                        Work::DispatchReply {
                            job,
                            accepted: false,
                            reason: format!("allocation failed: {e}"),
                        }
                        .into(),
                    ));
                    return;
                }
            }
        }
        let container = self.runtime.create(now, config);
        let pull_bytes = self
            .runtime
            .begin_pull(now, container)
            .expect("fresh container can pull");
        // Real pull size comes from the manifest.
        let manifest_bytes = registry
            .manifest(&registry_lookup(registry, &spec).expect("checked"))
            .map(|m| m.transfer_bytes())
            .unwrap_or(pull_bytes);
        actions.push(Action::Send(
            Work::DispatchReply {
                job,
                accepted: true,
                reason: String::new(),
            }
            .into(),
        ));
        self.workloads.insert(
            job,
            Workload {
                spec,
                container,
                phase: WorkPhase::Pulling,
                run: None,
                gpus,
                pending_upload: None,
                departing_checkpoint: false,
            },
        );
        if pull_bytes == 0 {
            // Cached image: skip the network, go straight to verification.
            self.pull_finished(now, job, registry, actions);
        } else {
            actions.push(Action::StartFlow {
                peer: FlowPeer::Coordinator,
                inbound: true,
                bytes: manifest_bytes,
                purpose: FlowPurpose::ImagePull { job },
            });
        }
    }

    /// Attach the canonical run state for a job — fresh runs right after an
    /// accepted dispatch, restored runs during migration (representing the
    /// state deserialized from the checkpoint chain).
    pub fn attach_run(&mut self, job: JobId, run: TrainingRun) {
        if let Some(w) = self.workloads.get_mut(&job) {
            w.run = Some(run);
        }
    }

    fn pull_finished(
        &mut self,
        now: SimTime,
        job: JobId,
        registry: &ImageRegistry,
        actions: &mut Vec<Action>,
    ) {
        let Some(w) = self.workloads.get(&job) else {
            return;
        };
        let image_ref = registry_lookup(registry, &w.spec);
        let manifest = image_ref.and_then(|r| registry.manifest(&r)).cloned();
        let container = w.container;
        match manifest {
            Some(m) => {
                let vdur = self
                    .runtime
                    .finish_pull(now, container, &m)
                    .expect("pulling container");
                if let Some(w) = self.workloads.get_mut(&job) {
                    w.phase = WorkPhase::Verifying;
                }
                self.arm(now + vdur, Timer::VerifyDone(job));
            }
            None => self.fail_workload(now, job, "manifest disappeared", actions),
        }
    }

    fn verify_done(&mut self, now: SimTime, job: JobId, actions: &mut Vec<Action>) {
        // Registry is needed again; the embedding loop passes it to
        // handle_message/on_flow_done, but timers fire without it. The
        // verification result was computed at finish_pull time in the real
        // system; here we re-run admission inside `finish_verify` via the
        // stored manifest — the runtime keeps what it needs, so this step
        // only needs the registry snapshot taken at dispatch. To keep the
        // state machine honest we stash the verification in `pull_finished`
        // and treat this timer as "verification compute done".
        let Some(w) = self.workloads.get_mut(&job) else {
            return;
        };
        let container = w.container;
        w.phase = WorkPhase::Starting;
        // finish_verify needs the registry; the embedding loop provides it
        // via `complete_verification`. Agents in the simulator call it
        // directly from on_wake through the stored pending list.
        self.pending_verifications.push((now, job, container));
        let _ = actions;
    }

    fn start_done(&mut self, now: SimTime, job: JobId, actions: &mut Vec<Action>) {
        let Some(w) = self.workloads.get_mut(&job) else {
            return;
        };
        let gpu_indices: Vec<GpuIndex> = w.gpus.iter().map(|(i, _)| *i).collect();
        let container = w.container;
        if self.runtime.started(now, container, gpu_indices).is_err() {
            self.fail_workload(now, job, "container start failed", actions);
            return;
        }
        let w = self.workloads.get_mut(&job).expect("checked");
        if w.spec.restore_from_seq.is_some() {
            // Restored jobs must fetch + deserialize state first.
            w.phase = WorkPhase::Restoring;
            let bytes = w.spec.state_bytes_hint.max(1);
            let peer = w
                .spec
                .storage_nodes
                .first()
                .map(|n| FlowPeer::Node(*n))
                .unwrap_or(FlowPeer::Coordinator);
            actions.push(Action::StartFlow {
                peer,
                inbound: true,
                bytes,
                purpose: FlowPurpose::RestoreFetch { job },
            });
        } else {
            self.begin_running(now, job, actions);
        }
    }

    fn restore_done(&mut self, now: SimTime, job: JobId, actions: &mut Vec<Action>) {
        self.begin_running(now, job, actions);
    }

    fn begin_running(&mut self, now: SimTime, job: JobId, actions: &mut Vec<Action>) {
        let Some(w) = self.workloads.get_mut(&job) else {
            return;
        };
        w.phase = WorkPhase::Running { since: now };
        let indices: Vec<GpuIndex> = w.gpus.iter().map(|(i, _)| *i).collect();
        let interval_secs = w.spec.checkpoint_interval_secs;
        let has_run = w.run.is_some();
        for idx in indices {
            if let Some(d) = self.server.device_mut(idx) {
                d.set_utilization(now, 1.0);
            }
        }
        // Arm checkpoint + completion timers. The first checkpoint is
        // staggered by a per-job phase so co-starting jobs (lab deadline
        // bursts) don't capture and upload in lockstep — synchronized
        // cycles were saturating the backbone in 1-minute bursts (§4).
        if interval_secs > 0 && has_run {
            self.arm(
                now + checkpoint_stagger(job, interval_secs),
                Timer::CheckpointDue(job),
            );
        }
        if let Some(eta) = self.eta_for(job) {
            self.arm(now + eta, Timer::JobComplete(job));
        }
        let (progress, seq) = self.run_progress(job);
        actions.push(Action::Send(
            Work::WorkloadUpdate {
                status: WorkloadStatus {
                    job,
                    state: WorkloadState::Running,
                    progress,
                    checkpoint_seq: seq,
                },
                exit_code: None,
            }
            .into(),
        ));
    }

    /// Peak FP32 TFLOPS of the first GPU a job is bound to.
    fn job_tflops(&self, job: JobId) -> f64 {
        self.workloads
            .get(&job)
            .and_then(|w| w.gpus.first())
            .and_then(|(i, _)| self.server.device(*i))
            .map(|d| d.spec().fp32_tflops)
            .unwrap_or(35.6)
    }

    /// Remaining wall-clock for a job's run, if it has one.
    fn eta_for(&self, job: JobId) -> Option<SimDuration> {
        let tflops = self.job_tflops(job);
        self.workloads
            .get(&job)?
            .run
            .as_ref()
            .map(|r| r.remaining_time(tflops))
    }

    /// `(progress, checkpoint_seq)` of a job's run (0s when absent).
    fn run_progress(&self, job: JobId) -> (f64, u64) {
        self.workloads
            .get(&job)
            .and_then(|w| w.run.as_ref())
            .map(|r| (r.progress(), r.checkpoint_seq()))
            .unwrap_or((0.0, 0))
    }

    /// Integrate all running training jobs up to `now`.
    fn advance_runs(&mut self, now: SimTime) {
        let jobs: Vec<JobId> = self.workloads.keys().copied().collect();
        for job in jobs {
            let tflops = self.job_tflops(job);
            if let Some(w) = self.workloads.get_mut(&job) {
                if let WorkPhase::Running { since } = w.phase {
                    if let Some(run) = &mut w.run {
                        let dt = now.since(since);
                        if !dt.is_zero() {
                            let _ = run.advance(dt, tflops);
                            w.phase = WorkPhase::Running { since: now };
                        }
                    }
                }
            }
        }
    }

    fn checkpoint_due(&mut self, now: SimTime, job: JobId) {
        let Some(w) = self.workloads.get(&job) else {
            return;
        };
        if !matches!(w.phase, WorkPhase::Running { .. }) {
            return; // checkpoint collides with something else; skip cycle
        }
        self.begin_capture(now, job);
    }

    fn begin_capture(&mut self, now: SimTime, job: JobId) {
        self.advance_runs(now);
        let Some(w) = self.workloads.get_mut(&job) else {
            return;
        };
        let Some(run) = &mut w.run else {
            return;
        };
        let state_bytes = run.spec().model.profile().state_bytes;
        if self.runtime.begin_checkpoint(now, w.container).is_err() {
            return;
        }
        w.phase = WorkPhase::Checkpointing;
        // GPUs stall while torch.save serializes.
        let indices: Vec<GpuIndex> = w.gpus.iter().map(|(i, _)| *i).collect();
        let capture = self.cost.capture_time(state_bytes);
        for idx in indices {
            if let Some(d) = self.server.device_mut(idx) {
                d.set_utilization(now, 0.25);
            }
        }
        self.arm(now + capture, Timer::CaptureDone(job));
        // Completion timer is stale now; it gets re-armed on resume.
        self.timers
            .retain(|_, t| !matches!(t, Timer::JobComplete(j) if *j == job));
    }

    fn capture_done(&mut self, now: SimTime, job: JobId, actions: &mut Vec<Action>) {
        let Some(w) = self.workloads.get_mut(&job) else {
            return;
        };
        let Some(run) = &mut w.run else {
            return;
        };
        let (_snapshot, transfer) = run.capture_checkpoint();
        let seq = run.checkpoint_seq();
        w.pending_upload = Some((seq, transfer));
        let container = w.container;
        let _ = self.runtime.finish_checkpoint(now, container);
        // Upload in the background; training resumes immediately.
        let peer = w
            .spec
            .storage_nodes
            .first()
            .map(|n| FlowPeer::Node(*n))
            .unwrap_or(FlowPeer::Coordinator);
        actions.push(Action::StartFlow {
            peer,
            inbound: false,
            bytes: transfer,
            purpose: FlowPurpose::CheckpointUpload { job, seq },
        });
        // Resume running.
        w.phase = WorkPhase::Running { since: now };
        let indices: Vec<GpuIndex> = w.gpus.iter().map(|(i, _)| *i).collect();
        let interval_secs = w.spec.checkpoint_interval_secs;
        let departing = w.departing_checkpoint;
        for idx in indices {
            if let Some(d) = self.server.device_mut(idx) {
                d.set_utilization(now, 1.0);
            }
        }
        if interval_secs > 0 && !departing {
            self.arm(
                now + SimDuration::from_secs(interval_secs as u64),
                Timer::CheckpointDue(job),
            );
        }
        if let Some(eta) = self.eta_for(job) {
            self.arm(now + eta, Timer::JobComplete(job));
        }
    }

    fn job_complete(&mut self, now: SimTime, job: JobId, actions: &mut Vec<Action>) {
        self.advance_runs(now);
        let done = self
            .workloads
            .get(&job)
            .and_then(|w| w.run.as_ref())
            .map(|r| r.is_complete())
            .unwrap_or(false);
        if !done {
            // Clock skew from checkpoint stalls; re-arm at the new ETA.
            if let Some(eta) = self.eta_for(job) {
                self.arm(
                    now + eta.max(SimDuration::from_millis(100)),
                    Timer::JobComplete(job),
                );
            }
            return;
        }
        let (_, ckpt_seq) = self.run_progress(job);
        let container = {
            let w = self.workloads.get_mut(&job).expect("checked above");
            w.phase = WorkPhase::Finished;
            w.container
        };
        let _ = self.runtime.exited(now, container, 0);
        self.release_gpus(now, job);
        actions.push(Action::Send(
            Work::WorkloadUpdate {
                status: WorkloadStatus {
                    job,
                    state: WorkloadState::Completed,
                    progress: 1.0,
                    checkpoint_seq: ckpt_seq,
                },
                exit_code: Some(0),
            }
            .into(),
        ));
        self.disarm_job_timers(job);
        self.workloads.remove(&job);
        // Pull mode: the completed job's VRAM is back on the market.
        self.offer_capacity(actions);
    }

    fn release_gpus(&mut self, now: SimTime, job: JobId) {
        if let Some(w) = self.workloads.get_mut(&job) {
            for (idx, alloc) in w.gpus.drain(..) {
                let _ = self.server.free_on(idx, alloc);
                if let Some(d) = self.server.device_mut(idx) {
                    d.set_utilization(now, 0.0);
                }
            }
        }
    }

    /// Kill a workload (provider kill-switch, user cancel, or preemption).
    pub fn kill_workload(
        &mut self,
        now: SimTime,
        job: JobId,
        reason: KillReason,
        actions: &mut Vec<Action>,
    ) {
        self.advance_runs(now);
        let Some(w) = self.workloads.get_mut(&job) else {
            return;
        };
        let container = w.container;
        let _ = self.runtime.kill(now, container);
        self.release_gpus(now, job);
        self.disarm_job_timers(job);
        let w = self.workloads.get_mut(&job).expect("checked");
        if let Some(run) = &mut w.run {
            run.rollback_to_checkpoint();
        }
        actions.push(Action::Send(
            Work::WorkloadUpdate {
                status: WorkloadStatus {
                    job,
                    state: WorkloadState::Killed,
                    progress: w.run.as_ref().map(|r| r.progress()).unwrap_or(0.0),
                    checkpoint_seq: w.run.as_ref().map(|r| r.checkpoint_seq()).unwrap_or(0),
                },
                exit_code: Some(137),
            }
            .into(),
        ));
        let _ = reason;
        // Keep the entry until the embedding loop collects the rolled-back
        // run for requeue, unless nothing is recoverable.
        if self.workloads[&job].run.is_none() {
            self.workloads.remove(&job);
        }
        // Pull mode: the kill freed GPUs; re-offer them.
        self.offer_capacity(actions);
    }

    /// Discard a workload entry after the loop migrated its run, freeing
    /// the GPUs it occupied. Without the free, a harvested-then-returning
    /// provider would advertise its VRAM as allocated forever and
    /// migrate-back could never place the job home.
    pub fn forget_workload(&mut self, now: SimTime, job: JobId) {
        self.release_gpus(now, job);
        self.disarm_job_timers(job);
        self.workloads.remove(&job);
    }

    fn fail_workload(&mut self, now: SimTime, job: JobId, why: &str, actions: &mut Vec<Action>) {
        if let Some(w) = self.workloads.get(&job) {
            let container = w.container;
            let _ = self.runtime.fail(now, container);
        }
        self.release_gpus(now, job);
        self.disarm_job_timers(job);
        self.workloads.remove(&job);
        actions.push(Action::Send(
            Work::WorkloadUpdate {
                status: WorkloadStatus {
                    job,
                    state: WorkloadState::Failed,
                    progress: 0.0,
                    checkpoint_seq: 0,
                },
                exit_code: None,
            }
            .into(),
        ));
        actions.push(Action::Send(
            Control::Error {
                code: 500,
                detail: format!("job {}: {why}", job.0),
            }
            .into(),
        ));
        // Pull mode: the failed job's GPUs are free again.
        self.offer_capacity(actions);
    }

    // ---- flows ---------------------------------------------------------

    /// A bulk transfer finished (or failed).
    pub fn on_flow_done(
        &mut self,
        now: SimTime,
        purpose: FlowPurpose,
        ok: bool,
        registry: &ImageRegistry,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        match purpose {
            FlowPurpose::ImagePull { job } => {
                if ok {
                    self.pull_finished(now, job, registry, &mut actions);
                } else {
                    self.fail_workload(now, job, "image pull aborted", &mut actions);
                }
            }
            FlowPurpose::CheckpointUpload { job, seq } => {
                if ok {
                    let (transfer, stored_on) = match self.workloads.get_mut(&job) {
                        Some(w) => {
                            let t = w.pending_upload.take().map(|(_, b)| b).unwrap_or(0);
                            (t, w.spec.storage_nodes.clone())
                        }
                        None => (0, Vec::new()),
                    };
                    actions.push(Action::Send(
                        Work::CheckpointDone {
                            job,
                            seq,
                            transfer_bytes: transfer,
                            stored_on,
                        }
                        .into(),
                    ));
                    self.maybe_finish_departure(now, &mut actions);
                } else if let Some(w) = self.workloads.get_mut(&job) {
                    // Failed upload: the last checkpoint isn't durable; the
                    // next cycle retries from scratch.
                    w.pending_upload = None;
                }
            }
            FlowPurpose::RestoreFetch { job } => {
                if ok {
                    let bytes = self
                        .workloads
                        .get(&job)
                        .map(|w| w.spec.state_bytes_hint)
                        .unwrap_or(0);
                    let dur = self.cost.restore_time(bytes);
                    self.arm(now + dur, Timer::RestoreDone(job));
                } else {
                    self.fail_workload(now, job, "restore fetch aborted", &mut actions);
                }
            }
        }
        actions
    }

    // ---- provider controls (called from the REST layer) ----------------

    /// The kill-switch: terminate every guest workload immediately.
    pub fn kill_switch(&mut self, now: SimTime) -> Vec<Action> {
        let mut actions = Vec::new();
        let jobs: Vec<JobId> = self.workloads.keys().copied().collect();
        for job in jobs {
            self.kill_workload(now, job, KillReason::ProviderKillSwitch, &mut actions);
        }
        actions
    }

    /// Pause / resume new allocations.
    pub fn set_paused(&mut self, paused: bool) -> Vec<Action> {
        let mut actions = Vec::new();
        match (self.phase, paused) {
            (AgentPhase::Active, true) => {
                self.phase = AgentPhase::Paused;
            }
            (AgentPhase::Paused, false) => {
                self.phase = AgentPhase::Active;
            }
            _ => return actions,
        }
        if let Some(uid) = self.uid {
            actions.push(Action::Send(
                Control::PauseScheduling { node: uid, paused }.into(),
            ));
        }
        actions
    }

    /// Begin a departure. Graceful: notify, checkpoint everything, then
    /// leave at the deadline (or earlier if all uploads finish). Emergency:
    /// notify (best effort) and leave now.
    pub fn depart(&mut self, now: SimTime, mode: DepartureMode) -> Vec<Action> {
        let mut actions = Vec::new();
        let Some(uid) = self.uid else {
            self.phase = AgentPhase::Departed;
            actions.push(Action::GoOffline);
            return actions;
        };
        actions.push(Action::Send(
            Control::DepartureNotice { node: uid, mode }.into(),
        ));
        match mode {
            DepartureMode::Emergency => {
                self.phase = AgentPhase::Departed;
                actions.push(Action::GoOffline);
            }
            DepartureMode::Graceful { grace_secs } => {
                self.phase = AgentPhase::Departing;
                let deadline = now + SimDuration::from_secs(grace_secs as u64);
                self.departure_deadline = Some(deadline);
                self.arm(deadline, Timer::DepartureDeadline);
                // Checkpoint every running stateful workload right now.
                let jobs: Vec<JobId> = self
                    .workloads
                    .iter()
                    .filter(|(_, w)| {
                        matches!(w.phase, WorkPhase::Running { .. }) && w.run.is_some()
                    })
                    .map(|(j, _)| *j)
                    .collect();
                for job in &jobs {
                    self.disarm_checkpoint_timer(*job);
                    if let Some(w) = self.workloads.get_mut(job) {
                        w.departing_checkpoint = true;
                    }
                    self.begin_capture(now, *job);
                }
                if jobs.is_empty() && self.no_pending_uploads() {
                    self.finish_departure(&mut actions);
                }
            }
        }
        actions
    }

    fn no_pending_uploads(&self) -> bool {
        self.workloads
            .values()
            .all(|w| w.pending_upload.is_none() && !matches!(w.phase, WorkPhase::Checkpointing))
    }

    fn maybe_finish_departure(&mut self, _now: SimTime, actions: &mut Vec<Action>) {
        if self.phase == AgentPhase::Departing && self.no_pending_uploads() {
            self.finish_departure(actions);
        }
    }

    fn finish_departure(&mut self, actions: &mut Vec<Action>) {
        self.phase = AgentPhase::Departed;
        self.departure_deadline = None;
        self.timers.clear();
        actions.push(Action::GoOffline);
    }

    fn departure_deadline_hit(&mut self, now: SimTime, actions: &mut Vec<Action>) {
        if self.phase != AgentPhase::Departing {
            return;
        }
        // Whatever didn't finish checkpointing is killed; the grace window
        // is the provider's promise, not the workloads'.
        let jobs: Vec<JobId> = self.workloads.keys().copied().collect();
        for job in jobs {
            self.kill_workload(now, job, KillReason::ProviderKillSwitch, actions);
        }
        self.finish_departure(actions);
    }

    /// Reconnect after temporary unavailability: reset to registration.
    pub fn reconnect(&mut self, now: SimTime) -> Vec<Action> {
        self.phase = AgentPhase::Unregistered;
        self.uid = None;
        self.token = AuthToken::UNAUTHENTICATED;
        self.timers.clear();
        self.heartbeat_seq = 0;
        // The machine rebooted: containers are gone, GPU memory is free.
        let jobs: Vec<JobId> = self.workloads.keys().copied().collect();
        for job in jobs {
            self.release_gpus(now, job);
        }
        self.workloads.clear();
        self.pending_verifications.clear();
        self.start_registration(now)
    }

    /// Are any verifications waiting for [`Agent::complete_verifications`]?
    pub fn has_pending_verifications(&self) -> bool {
        !self.pending_verifications.is_empty()
    }
    /// Complete deferred verifications (requires the image registry).
    /// Returns follow-up actions.
    pub fn complete_verifications(
        &mut self,
        now: SimTime,
        registry: &ImageRegistry,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        let pending = std::mem::take(&mut self.pending_verifications);
        for (_, job, container) in pending {
            let Some(w) = self.workloads.get(&job) else {
                continue;
            };
            let image_ref = registry_lookup(registry, &w.spec);
            let manifest = image_ref.and_then(|r| registry.manifest(&r)).cloned();
            match manifest {
                Some(m) => match self.runtime.finish_verify(now, container, registry, &m) {
                    Ok(start_dur) => {
                        self.arm(now + start_dur, Timer::StartDone(job));
                    }
                    Err(e) => {
                        let why = format!("verification failed: {e}");
                        self.fail_workload(now, job, &why, &mut actions);
                    }
                },
                None => self.fail_workload(now, job, "manifest disappeared", &mut actions),
            }
        }
        actions
    }
}

/// First-checkpoint delay for a job: the base interval shifted by a
/// deterministic per-job phase in `[-interval/2, +interval/2)`, derived from
/// the job id (splitmix-style mix). Spreads checkpoint cycles of co-started
/// jobs uniformly across the interval while keeping the mean cadence — and
/// reruns of the same job id stagger identically, so experiment harnesses
/// stay reproducible.
fn checkpoint_stagger(job: JobId, interval_secs: u32) -> SimDuration {
    let interval = interval_secs as u64;
    let mixed = job.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
    let phase = mixed % interval.max(1);
    SimDuration::from_secs(interval / 2 + phase)
}

/// Resolve the wire image reference against the registry by digest.
fn registry_lookup(
    registry: &ImageRegistry,
    spec: &DispatchSpec,
) -> Option<gpunion_container::ImageRef> {
    let digest = gpunion_container::Digest(spec.image_digest);
    let r = gpunion_container::ImageRef {
        repository: spec.image_repo.clone(),
        tag: spec.image_tag.clone(),
        digest,
    };
    registry.manifest(&r).map(|_| r)
}
