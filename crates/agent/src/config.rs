//! Agent configuration and machine identity.
//!
//! §3.4: "New nodes join the platform through automatic registration scripts
//! that generate unique machine identifiers, establish network connectivity,
//! and obtain authentication credentials."

use gpunion_des::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Static configuration of one provider agent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Hostname for reports.
    pub hostname: String,
    /// Self-generated unique machine identifier.
    pub machine_id: String,
    /// Heartbeat period (overridden by the coordinator's RegisterAck).
    pub heartbeat_period: SimDuration,
    /// Grace window offered to workloads on graceful departure.
    pub departure_grace: SimDuration,
    /// Agent software version.
    pub version: u32,
    /// Pull-mode marketplace: emit `WorkRequest` offers on capacity-freeing
    /// events instead of waiting for coordinator-pushed dispatches. Off by
    /// default so push-mode traces stay byte-identical.
    pub pull_mode: bool,
    /// Validity window advertised on each `WorkRequest` offer.
    pub offer_deadline_ms: u32,
    /// Pull mode: honour `GrantNack::retry_after_ms` with a scheduled
    /// re-offer instead of waiting for the next capacity-freeing event.
    /// On by default — it only acts in pull mode, so the push-mode golden
    /// traces are unaffected either way.
    pub nack_backoff: bool,
    /// REST control-panel rate limit: bucket burst capacity. `0` disables
    /// limiting (the default — existing harnesses hammer `/status` freely).
    pub rest_burst: u64,
    /// REST control-panel rate limit: sustained requests per second.
    pub rest_rate_per_sec: u64,
}

impl AgentConfig {
    /// Standard config with a generated machine id.
    pub fn new(hostname: impl Into<String>, rng: &mut impl Rng) -> Self {
        let hostname = hostname.into();
        let machine_id = generate_machine_id(&hostname, rng);
        AgentConfig {
            hostname,
            machine_id,
            heartbeat_period: SimDuration::from_secs(5),
            departure_grace: SimDuration::from_secs(120),
            version: 1_000_000, // 1.0.0
            pull_mode: false,
            offer_deadline_ms: 15_000,
            nack_backoff: true,
            rest_burst: 0,
            rest_rate_per_sec: 0,
        }
    }
}

/// Generate a unique machine identifier: hostname + 64-bit random suffix,
/// mirroring the registration script in the paper.
pub fn generate_machine_id(hostname: &str, rng: &mut impl Rng) -> String {
    format!("{hostname}-{:016x}", rng.gen::<u64>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn machine_ids_unique() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = generate_machine_id("ws-1", &mut rng);
        let b = generate_machine_id("ws-1", &mut rng);
        assert_ne!(a, b);
        assert!(a.starts_with("ws-1-"));
    }

    #[test]
    fn defaults_match_paper() {
        let mut rng = SmallRng::seed_from_u64(2);
        let c = AgentConfig::new("rack-4090", &mut rng);
        assert_eq!(c.heartbeat_period, SimDuration::from_secs(5));
        assert_eq!(c.departure_grace, SimDuration::from_secs(120));
    }
}
