//! # gpunion-storage — checkpoints, incremental snapshots, placement
//!
//! The data layer behind the paper's resilient execution mechanism (§3.5):
//!
//! * [`snapshot`] — application state as dirty-tracked logical pages + file
//!   deltas; `base ⊕ delta = next` is property-tested, and
//!   [`Delta::transfer_bytes`](snapshot::Delta::transfer_bytes) is the
//!   quantity the network-traffic analysis (§4) depends on.
//! * [`repository`] — checkpoint metadata, full/incremental chains, restore
//!   planning with dead-node awareness, retention that never breaks chains,
//!   and user-designated replica placement.
//! * [`cost`] — capture/restore latency model (why memory-intensive models
//!   are more interruption-sensitive).
//! * [`datastore`] — capacity-bounded per-node object stores.

pub mod cost;
pub mod datastore;
pub mod repository;
pub mod snapshot;

pub use cost::CheckpointCostModel;
pub use datastore::{ObjectKey, StoreError, TaskDataStore};
pub use repository::{
    CheckpointId, CheckpointKind, CheckpointMeta, CheckpointRepository, JobTag, RepoError,
    RestorePlan, StoragePolicy,
};
pub use snapshot::{Delta, FileChange, Snapshot, StateModel, DEFAULT_PAGE_BYTES};
