//! The checkpoint repository: metadata, chains, retention and placement.
//!
//! Per the paper, checkpoints "can be stored in a LAN-accessible file system
//! or a specific node", and "users can specify specific nodes for data
//! storage and backup according to their own needs". The repository tracks
//! where every checkpoint of every job lives, resolves the restore chain
//! (latest full snapshot + subsequent incrementals), and applies retention.

use crate::snapshot::Snapshot;
use gpunion_container::sha256::Digest;
use gpunion_des::SimTime;
use gpunion_simnet::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifies a checkpoint within the repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CheckpointId(pub u64);

/// A job handle as seen by the storage layer (decoupled from the
/// scheduler's richer job type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobTag(pub u64);

/// Full or incremental checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointKind {
    /// Self-contained.
    Full,
    /// Applies on top of a parent checkpoint.
    Incremental {
        /// The checkpoint this delta chains off.
        parent: CheckpointId,
    },
}

/// Checkpoint metadata record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointMeta {
    /// Repository id.
    pub id: CheckpointId,
    /// Owning job.
    pub job: JobTag,
    /// Monotone per-job sequence.
    pub seq: u64,
    /// Capture time.
    pub created_at: SimTime,
    /// Full or incremental.
    pub kind: CheckpointKind,
    /// Logical size of the full state at capture.
    pub logical_bytes: u64,
    /// Bytes actually moved (== logical for full; delta size otherwise).
    pub transfer_bytes: u64,
    /// Primary storage node.
    pub location: NodeId,
    /// Replicas (user-designated backup nodes).
    pub replicas: Vec<NodeId>,
    /// Content digest for restore-time verification.
    pub digest: Digest,
}

/// Storage placement policy a user attaches to a job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoragePolicy {
    /// Nodes the user wants checkpoints on, in preference order. Empty means
    /// "the campus shared filesystem node chosen by the platform".
    pub preferred_nodes: Vec<NodeId>,
    /// How many replicas beyond the primary.
    pub replicas: usize,
    /// Keep at most this many checkpoints per job (≥ 1).
    pub keep_last: usize,
    /// Take a full checkpoint every `full_every` captures (1 = always full).
    pub full_every: u32,
}

impl Default for StoragePolicy {
    fn default() -> Self {
        StoragePolicy {
            preferred_nodes: Vec::new(),
            replicas: 0,
            keep_last: 4,
            full_every: 8,
        }
    }
}

/// Repository errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepoError {
    /// No checkpoint for that job.
    NoCheckpoint,
    /// The chain from the latest full to the requested checkpoint is broken
    /// (a parent was garbage-collected or its node is gone).
    BrokenChain {
        /// The checkpoint whose parent is missing.
        at: CheckpointId,
    },
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::NoCheckpoint => write!(f, "no checkpoint recorded for job"),
            RepoError::BrokenChain { at } => write!(f, "restore chain broken at {at:?}"),
        }
    }
}

impl std::error::Error for RepoError {}

/// What a restore has to fetch.
#[derive(Debug, Clone, PartialEq)]
pub struct RestorePlan {
    /// Checkpoints to fetch, full first, then incrementals in order.
    pub chain: Vec<CheckpointMeta>,
    /// Total bytes to move.
    pub transfer_bytes: u64,
}

/// The campus-wide checkpoint metadata store (lives in the coordinator's
/// database in the real system; standalone and embeddable here).
#[derive(Debug, Clone, Default)]
pub struct CheckpointRepository {
    by_id: HashMap<CheckpointId, CheckpointMeta>,
    by_job: HashMap<JobTag, Vec<CheckpointId>>,
    next_id: u64,
}

impl CheckpointRepository {
    /// Empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of retained checkpoints across all jobs.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Record a new checkpoint from a captured snapshot. Chooses the kind by
    /// `policy.full_every` and chains incrementals off the previous capture.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        now: SimTime,
        job: JobTag,
        snapshot: &Snapshot,
        transfer_bytes: u64,
        location: NodeId,
        replicas: Vec<NodeId>,
        policy: &StoragePolicy,
    ) -> CheckpointMeta {
        let seq_index = self.by_job.get(&job).map(|v| v.len() as u64).unwrap_or(0);
        let prev = self.latest(job).map(|m| m.id);
        let kind = match prev {
            Some(parent) if policy.full_every > 1 && seq_index % policy.full_every as u64 != 0 => {
                CheckpointKind::Incremental { parent }
            }
            _ => CheckpointKind::Full,
        };
        let transfer = match kind {
            CheckpointKind::Full => snapshot.full_bytes(),
            CheckpointKind::Incremental { .. } => transfer_bytes,
        };
        let id = CheckpointId(self.next_id);
        self.next_id += 1;
        let meta = CheckpointMeta {
            id,
            job,
            seq: snapshot.seq,
            created_at: now,
            kind,
            logical_bytes: snapshot.full_bytes(),
            transfer_bytes: transfer,
            location,
            replicas,
            digest: snapshot.digest(),
        };
        self.by_id.insert(id, meta.clone());
        self.by_job.entry(job).or_default().push(id);
        self.gc(job, policy);
        meta
    }

    /// The most recent checkpoint of a job.
    pub fn latest(&self, job: JobTag) -> Option<&CheckpointMeta> {
        self.by_job
            .get(&job)?
            .last()
            .and_then(|id| self.by_id.get(id))
    }

    /// All retained checkpoints of a job, oldest first.
    pub fn all(&self, job: JobTag) -> Vec<&CheckpointMeta> {
        self.by_job
            .get(&job)
            .map(|ids| ids.iter().filter_map(|id| self.by_id.get(id)).collect())
            .unwrap_or_default()
    }

    /// Resolve the restore plan for the latest checkpoint of a job:
    /// walk parents back to the most recent full, then list forward.
    /// `node_alive` filters out checkpoints stored only on dead nodes
    /// (a replica on a live node rescues the chain).
    pub fn restore_plan(
        &self,
        job: JobTag,
        node_alive: impl Fn(NodeId) -> bool,
    ) -> Result<RestorePlan, RepoError> {
        let latest = self.latest(job).ok_or(RepoError::NoCheckpoint)?;
        let mut rev = Vec::new();
        let mut cur = latest;
        loop {
            let readable = std::iter::once(cur.location)
                .chain(cur.replicas.iter().copied())
                .any(&node_alive);
            if !readable {
                return Err(RepoError::BrokenChain { at: cur.id });
            }
            rev.push(cur.clone());
            match cur.kind {
                CheckpointKind::Full => break,
                CheckpointKind::Incremental { parent } => {
                    cur = self
                        .by_id
                        .get(&parent)
                        .ok_or(RepoError::BrokenChain { at: cur.id })?;
                }
            }
        }
        rev.reverse();
        let transfer_bytes = rev.iter().map(|m| m.transfer_bytes).sum();
        Ok(RestorePlan {
            chain: rev,
            transfer_bytes,
        })
    }

    /// Retention: keep the last `policy.keep_last` checkpoints, but never
    /// drop a checkpoint that a retained incremental still chains through.
    fn gc(&mut self, job: JobTag, policy: &StoragePolicy) {
        let Some(ids) = self.by_job.get(&job) else {
            return;
        };
        if ids.len() <= policy.keep_last {
            return;
        }
        // Determine which checkpoints are needed by the retained window.
        let keep_window: Vec<CheckpointId> = ids[ids.len() - policy.keep_last..].to_vec();
        let mut needed: std::collections::HashSet<CheckpointId> =
            keep_window.iter().copied().collect();
        for id in &keep_window {
            let mut cur = *id;
            while let Some(meta) = self.by_id.get(&cur) {
                needed.insert(cur);
                match meta.kind {
                    CheckpointKind::Incremental { parent } => cur = parent,
                    CheckpointKind::Full => break,
                }
            }
        }
        let ids = self.by_job.get_mut(&job).expect("checked above");
        ids.retain(|id| needed.contains(id));
        self.by_id
            .retain(|id, m| m.job != job || needed.contains(id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::StateModel;

    const MB: u64 = 1 << 20;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn record_n(
        repo: &mut CheckpointRepository,
        policy: &StoragePolicy,
        n: u64,
        loc: NodeId,
    ) -> StateModel {
        let mut m = StateModel::new(64 * MB, 4 * MB);
        let mut prev = m.capture(0);
        for i in 0..n {
            m.touch_fraction(0.2);
            let snap = m.capture(i);
            let transfer = if i == 0 {
                snap.full_bytes()
            } else {
                snap.delta_from(&prev).transfer_bytes()
            };
            repo.record(t(i * 600), JobTag(1), &snap, transfer, loc, vec![], policy);
            prev = snap;
        }
        m
    }

    #[test]
    fn first_checkpoint_is_full() {
        let mut repo = CheckpointRepository::new();
        let policy = StoragePolicy::default();
        record_n(&mut repo, &policy, 1, NodeId(5));
        let latest = repo.latest(JobTag(1)).unwrap();
        assert_eq!(latest.kind, CheckpointKind::Full);
        assert_eq!(latest.transfer_bytes, latest.logical_bytes);
    }

    #[test]
    fn incrementals_chain_and_restore_plan_resolves() {
        let mut repo = CheckpointRepository::new();
        let policy = StoragePolicy {
            keep_last: 10,
            full_every: 8,
            ..Default::default()
        };
        record_n(&mut repo, &policy, 5, NodeId(5));
        let plan = repo.restore_plan(JobTag(1), |_| true).unwrap();
        assert_eq!(plan.chain.len(), 5, "full + 4 incrementals");
        assert_eq!(plan.chain[0].kind, CheckpointKind::Full);
        for m in &plan.chain[1..] {
            assert!(matches!(m.kind, CheckpointKind::Incremental { .. }));
        }
        // Incremental restore moves far less than 5 fulls.
        assert!(plan.transfer_bytes < 2 * plan.chain[0].logical_bytes);
    }

    #[test]
    fn full_every_schedules_fulls() {
        let mut repo = CheckpointRepository::new();
        let policy = StoragePolicy {
            keep_last: 100,
            full_every: 3,
            ..Default::default()
        };
        record_n(&mut repo, &policy, 7, NodeId(5));
        let kinds: Vec<bool> = repo
            .all(JobTag(1))
            .iter()
            .map(|m| matches!(m.kind, CheckpointKind::Full))
            .collect();
        assert_eq!(kinds, vec![true, false, false, true, false, false, true]);
    }

    #[test]
    fn retention_never_breaks_chains() {
        let mut repo = CheckpointRepository::new();
        let policy = StoragePolicy {
            keep_last: 2,
            full_every: 8,
            ..Default::default()
        };
        record_n(&mut repo, &policy, 6, NodeId(5));
        // Only 2 in the window, but the full at seq 0 must survive because
        // the retained incrementals chain through it.
        let plan = repo.restore_plan(JobTag(1), |_| true).unwrap();
        assert_eq!(plan.chain[0].kind, CheckpointKind::Full);
        assert!(repo.len() >= 3, "window + chain ancestors retained");
    }

    #[test]
    fn dead_node_breaks_chain_unless_replicated() {
        let mut repo = CheckpointRepository::new();
        let policy = StoragePolicy {
            keep_last: 10,
            full_every: 8,
            ..Default::default()
        };
        record_n(&mut repo, &policy, 3, NodeId(5));
        let err = repo
            .restore_plan(JobTag(1), |n| n != NodeId(5))
            .unwrap_err();
        assert!(matches!(err, RepoError::BrokenChain { .. }));

        // With a replica on node 9 everything restores.
        let mut repo2 = CheckpointRepository::new();
        let mut m = StateModel::new(64 * MB, 4 * MB);
        let snap = m.capture(0);
        repo2.record(
            t(0),
            JobTag(2),
            &snap,
            snap.full_bytes(),
            NodeId(5),
            vec![NodeId(9)],
            &policy,
        );
        m.touch_pages(3);
        let s1 = m.capture(1);
        repo2.record(
            t(600),
            JobTag(2),
            &s1,
            s1.delta_from(&snap).transfer_bytes(),
            NodeId(5),
            vec![NodeId(9)],
            &policy,
        );
        let plan = repo2.restore_plan(JobTag(2), |n| n != NodeId(5)).unwrap();
        assert_eq!(plan.chain.len(), 2);
    }

    #[test]
    fn no_checkpoint_error() {
        let repo = CheckpointRepository::new();
        assert_eq!(
            repo.restore_plan(JobTag(404), |_| true).unwrap_err(),
            RepoError::NoCheckpoint
        );
    }

    #[test]
    fn jobs_are_isolated() {
        let mut repo = CheckpointRepository::new();
        let policy = StoragePolicy::default();
        let m = StateModel::new(8 * MB, 4 * MB);
        let s = m.capture(0);
        repo.record(
            t(0),
            JobTag(1),
            &s,
            s.full_bytes(),
            NodeId(1),
            vec![],
            &policy,
        );
        assert!(repo.latest(JobTag(2)).is_none());
        assert_eq!(repo.all(JobTag(1)).len(), 1);
    }
}
